//! FIR filtering on the TMS320C62xx-shaped VLIW model: the workload class
//! the paper's introduction motivates (telecom DSP software).
//!
//! Assembles the FIR kernel with the program-level assembler, runs it on
//! both simulation backends, verifies the golden outputs, and prints the
//! cycle-accurate statistics plus the compiled-over-interpretive speedup.
//!
//! ```sh
//! cargo run --release --example vliw_fir
//! ```

use std::time::Instant;

use lisa::models::{kernels, vliw62};
use lisa::sim::SimMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wb = vliw62::workbench()?;
    let kernel = kernels::vliw_fir(8, 16);
    println!("kernel: {} (8 taps, 16 outputs, 16-bit data)\n", kernel.name);

    // Show the first packets of the program listing.
    let program = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1)
        .assemble(&kernel.source)?;
    println!("program listing (first fetch packets):");
    for line in program.listing.lines().take(18) {
        println!("  {line}");
    }
    println!("  ...\n");

    let mut rows = Vec::new();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = kernels::load_kernel(&wb, &kernel, mode)?;
        let t = Instant::now();
        let cycles = wb.run_to_halt(&mut sim, kernel.max_steps)?;
        let elapsed = t.elapsed();
        kernels::verify_kernel(&wb, &kernel, &sim);
        println!(
            "{mode:?}: {cycles} cycles in {elapsed:?} ({:.0} cycles/s) — golden outputs verified",
            cycles as f64 / elapsed.as_secs_f64()
        );
        println!("  {}", sim.stats());
        rows.push((cycles, elapsed));
    }
    assert_eq!(rows[0].0, rows[1].0, "cycle counts must not depend on the backend");
    println!(
        "\ncompiled simulation speedup: {:.1}x (paper §3.3 claims >100x against\n1998-era commercial interpretive simulators; see EXPERIMENTS.md)",
        rows[0].1.as_secs_f64() / rows[1].1.as_secs_f64()
    );

    // Dump the filtered signal.
    let dmem = wb.model().resource_by_name("dmem").expect("dmem");
    let mut sim = kernels::load_kernel(&wb, &kernel, SimMode::Compiled)?;
    wb.run_to_halt(&mut sim, kernel.max_steps)?;
    print!("\ny[] = ");
    for i in 0..16 {
        let mut w: i64 = 0;
        for k in 0..4 {
            w |= (sim.state().read_int(dmem, &[2048 + 4 * i + k])? & 0xFF) << (8 * k);
        }
        print!("{} ", lisa::bits::Bits::from_u128_wrapped(32, w as u128).to_i128());
    }
    println!();
    Ok(())
}

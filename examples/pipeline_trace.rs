//! Watch the vliw62 fetch pipeline fill, stall on a multicycle NOP, and
//! redirect on a branch — the cycle-accurate mechanisms of paper §3.2.3,
//! via the simulator's execution trace.
//!
//! ```sh
//! cargo run --example pipeline_trace
//! ```

use lisa::models::vliw62;
use lisa::sim::SimMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wb = vliw62::workbench()?;
    let program = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1).assemble(
        r#"
            MVK A2, 1
            MVK B2, 2       ; serial packets: one dispatch per cycle
            NOP 3           ; multicycle NOP: dispatch stalls 2 cycles
            ADD .L A3, A2, B2
            HALT
            "#,
    )?;
    let mut sim = wb.simulator(SimMode::Interpretive)?;
    sim.load_program("pmem", &program.words)?;
    sim.set_trace(true);

    let halt = wb.model().resource_by_name("halt").expect("halt").clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 100)?;

    println!("pipeline trace (cycle in brackets; note the PG→PS→PW→PR→DP fill");
    println!("and the Dispatch gap while the multicycle NOP stalls DP/DC):\n");
    for line in sim.take_trace() {
        if line.contains("exec") {
            println!("  {line}");
        }
    }
    println!("\nstats: {}", sim.stats());
    let a = wb.model().resource_by_name("A").expect("A file");
    assert_eq!(sim.state().read_int(a, &[3])?, 3);
    Ok(())
}

//! Watch the vliw62 fetch pipeline fill, stall on a multicycle NOP, and
//! redirect on a branch — the cycle-accurate mechanisms of paper §3.2.3,
//! via the simulator's structured trace events.
//!
//! ```sh
//! cargo run --example pipeline_trace
//! ```

use lisa::models::vliw62;
use lisa::sim::SimMode;
use lisa::trace::{TraceEvent, TraceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wb = vliw62::workbench()?;
    let program = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1).assemble(
        r#"
            MVK A2, 1
            MVK B2, 2       ; serial packets: one dispatch per cycle
            NOP 3           ; multicycle NOP: dispatch stalls 2 cycles
            ADD .L A3, A2, B2
            HALT
            "#,
    )?;
    let mut sim = wb.simulator(SimMode::Interpretive)?;
    sim.load_program("pmem", &program.words)?;
    sim.set_trace(true);

    let halt = wb.model().resource_by_name("halt").expect("halt").clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 100)?;

    let events = sim.take_events();
    let names = sim.name_table();

    println!("pipeline trace (cycle in brackets; note the PG→PS→PW→PR→DP fill");
    println!("and the Dispatch gap while the multicycle NOP stalls DP/DC):\n");
    for event in &events {
        if event.kind() == TraceKind::Exec {
            println!("  {}", names.line(event));
        }
    }
    println!("\nstats: {}", sim.stats());

    // The typed events carry the pipeline structure directly — check a
    // few cycle-accurate facts the string trace could only hint at.
    assert!(events.iter().any(|e| e.kind() == TraceKind::Fetch));
    assert!(events.iter().any(|e| e.kind() == TraceKind::Decode));
    let staged_execs =
        events.iter().filter(|e| matches!(e, TraceEvent::Exec { stage: Some(_), .. })).count();
    assert!(staged_execs > 0, "vliw62 executes operations inside pipeline stages");
    assert!(
        events.iter().any(|e| e.kind() == TraceKind::Stall),
        "the multicycle NOP must stall the fetch pipeline"
    );
    assert!(
        events.iter().any(|e| e.kind() == TraceKind::RegisterWrite),
        "register writes are observable"
    );

    let a = wb.model().resource_by_name("A").expect("A file");
    assert_eq!(sim.state().read_int(a, &[3])?, 3);
    Ok(())
}

//! Architecture exploration: the ADL workflow the paper positions LISA
//! for. Starting from the `accu16` DSP, we add a custom dual-fetch
//! multiply-accumulate instruction (`MACP`) to the *description*,
//! regenerate every tool automatically, and measure the cycle-count win
//! on a dot-product workload — a late design change with zero hand-written
//! simulator code.
//!
//! ```sh
//! cargo run --release --example asip_exploration
//! ```

use lisa::models::{accu16, Workbench};
use lisa::sim::SimMode;

/// The new instruction: both operand fetches (with post-increment) and
/// the MAC in a single control step.
const MACP_OP: &str = r#"
OPERATION macp {
    CODING { 0b011000 0bx[18] }
    SYNTAX { "MACP" }
    SEMANTICS { MAC_DUAL_POSTINC(accu, data_mem1[ar0], data_mem1[ar1]) }
    BEHAVIOR {
        r[0] = data_mem1[ar[0] & 4095];
        ar[0] = ar[0] + 1;
        r[1] = data_mem1[ar[1] & 4095];
        ar[1] = ar[1] + 1;
        long sum = sext(accu, 40) + r[0] * r[1];
        if (sat_mode) {
            accu = saturate(sum, 40);
        } else {
            accu = sum;
        }
    }
}

OPERATION decode {"#;

fn dot_program(n: usize, fused: bool) -> String {
    let body = if fused {
        "loop:   MACP\n        DBNZ loop\n"
    } else {
        "loop:   MOVP r0, a0\n        MOVP r1, a1\n        MAC r0, r1\n        DBNZ loop\n"
    };
    format!(
        ".org 0x100\n        CLR\n        SSAT 0\n        LAR a0, 0\n        LAR a1, 256\n        LDLC {n}\n{body}        SAT16\n        STA 512\n        HLT\n"
    )
}

fn run_dot(
    wb: &Workbench,
    n: usize,
    fused: bool,
) -> Result<(u64, i64), Box<dyn std::error::Error>> {
    let program = lisa::asm::Assembler::new(wb.model()).assemble(&dot_program(n, fused))?;
    let mut sim = wb.simulator(SimMode::Compiled)?;
    let pmem = wb.model().resource_by_name("prog_mem").expect("pmem").clone();
    for (i, &word) in program.words.iter().enumerate() {
        let addr = program.origin as i64 + i as i64;
        sim.state_mut().write(&pmem, &[addr], lisa::bits::Bits::from_u128_wrapped(32, word))?;
    }
    let dmem = wb.model().resource_by_name("data_mem1").expect("dmem").clone();
    for i in 0..n as i64 {
        sim.state_mut().write_int(&dmem, &[i], i % 7 - 3)?;
        sim.state_mut().write_int(&dmem, &[256 + i], (i * 3) % 11 - 5)?;
    }
    sim.predecode_program_memory();
    let cycles = wb.run_to_halt(&mut sim, 100_000)?;
    let result = sim.state().read_int(&dmem, &[512])?;
    Ok((cycles, result))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;

    // Baseline architecture: generated tools straight from the shipped
    // description.
    let base = accu16::workbench()?;
    let (base_cycles, base_result) = run_dot(&base, n, false)?;
    println!("baseline accu16:   dot({n}) = {base_result} in {base_cycles} cycles");

    // Late design change: patch the *description*, regenerate everything.
    let extended_source = accu16::SOURCE.replacen("OPERATION decode {", MACP_OP, 1).replacen(
        "nop || clr ||",
        "nop || clr || macp ||",
        1,
    );
    let extended =
        Workbench::from_source(Box::leak(extended_source.into_boxed_str()), "prog_mem", "halt")?;
    let (ext_cycles, ext_result) = run_dot(&extended, n, true)?;
    println!("accu16 + MACP:     dot({n}) = {ext_result} in {ext_cycles} cycles");

    assert_eq!(base_result, ext_result, "the new instruction must be bit-accurate");
    println!(
        "\nadding MACP to the LISA description (and nothing else) makes the\nkernel {:.2}x faster — assembler, decoder, disassembler and both\nsimulators were regenerated automatically.",
        base_cycles as f64 / ext_cycles as f64
    );

    // The generated manual documents the new instruction too.
    let manual = lisa::docgen::manual(extended.model(), "accu16+MACP");
    let entry = manual
        .lines()
        .skip_while(|l| !l.contains("### `macp`"))
        .take(12)
        .collect::<Vec<_>>()
        .join("\n");
    println!("\ngenerated manual entry:\n{entry}");
    Ok(())
}

//! Quickstart: describe a processor in LISA, generate its tools, and run
//! a program — the complete retargetable flow from one description.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lisa::core::model::ModelStats;
use lisa::core::Model;
use lisa::isa::{Assembler, Decoder};
use lisa::sim::{SimMode, Simulator};

/// A four-instruction counter machine, written from scratch right here.
const SOURCE: &str = r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int acc;
    REGISTER bit halt;
    PROGRAM_MEMORY int pmem[32];
}

OPERATION imm8 {
    DECLARE { LABEL value; }
    CODING { value:0bx[8] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 8) }
}

OPERATION addi {
    DECLARE { GROUP Val = { imm8 }; }
    CODING { 0b01 Val 0bx[6] }
    SYNTAX { "ADDI" Val }
    BEHAVIOR { acc = acc + Val; }
}

OPERATION muli {
    DECLARE { GROUP Val = { imm8 }; }
    CODING { 0b10 Val 0bx[6] }
    SYNTAX { "MULI" Val }
    BEHAVIOR { acc = acc * Val; }
}

OPERATION done {
    CODING { 0b11 0bx[14] }
    SYNTAX { "DONE" }
    BEHAVIOR { halt = 1; }
}

OPERATION decode {
    DECLARE { GROUP Instruction = { addi || muli || done }; }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            ir = pmem[pc];
            decode;
            pc = pc + 1;
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One description → the model database.
    let model = Model::from_source(SOURCE)?;
    println!("model built:\n{}\n", ModelStats::of(&model));

    // 2. Generated assembler: text → bits.
    let decoder = Decoder::new(&model)?;
    let asm = Assembler::new(&model, &decoder);
    let program = ["ADDI 6", "MULI 7", "ADDI -2", "DONE"];
    let mut words = Vec::new();
    println!("assembled program:");
    for stmt in program {
        let word = asm.assemble_instruction(stmt)?.encode(&model)?;
        println!("  {:04x}  {stmt}", word.to_u128());
        words.push(word.to_u128());
    }

    // 3. Generated disassembler: bits → text (round trip).
    println!("\ndisassembled back:");
    for &word in &words {
        println!("  {:04x}  {}", word, asm.disassemble(&decoder.decode(word)?));
    }

    // 4. Generated cycle-accurate simulator (compiled technique);
    //    loading a program in compiled mode pre-decodes it automatically.
    let mut sim = Simulator::new(&model, SimMode::Compiled)?;
    sim.load_program("pmem", &words)?;
    let halt = model.resource_by_name("halt").expect("halt flag").clone();
    let cycles = sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 100)?.cycles;

    let acc = model.resource_by_name("acc").expect("accumulator");
    println!("\nran {cycles} control steps; acc = {}", sim.state().read_int(acc, &[])?);
    println!("simulator stats: {}", sim.stats());
    assert_eq!(sim.state().read_int(acc, &[])?, (6 * 7) - 2);
    Ok(())
}

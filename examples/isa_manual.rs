//! Generates the automatic text-book ISA manuals for all bundled models
//! (paper §1.1) and writes them under `target/manuals/`.
//!
//! ```sh
//! cargo run --example isa_manual
//! ```

use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/manuals");
    fs::create_dir_all(out_dir)?;
    for (name, wb) in [
        ("vliw62", lisa::models::vliw62::workbench()?),
        ("accu16", lisa::models::accu16::workbench()?),
        ("scalar2", lisa::models::scalar2::workbench()?),
        ("tinyrisc", lisa::models::tinyrisc::workbench()?),
    ] {
        let manual = lisa::docgen::manual(wb.model(), name);
        let path = out_dir.join(format!("{name}.md"));
        fs::write(&path, &manual)?;
        println!(
            "{} -> {} ({} lines, {} instruction sections)",
            name,
            path.display(),
            manual.lines().count(),
            manual.matches("\n### `").count()
        );
    }
    println!("\nexcerpt from vliw62.md:\n");
    let text = fs::read_to_string(out_dir.join("vliw62.md"))?;
    for line in text.lines().take(30) {
        println!("  {line}");
    }
    Ok(())
}

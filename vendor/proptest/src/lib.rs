//! A self-contained, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendor crate provides the subset of proptest's API that the workspace
//! uses: the [`Strategy`] trait (`prop_map`, `prop_flat_map`, `boxed`),
//! [`any`] over the common integer/bool/tuple types, integer-range and
//! string-pattern strategies, `prop::collection::vec`, the
//! [`proptest!`]/[`prop_oneof!`]/`prop_assert*`/[`prop_assume!`] macros
//! and [`ProptestConfig`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in scope, but is not minimised;
//! * **no failure persistence** — `.proptest-regressions` files are
//!   ignored;
//! * **deterministic seeding** — each test derives its seed from its own
//!   fully-qualified name (override with `PROPTEST_SEED`), so runs are
//!   reproducible by construction;
//! * **string "regexes"** are interpreted structurally: a character-class
//!   prefix (`\PC` or `[...]`) plus an optional `{min,max}` repetition.
//!   That covers the fuzz patterns used in this workspace.

#![forbid(unsafe_code)]

/// Test-case outcome used by the `proptest!` runner loop.
pub mod test_runner {
    /// Why a generated case did not count as a pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — generate another.
        Reject,
    }

    /// Result alias mirroring proptest's.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A small, fast, deterministic PRNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Derives a per-test RNG from the test's qualified name, so every
        /// test gets an independent, reproducible stream. `PROPTEST_SEED`
        /// perturbs all streams at once.
        #[must_use]
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                for b in extra.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            TestRng::from_seed(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform-ish value in `[lo, hi]` (inclusive), computed in `i128`
        /// so signed ranges work. Modulo bias is irrelevant at test scale.
        pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            if span == 0 {
                // Full u128 span: any value works.
                return self.next_u128() as i128;
            }
            lo + (self.next_u128() % span) as i128
        }

        /// Uniform-ish `usize` in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() as usize) % n
        }
    }
}

pub use test_runner::{TestCaseError, TestRng};

/// Runner configuration: the number of passing cases required.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProptestConfig {
    /// Passing cases to accumulate before the test succeeds.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48);
        ProptestConfig { cases }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values for property tests.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u128() % (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            if lo == 0 && hi == u128::MAX {
                rng.next_u128()
            } else {
                lo + rng.next_u128() % (hi - lo + 1)
            }
        }
    }

    use std::ops::{Range, RangeInclusive};

    /// Structural interpretation of the string patterns this workspace
    /// uses: a character class (`\PC` = printable, `[...]` = explicit
    /// set with ranges and `\n`/`\t`/`\\` escapes) plus an optional
    /// trailing `{min,max}` repetition count.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_pattern(self);
            let len = min + rng.index(max - min + 1);
            (0..len).map(|_| class[rng.index(class.len())]).collect()
        }
    }

    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let (class_spec, min, max) = match pattern.rfind('{') {
            Some(brace) if pattern.ends_with('}') => {
                let counts = &pattern[brace + 1..pattern.len() - 1];
                let (lo, hi) = counts.split_once(',').unwrap_or((counts, counts));
                match (lo.trim().parse(), hi.trim().parse()) {
                    (Ok(lo), Ok(hi)) => (&pattern[..brace], lo, hi),
                    _ => (pattern, 0, 16),
                }
            }
            _ => (pattern, 0, 16),
        };
        (char_class(class_spec), min, max)
    }

    fn char_class(spec: &str) -> Vec<char> {
        if let Some(body) = spec.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let mut chars: Vec<char> = Vec::new();
            let mut it = body.chars().peekable();
            while let Some(c) = it.next() {
                let c = if c == '\\' {
                    match it.next() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some(other) => other,
                        None => break,
                    }
                } else {
                    c
                };
                if it.peek() == Some(&'-') {
                    let mut ahead = it.clone();
                    ahead.next();
                    if let Some(&end) = ahead.peek() {
                        if end != ']' {
                            it.next();
                            it.next();
                            for v in c as u32..=end as u32 {
                                if let Some(ch) = char::from_u32(v) {
                                    chars.push(ch);
                                }
                            }
                            continue;
                        }
                    }
                }
                chars.push(c);
            }
            if chars.is_empty() {
                chars.push(' ');
            }
            return chars;
        }
        // `\PC` (and any unrecognised spec): printable characters — ASCII
        // plus a few multibyte ones so UTF-8 handling is exercised.
        let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        chars.extend(['é', 'Ω', '→', '語', '🦀']);
        chars
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )+};
    }

    arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally an arbitrary scalar value.
            if rng.index(4) == 0 {
                char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}')
            } else {
                char::from(0x20u8 + (rng.next_u64() % 95) as u8)
            }
        }
    }

    macro_rules! arbitrary_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        };
    }

    arbitrary_tuple!(A);
    arbitrary_tuple!(A, B);
    arbitrary_tuple!(A, B, C);
    arbitrary_tuple!(A, B, C, D);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::{any, Arbitrary};

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::RangeInclusive;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        elem: S,
        size: RangeInclusive<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = (*self.size.start(), *self.size.end());
            let len = lo + rng.index(hi - lo + 1);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `elem` and whose length lies in
    /// `size`.
    #[must_use]
    pub fn vec<S: Strategy>(elem: S, size: RangeInclusive<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// The prelude mirrored from real proptest: everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy modules, as in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; there is no
/// shrinking in this stand-in, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it does not count towards the target number
/// of passing cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i32..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn string_patterns_cover_class_and_length() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n]{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_assumes(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13, "assumed away");
            let _ = flip;
        }
    }
}

//! A self-contained, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendor crate provides the subset of criterion's API that the
//! workspace's benches use — `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BenchmarkId` and the `criterion_group!`/
//! `criterion_main!` macros — backed by a plain adaptive wall-clock
//! timer. There are no statistics, plots, or saved baselines: each
//! benchmark warms up briefly, runs until a time budget is spent, and
//! prints the mean time per iteration (plus throughput when configured).
//!
//! Set `CRITERION_MEASURE_MS` to change the per-benchmark measurement
//! budget (default 300 ms).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup values are grouped. Only a hint in real criterion;
/// ignored here (every batch has size one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured code.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher { elapsed: Duration::ZERO, iters: 0, budget }
    }

    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one untimed call.
        black_box(routine());
        while self.elapsed < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        while self.elapsed < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for following benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Finishes the group (reporting happens per-benchmark; this exists
    /// for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean();
        let mut line =
            format!("{}/{}: {} per iter ({} iters)", self.name, id, format_duration(mean), b.iters);
        if let Some(tp) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                let (count, unit) = match tp {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                line.push_str(&format!("  [{:.3} M{unit}/s]", count as f64 / secs / 1e6));
            }
        }
        println!("{line}");
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// CLI-argument configuration is a no-op in this stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let mut group = self.benchmark_group("bench");
        group.bench_function(BenchmarkId::from_parameter(name), f);
        group.finish();
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_and_reports() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_function("iter", |b| b.iter(|| black_box(3u64).pow(7)));
        group.bench_with_input(BenchmarkId::from_parameter("batched"), &5u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}

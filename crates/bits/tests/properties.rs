//! Property-based tests for the bit-value substrate: arithmetic laws,
//! pattern parsing totality, and match/encode inverses.

use lisa_bits::{BitPattern, Bits, Tern};
use proptest::prelude::*;

/// A strategy producing (width, value) pairs with value masked to width.
fn bits_strategy() -> impl Strategy<Value = Bits> {
    (1u32..=128, any::<u128>()).prop_map(|(w, v)| Bits::from_u128_wrapped(w, v))
}

/// Two same-width values.
fn bits_pair() -> impl Strategy<Value = (Bits, Bits)> {
    (1u32..=128, any::<u128>(), any::<u128>())
        .prop_map(|(w, a, b)| (Bits::from_u128_wrapped(w, a), Bits::from_u128_wrapped(w, b)))
}

fn tern_vec() -> impl Strategy<Value = Vec<Tern>> {
    prop::collection::vec(
        prop_oneof![Just(Tern::Zero), Just(Tern::One), Just(Tern::DontCare)],
        1..=128,
    )
}

proptest! {
    #[test]
    fn add_commutes((a, b) in bits_pair()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn add_sub_cancels((a, b) in bits_pair()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn neg_is_sub_from_zero(a in bits_strategy()) {
        prop_assert_eq!(a.wrapping_neg(), Bits::zero(a.width()).wrapping_sub(a));
    }

    #[test]
    fn signed_unsigned_views_agree_mod_2w(a in bits_strategy()) {
        let w = a.width();
        let signed = a.to_i128();
        let round = Bits::from_i128_wrapped(w, signed);
        prop_assert_eq!(round, a);
    }

    #[test]
    fn not_is_involution(a in bits_strategy()) {
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn xor_with_self_is_zero(a in bits_strategy()) {
        prop_assert_eq!((a ^ a).to_u128(), 0);
    }

    #[test]
    fn de_morgan((a, b) in bits_pair()) {
        prop_assert_eq!(!(a & b), (!a) | (!b));
    }

    #[test]
    fn shift_left_then_right_masks_low(a in bits_strategy(), amt in 0u32..32) {
        let w = a.width();
        prop_assume!(amt < w);
        let round = a.shl(amt).shr(amt);
        // Round trip loses the top `amt` bits only.
        let kept = if w - amt == 128 {
            a.to_u128()
        } else {
            a.to_u128() & ((1u128 << (w - amt)) - 1)
        };
        prop_assert_eq!(round.to_u128(), kept);
    }

    #[test]
    fn asr_preserves_sign(a in bits_strategy(), amt in 0u32..200) {
        let shifted = a.asr(amt);
        prop_assert_eq!(shifted.msb(), a.msb() && (a.msb() || shifted.msb()));
        if a.msb() {
            prop_assert!(shifted.to_i128() < 0 || a.to_i128() == 0);
        } else {
            prop_assert!(shifted.to_i128() >= 0);
        }
    }

    #[test]
    fn rotate_full_cycle_is_identity(a in bits_strategy()) {
        prop_assert_eq!(a.rotate_left(a.width()), a);
    }

    #[test]
    fn extract_insert_round_trip(
        (a, lo, len) in bits_strategy().prop_flat_map(|a| {
            let w = a.width();
            (Just(a), 0..w).prop_flat_map(move |(a, lo)| (Just(a), Just(lo), 1..=w - lo))
        })
    ) {
        let field = a.extract(lo, len).unwrap();
        prop_assert_eq!(a.insert(lo, field).unwrap(), a);
    }

    #[test]
    fn concat_extract_agree(a in bits_strategy(), b in bits_strategy()) {
        prop_assume!(a.width() + b.width() <= 128);
        let cat = a.concat(b).unwrap();
        prop_assert_eq!(cat.extract(b.width(), a.width()).unwrap(), a);
        prop_assert_eq!(cat.extract(0, b.width()).unwrap(), b);
    }

    #[test]
    fn saturating_add_is_clamped_exact_sum((a, b) in bits_pair()) {
        prop_assume!(a.width() < 128);
        let exact = a.to_i128() + b.to_i128();
        let sat = a.saturating_add_signed(b).to_i128();
        let max = a.max_signed();
        prop_assert_eq!(sat, exact.clamp(-max - 1, max));
    }

    #[test]
    fn widening_mul_is_exact((a, b) in bits_pair()) {
        prop_assume!(a.width() <= 64);
        let p = a.widening_mul_signed(b).unwrap();
        prop_assert_eq!(p.to_i128(), a.to_i128() * b.to_i128());
    }

    #[test]
    fn norm_shifted_value_is_normalised(a in bits_strategy()) {
        // Shifting left by norm() puts the first significant bit just
        // below the sign bit (or yields 0 / -1 for degenerate values).
        let n = a.norm();
        let w = a.width();
        prop_assert!(n < w);
        if n < w - 1 {
            let shifted = a.shl(n);
            // After normalisation the bit below the sign differs from the sign.
            let sign = shifted.msb();
            let below = shifted.bit(w.saturating_sub(2)).unwrap();
            prop_assert_ne!(sign, below);
        }
    }

    #[test]
    fn pattern_display_parse_round_trip(terns in tern_vec()) {
        let p = BitPattern::from_terns(&terns).unwrap();
        let reparsed: BitPattern = p.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn pattern_parse_never_panics(s in "\\PC{0,40}") {
        let _ = s.parse::<BitPattern>();
    }

    #[test]
    fn fully_specified_pattern_matches_only_itself(w in 1u32..=64, v in any::<u128>()) {
        let p = BitPattern::from_value(w, v);
        let v = v & if w == 128 { u128::MAX } else { (1 << w) - 1 };
        prop_assert!(p.matches_u128(v));
        prop_assert!(!p.matches_u128(v ^ 1));
    }

    #[test]
    fn overlap_is_symmetric(ta in tern_vec(), tb in tern_vec()) {
        let a = BitPattern::from_terns(&ta).unwrap();
        let b = BitPattern::from_terns(&tb).unwrap();
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn subsume_implies_overlap(ta in tern_vec(), tb in tern_vec()) {
        let a = BitPattern::from_terns(&ta).unwrap();
        let b = BitPattern::from_terns(&tb).unwrap();
        if a.subsumes(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn any_pattern_matches_everything(w in 1u32..=128, v in any::<u128>()) {
        prop_assert!(BitPattern::any(w).matches_u128(v));
    }
}

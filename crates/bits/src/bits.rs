use std::fmt;

use crate::{mask, BitsError, MAX_WIDTH};

/// An arbitrary-width (1..=128 bits) two's-complement value.
///
/// `Bits` is the value type stored in every simulated LISA resource: a
/// `REGISTER bit[48] accu` holds a `Bits` of width 48, a `bit carry` holds a
/// `Bits` of width 1, and an `int` memory cell holds a `Bits` of width 32.
/// The raw payload is always kept masked to the declared width, so equality,
/// hashing and ordering behave like hardware registers.
///
/// Arithmetic comes in explicit flavours, mirroring what DSP data paths
/// provide: wrapping (`wrapping_add`), saturating (`saturating_add_signed`)
/// and bit-level operations. Binary operators via `std::ops` are provided
/// for the common wrapping semantics and panic on width mismatch (the
/// model database guarantees widths agree before simulation starts).
///
/// # Examples
///
/// ```
/// use lisa_bits::Bits;
///
/// # fn main() -> Result<(), lisa_bits::BitsError> {
/// let a = Bits::new(16, 0x7fff)?;
/// let b = Bits::new(16, 1)?;
/// assert_eq!(a.wrapping_add(b).to_i128(), -32768); // wraps
/// assert_eq!(a.saturating_add_signed(b).to_i128(), 32767); // saturates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    value: u128,
}

impl Bits {
    /// Creates a value of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::InvalidWidth`] if `width` is not in `1..=128`
    /// and [`BitsError::ValueTooWide`] if `value` has bits set above
    /// `width`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// # fn main() -> Result<(), lisa_bits::BitsError> {
    /// let flag = Bits::new(1, 1)?;
    /// assert_eq!(flag.width(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(width: u32, value: u128) -> Result<Self, BitsError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(BitsError::InvalidWidth { width });
        }
        if value & !mask(width) != 0 {
            return Err(BitsError::ValueTooWide { value, width });
        }
        Ok(Bits { width, value })
    }

    /// Creates a zero value of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128`.
    #[must_use]
    pub fn zero(width: u32) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width {width} out of range");
        Bits { width, value: 0 }
    }

    /// Creates an all-ones value of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128`.
    #[must_use]
    pub fn ones(width: u32) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width {width} out of range");
        Bits { width, value: mask(width) }
    }

    /// Creates a value by truncating (wrapping) `value` to `width` bits.
    ///
    /// Unlike [`Bits::new`] this never fails on wide values; it keeps the
    /// low `width` bits, which is the hardware register-write semantics.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128`.
    #[must_use]
    pub fn from_u128_wrapped(width: u32, value: u128) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width {width} out of range");
        Bits { width, value: value & mask(width) }
    }

    /// Creates a value from a signed integer, wrapping to `width` bits
    /// (two's-complement encoding).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// let v = Bits::from_i128_wrapped(8, -1);
    /// assert_eq!(v.to_u128(), 0xff);
    /// assert_eq!(v.to_i128(), -1);
    /// ```
    #[must_use]
    pub fn from_i128_wrapped(width: u32, value: i128) -> Self {
        Self::from_u128_wrapped(width, value as u128)
    }

    /// Width of the value in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw unsigned payload (always `< 2^width`).
    #[inline]
    #[must_use]
    pub fn to_u128(&self) -> u128 {
        self.value
    }

    /// The value interpreted as a two's-complement signed integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// assert_eq!(Bits::from_u128_wrapped(4, 0b1000).to_i128(), -8);
    /// assert_eq!(Bits::from_u128_wrapped(4, 0b0111).to_i128(), 7);
    /// ```
    #[must_use]
    pub fn to_i128(&self) -> i128 {
        if self.msb() {
            (self.value | !mask(self.width)) as i128
        } else {
            self.value as i128
        }
    }

    /// The low 64 bits of the payload, truncating any higher bits.
    #[must_use]
    pub fn to_u64_lossy(&self) -> u64 {
        self.value as u64
    }

    /// The most significant (sign) bit.
    #[inline]
    #[must_use]
    pub fn msb(&self) -> bool {
        self.value >> (self.width - 1) & 1 == 1
    }

    /// Whether every bit is zero.
    #[inline]
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Bit at `index` (0 = least significant).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::RangeOutOfBounds`] if `index >= width`.
    pub fn bit(&self, index: u32) -> Result<bool, BitsError> {
        if index >= self.width {
            return Err(BitsError::RangeOutOfBounds { lo: index, len: 1, width: self.width });
        }
        Ok(self.value >> index & 1 == 1)
    }

    /// Extracts `len` bits starting at bit `lo` as a new value of width
    /// `len`.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::RangeOutOfBounds`] if the range escapes the
    /// width and [`BitsError::InvalidWidth`] if `len` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// # fn main() -> Result<(), lisa_bits::BitsError> {
    /// let word = Bits::new(32, 0xDEAD_BEEF)?;
    /// assert_eq!(word.extract(16, 16)?.to_u128(), 0xDEAD);
    /// assert_eq!(word.extract(0, 8)?.to_u128(), 0xEF);
    /// # Ok(())
    /// # }
    /// ```
    pub fn extract(&self, lo: u32, len: u32) -> Result<Bits, BitsError> {
        if len == 0 || len > MAX_WIDTH {
            return Err(BitsError::InvalidWidth { width: len });
        }
        if lo.checked_add(len).is_none_or(|hi| hi > self.width) {
            return Err(BitsError::RangeOutOfBounds { lo, len, width: self.width });
        }
        Ok(Bits { width: len, value: self.value >> lo & mask(len) })
    }

    /// Returns a copy with `field` inserted at bit `lo` (replacing
    /// `field.width()` bits).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::RangeOutOfBounds`] if the field escapes the
    /// width.
    pub fn insert(&self, lo: u32, field: Bits) -> Result<Bits, BitsError> {
        let len = field.width;
        if lo.checked_add(len).is_none_or(|hi| hi > self.width) {
            return Err(BitsError::RangeOutOfBounds { lo, len, width: self.width });
        }
        let cleared = self.value & !(mask(len) << lo);
        Ok(Bits { width: self.width, value: cleared | field.value << lo })
    }

    /// Zero-extends or truncates to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is not in `1..=128`.
    #[must_use]
    pub fn resize_zext(&self, new_width: u32) -> Bits {
        Bits::from_u128_wrapped(new_width, self.value)
    }

    /// Sign-extends or truncates to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is not in `1..=128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// let v = Bits::from_u128_wrapped(4, 0b1010);
    /// assert_eq!(v.resize_sext(8).to_u128(), 0b1111_1010);
    /// ```
    #[must_use]
    pub fn resize_sext(&self, new_width: u32) -> Bits {
        Bits::from_i128_wrapped(new_width, self.to_i128())
    }

    /// Concatenates `self` (high part) with `low` (low part).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::ConcatTooWide`] if the combined width exceeds
    /// [`MAX_WIDTH`].
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// # fn main() -> Result<(), lisa_bits::BitsError> {
    /// let hi = Bits::new(4, 0xA)?;
    /// let lo = Bits::new(8, 0x5C)?;
    /// assert_eq!(hi.concat(lo)?.to_u128(), 0xA5C);
    /// # Ok(())
    /// # }
    /// ```
    pub fn concat(&self, low: Bits) -> Result<Bits, BitsError> {
        let width = self.width + low.width;
        if width > MAX_WIDTH {
            return Err(BitsError::ConcatTooWide { width });
        }
        Ok(Bits { width, value: self.value << low.width | low.value })
    }

    fn require_same_width(&self, other: &Bits) -> Result<(), BitsError> {
        if self.width != other.width {
            Err(BitsError::WidthMismatch { left: self.width, right: other.width })
        } else {
            Ok(())
        }
    }

    /// Modular (register-wrapping) addition.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn wrapping_add(&self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("wrapping_add width mismatch");
        Bits::from_u128_wrapped(self.width, self.value.wrapping_add(rhs.value))
    }

    /// Modular subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn wrapping_sub(&self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("wrapping_sub width mismatch");
        Bits::from_u128_wrapped(self.width, self.value.wrapping_sub(rhs.value))
    }

    /// Modular multiplication (low `width` bits of the product).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn wrapping_mul(&self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("wrapping_mul width mismatch");
        Bits::from_u128_wrapped(self.width, self.value.wrapping_mul(rhs.value))
    }

    /// Full-width signed multiply: the `2 * width` bit signed product, as
    /// produced by DSP multiplier units (e.g. 16×16→32).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::WidthMismatch`] if the widths differ and
    /// [`BitsError::ConcatTooWide`] if `2 * width > 128`.
    pub fn widening_mul_signed(&self, rhs: Bits) -> Result<Bits, BitsError> {
        self.require_same_width(&rhs)?;
        let width = self.width * 2;
        if width > MAX_WIDTH {
            return Err(BitsError::ConcatTooWide { width });
        }
        let product = self.to_i128().wrapping_mul(rhs.to_i128());
        Ok(Bits::from_i128_wrapped(width, product))
    }

    /// Two's-complement negation (wrapping; `-MIN` stays `MIN`).
    #[must_use]
    pub fn wrapping_neg(&self) -> Bits {
        Bits::from_u128_wrapped(self.width, self.value.wrapping_neg())
    }

    /// Saturating signed addition: clamps at the most positive / most
    /// negative representable value instead of wrapping, as DSP saturation
    /// arithmetic (e.g. the C62x `SADD`) does.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// let min = Bits::from_i128_wrapped(8, -128);
    /// let m1 = Bits::from_i128_wrapped(8, -1);
    /// assert_eq!(min.saturating_add_signed(m1).to_i128(), -128);
    /// ```
    #[must_use]
    pub fn saturating_add_signed(&self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("saturating_add width mismatch");
        let sum = self.to_i128() + rhs.to_i128(); // widths <= 128 ⇒ no i128 overflow for width < 128
        self.clamp_signed(sum)
    }

    /// Saturating signed subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn saturating_sub_signed(&self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("saturating_sub width mismatch");
        let diff = self.to_i128() - rhs.to_i128();
        self.clamp_signed(diff)
    }

    /// Clamps an i128 into the signed range of this width.
    fn clamp_signed(&self, v: i128) -> Bits {
        let max = self.max_signed();
        let min = -max - 1;
        Bits::from_i128_wrapped(self.width, v.clamp(min, max))
    }

    /// The most positive signed value of this width (`2^(w-1) - 1`).
    #[must_use]
    pub fn max_signed(&self) -> i128 {
        if self.width == 128 {
            i128::MAX
        } else {
            (1i128 << (self.width - 1)) - 1
        }
    }

    /// Logical shift left by `amount`; bits shifted past the width are lost.
    /// Shift amounts `>= width` yield zero (like a barrel shifter fed the
    /// full amount, not a masked one).
    #[must_use]
    pub fn shl(&self, amount: u32) -> Bits {
        if amount >= self.width {
            Bits::zero(self.width)
        } else {
            Bits::from_u128_wrapped(self.width, self.value << amount)
        }
    }

    /// Logical shift right (zero fill). Amounts `>= width` yield zero.
    #[must_use]
    pub fn shr(&self, amount: u32) -> Bits {
        if amount >= self.width {
            Bits::zero(self.width)
        } else {
            Bits { width: self.width, value: self.value >> amount }
        }
    }

    /// Arithmetic shift right (sign fill). Amounts `>= width` yield the
    /// all-sign-bits value.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// let v = Bits::from_i128_wrapped(8, -64);
    /// assert_eq!(v.asr(2).to_i128(), -16);
    /// assert_eq!(v.asr(100).to_i128(), -1);
    /// ```
    #[must_use]
    pub fn asr(&self, amount: u32) -> Bits {
        let amount = amount.min(self.width - 1).min(127);
        Bits::from_i128_wrapped(self.width, self.to_i128() >> amount)
    }

    /// Rotates left by `amount % width`.
    #[must_use]
    pub fn rotate_left(&self, amount: u32) -> Bits {
        let amount = amount % self.width;
        if amount == 0 {
            return *self;
        }
        let hi = self.value << amount & mask(self.width);
        let lo = self.value >> (self.width - amount);
        Bits { width: self.width, value: hi | lo }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.value.count_ones()
    }

    /// Number of redundant sign bits minus… no: the count of leading bits
    /// equal to the sign bit, excluding the sign bit itself (the C62x `NORM`
    /// semantics used for block-floating-point normalisation).
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::Bits;
    /// assert_eq!(Bits::from_i128_wrapped(32, 1).norm(), 30);
    /// assert_eq!(Bits::from_i128_wrapped(32, -1).norm(), 31);
    /// assert_eq!(Bits::from_i128_wrapped(32, i128::from(i32::MIN)).norm(), 0);
    /// ```
    #[must_use]
    pub fn norm(&self) -> u32 {
        let sign = self.msb();
        let mut count = 0;
        for i in (0..self.width - 1).rev() {
            if (self.value >> i & 1 == 1) == sign {
                count += 1;
            } else {
                break;
            }
        }
        count
    }

    /// Bitwise NOT within the width.
    #[must_use]
    pub fn not(&self) -> Bits {
        Bits { width: self.width, value: !self.value & mask(self.width) }
    }

    /// Absolute value with signed saturation (`|MIN|` saturates to `MAX`,
    /// matching DSP `ABS` units).
    #[must_use]
    pub fn abs_saturating(&self) -> Bits {
        let v = self.to_i128();
        if self.width < 128 {
            self.clamp_signed(v.abs())
        } else if v == i128::MIN {
            Bits::from_i128_wrapped(self.width, i128::MAX)
        } else {
            Bits::from_i128_wrapped(self.width, v.abs())
        }
    }

    /// Unsigned comparison.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn cmp_unsigned(&self, rhs: Bits) -> std::cmp::Ordering {
        self.require_same_width(&rhs).expect("cmp_unsigned width mismatch");
        self.value.cmp(&rhs.value)
    }

    /// Signed comparison.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn cmp_signed(&self, rhs: Bits) -> std::cmp::Ordering {
        self.require_same_width(&rhs).expect("cmp_signed width mismatch");
        self.to_i128().cmp(&rhs.to_i128())
    }
}

impl Default for Bits {
    /// A single zero bit, the narrowest value.
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.value)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.value, f)
    }
}

impl fmt::UpperHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.value, f)
    }
}

impl fmt::Octal for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.value, f)
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.value, f)
    }
}

impl std::ops::BitAnd for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    fn bitand(self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("& width mismatch");
        Bits { width: self.width, value: self.value & rhs.value }
    }
}

impl std::ops::BitOr for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    fn bitor(self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("| width mismatch");
        Bits { width: self.width, value: self.value | rhs.value }
    }
}

impl std::ops::BitXor for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    fn bitxor(self, rhs: Bits) -> Bits {
        self.require_same_width(&rhs).expect("^ width mismatch");
        Bits { width: self.width, value: self.value ^ rhs.value }
    }
}

impl std::ops::Not for Bits {
    type Output = Bits;
    fn not(self) -> Bits {
        Bits::not(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_width_and_value() {
        assert!(Bits::new(0, 0).is_err());
        assert!(Bits::new(129, 0).is_err());
        assert!(Bits::new(8, 0x100).is_err());
        assert!(Bits::new(8, 0xff).is_ok());
        assert!(Bits::new(128, u128::MAX).is_ok());
    }

    #[test]
    fn wrapping_matches_register_semantics() {
        let a = Bits::new(8, 0xff).unwrap();
        let one = Bits::new(8, 1).unwrap();
        assert_eq!(a.wrapping_add(one).to_u128(), 0);
        assert_eq!(Bits::zero(8).wrapping_sub(one).to_u128(), 0xff);
        assert_eq!(a.wrapping_mul(a).to_u128(), 0x01); // 255*255 = 0xfe01
    }

    #[test]
    fn signed_view_round_trips() {
        for w in [1u32, 4, 17, 48, 64, 127, 128] {
            let min = if w == 128 { i128::MIN } else { -(1i128 << (w - 1)) };
            let max = if w == 128 { i128::MAX } else { (1i128 << (w - 1)) - 1 };
            for v in [min, -1, 0, 1, max] {
                if w == 1 && v == 1 {
                    continue; // 1-bit signed range is [-1, 0]
                }
                let b = Bits::from_i128_wrapped(w, v);
                assert_eq!(b.to_i128(), v, "width {w} value {v}");
            }
        }
    }

    #[test]
    fn extract_and_insert_are_inverse() {
        let word = Bits::new(32, 0xDEAD_BEEF).unwrap();
        let field = word.extract(8, 16).unwrap();
        assert_eq!(field.to_u128(), 0xADBE);
        let back = word.insert(8, field).unwrap();
        assert_eq!(back, word);
        let replaced = word.insert(8, Bits::new(16, 0x1234).unwrap()).unwrap();
        assert_eq!(replaced.to_u128(), 0xDE12_34EF);
    }

    #[test]
    fn extract_rejects_escaping_ranges() {
        let word = Bits::new(16, 0).unwrap();
        assert!(matches!(word.extract(10, 8), Err(BitsError::RangeOutOfBounds { .. })));
        assert!(matches!(word.extract(0, 0), Err(BitsError::InvalidWidth { .. })));
        // Offset + length overflowing u32 must not panic.
        assert!(word.extract(u32::MAX, 2).is_err());
    }

    #[test]
    fn concat_orders_high_then_low() {
        let hi = Bits::new(8, 0xAB).unwrap();
        let lo = Bits::new(4, 0xC).unwrap();
        let cat = hi.concat(lo).unwrap();
        assert_eq!(cat.width(), 12);
        assert_eq!(cat.to_u128(), 0xABC);
        assert!(Bits::ones(100).concat(Bits::ones(100)).is_err());
    }

    #[test]
    fn shifts_behave_like_barrel_shifter() {
        let v = Bits::new(8, 0b1001_0110).unwrap();
        assert_eq!(v.shl(2).to_u128(), 0b0101_1000);
        assert_eq!(v.shr(2).to_u128(), 0b0010_0101);
        assert_eq!(v.shl(8).to_u128(), 0);
        assert_eq!(v.shr(200).to_u128(), 0);
        assert_eq!(v.asr(2).to_u128(), 0b1110_0101);
    }

    #[test]
    fn asr_on_full_width() {
        let v = Bits::from_i128_wrapped(128, -4);
        assert_eq!(v.asr(1).to_i128(), -2);
        assert_eq!(v.asr(500).to_i128(), -1);
    }

    #[test]
    fn rotate_left_wraps_bits() {
        let v = Bits::new(8, 0b1000_0001).unwrap();
        assert_eq!(v.rotate_left(1).to_u128(), 0b0000_0011);
        assert_eq!(v.rotate_left(8), v);
        assert_eq!(v.rotate_left(9).to_u128(), 0b0000_0011);
    }

    #[test]
    fn saturation_clamps_at_rails() {
        let max = Bits::from_i128_wrapped(16, 32767);
        let min = Bits::from_i128_wrapped(16, -32768);
        let one = Bits::from_i128_wrapped(16, 1);
        assert_eq!(max.saturating_add_signed(one).to_i128(), 32767);
        assert_eq!(min.saturating_sub_signed(one).to_i128(), -32768);
        assert_eq!(min.abs_saturating().to_i128(), 32767);
        let five = Bits::from_i128_wrapped(16, 5);
        assert_eq!(five.saturating_add_signed(one).to_i128(), 6);
    }

    #[test]
    fn widening_mul_matches_dsp_multiplier() {
        let a = Bits::from_i128_wrapped(16, -3);
        let b = Bits::from_i128_wrapped(16, 1000);
        let p = a.widening_mul_signed(b).unwrap();
        assert_eq!(p.width(), 32);
        assert_eq!(p.to_i128(), -3000);
        let wide = Bits::zero(65);
        assert!(wide.widening_mul_signed(Bits::zero(65)).is_err());
    }

    #[test]
    fn norm_counts_redundant_sign_bits() {
        assert_eq!(Bits::zero(32).norm(), 31);
        assert_eq!(Bits::from_i128_wrapped(32, 0x4000_0000).norm(), 0);
        assert_eq!(Bits::from_i128_wrapped(32, 0x2000_0000).norm(), 1);
        assert_eq!(Bits::from_i128_wrapped(32, -2).norm(), 30);
    }

    #[test]
    fn comparisons_respect_signedness() {
        use std::cmp::Ordering::*;
        let a = Bits::from_i128_wrapped(8, -1); // 0xff
        let b = Bits::from_i128_wrapped(8, 1);
        assert_eq!(a.cmp_signed(b), Less);
        assert_eq!(a.cmp_unsigned(b), Greater);
    }

    #[test]
    fn bitwise_operators_mask_to_width() {
        let a = Bits::new(4, 0b1010).unwrap();
        let b = Bits::new(4, 0b0110).unwrap();
        assert_eq!((a & b).to_u128(), 0b0010);
        assert_eq!((a | b).to_u128(), 0b1110);
        assert_eq!((a ^ b).to_u128(), 0b1100);
        assert_eq!((!a).to_u128(), 0b0101);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_add_panics() {
        let _ = Bits::zero(8).wrapping_add(Bits::zero(16));
    }

    #[test]
    fn display_formats_width_and_hex() {
        let v = Bits::new(48, 0xBEEF).unwrap();
        assert_eq!(v.to_string(), "48'hbeef");
        assert_eq!(format!("{v:x}"), "beef");
        assert_eq!(format!("{v:X}"), "BEEF");
        assert_eq!(format!("{v:b}"), "1011111011101111");
        assert_eq!(format!("{v:o}"), "137357");
    }

    #[test]
    fn resize_extends_and_truncates() {
        let v = Bits::from_i128_wrapped(8, -2);
        assert_eq!(v.resize_zext(16).to_u128(), 0xfe);
        assert_eq!(v.resize_sext(16).to_i128(), -2);
        assert_eq!(v.resize_sext(4).to_u128(), 0xe);
        assert_eq!(v.resize_zext(4).to_u128(), 0xe);
    }
}

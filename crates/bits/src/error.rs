use std::error::Error;
use std::fmt;

/// Error type for bit-value and bit-pattern construction and manipulation.
///
/// # Examples
///
/// ```
/// use lisa_bits::{Bits, BitsError};
///
/// let err = Bits::new(0, 1).unwrap_err();
/// assert!(matches!(err, BitsError::InvalidWidth { width: 0 }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitsError {
    /// The requested width is zero or exceeds [`MAX_WIDTH`](crate::MAX_WIDTH).
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// The value does not fit in the requested width.
    ValueTooWide {
        /// The offending value.
        value: u128,
        /// The target width.
        width: u32,
    },
    /// Two operands had different widths where equal widths are required.
    WidthMismatch {
        /// Width of the left operand.
        left: u32,
        /// Width of the right operand.
        right: u32,
    },
    /// A bit range `[lo, lo + len)` escapes the value's width.
    RangeOutOfBounds {
        /// Low bit index of the range.
        lo: u32,
        /// Length of the range in bits.
        len: u32,
        /// Width of the value being indexed.
        width: u32,
    },
    /// A bit-pattern literal contained a character other than `0`, `1`, `x`,
    /// `X` or `_`, or was missing its `0b` prefix, or was empty.
    InvalidPattern {
        /// The offending literal text.
        text: String,
    },
    /// Concatenating two values or patterns would exceed [`MAX_WIDTH`](crate::MAX_WIDTH).
    ConcatTooWide {
        /// The combined width.
        width: u32,
    },
    /// A pattern with don't-care bits was used where a fully-specified
    /// pattern is required (e.g. when encoding without field values).
    UnderspecifiedPattern {
        /// Number of don't-care bits in the pattern.
        dont_cares: u32,
    },
}

impl fmt::Display for BitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitsError::InvalidWidth { width } => {
                write!(f, "bit width {width} is not in 1..={}", crate::MAX_WIDTH)
            }
            BitsError::ValueTooWide { value, width } => {
                write!(f, "value {value:#x} does not fit in {width} bits")
            }
            BitsError::WidthMismatch { left, right } => {
                write!(f, "operand widths differ: {left} vs {right}")
            }
            BitsError::RangeOutOfBounds { lo, len, width } => {
                write!(f, "bit range [{lo}, {}) escapes width {width}", lo + len)
            }
            BitsError::InvalidPattern { text } => {
                write!(f, "invalid bit pattern literal `{text}`")
            }
            BitsError::ConcatTooWide { width } => {
                write!(f, "concatenated width {width} exceeds maximum {}", crate::MAX_WIDTH)
            }
            BitsError::UnderspecifiedPattern { dont_cares } => {
                write!(f, "pattern has {dont_cares} unresolved don't-care bits")
            }
        }
    }
}

impl Error for BitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let cases: Vec<(BitsError, &str)> = vec![
            (BitsError::InvalidWidth { width: 0 }, "bit width 0"),
            (BitsError::ValueTooWide { value: 0x1ff, width: 8 }, "0x1ff"),
            (BitsError::WidthMismatch { left: 8, right: 16 }, "8 vs 16"),
            (BitsError::RangeOutOfBounds { lo: 4, len: 8, width: 8 }, "[4, 12)"),
            (BitsError::InvalidPattern { text: "0b12".into() }, "`0b12`"),
            (BitsError::ConcatTooWide { width: 200 }, "200"),
            (BitsError::UnderspecifiedPattern { dont_cares: 3 }, "3 unresolved"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<BitsError>();
    }
}

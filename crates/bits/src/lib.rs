//! Bit-accurate value substrate for the LISA toolchain.
//!
//! LISA resource declarations give every storage object an exact bit width
//! (`REGISTER bit[48] accu;`, `REGISTER bit carry;`), and instruction codings
//! are sequences of `0`, `1` and don't-care `x` bits (`0b1001x110`). This
//! crate provides the two corresponding value types used throughout the
//! generated tools:
//!
//! * [`Bits`] — an arbitrary-width (1..=128) two's-complement value with
//!   wrapping, saturating and bit-manipulation arithmetic, used for register
//!   and memory contents and for instruction words;
//! * [`BitPattern`] — a ternary (`0`/`1`/`x`) bit string with matching,
//!   encoding, field extraction and overlap analysis, used for `CODING`
//!   sections and decoder construction.
//!
//! # Examples
//!
//! ```
//! use lisa_bits::{Bits, BitPattern};
//!
//! # fn main() -> Result<(), lisa_bits::BitsError> {
//! let accu = Bits::new(48, 0xFFFF_FFFF_FFFF)?;
//! assert_eq!(accu.wrapping_add(Bits::new(48, 1)?).to_u128(), 0);
//!
//! let pat: BitPattern = "0b1001x110".parse()?;
//! assert!(pat.matches_u128(0b1001_0110));
//! assert!(pat.matches_u128(0b1001_1110));
//! assert!(!pat.matches_u128(0b0001_0110));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod error;
mod pattern;

pub use bits::Bits;
pub use error::BitsError;
pub use pattern::{BitPattern, Tern};

/// Maximum supported bit width for [`Bits`] and [`BitPattern`].
pub const MAX_WIDTH: u32 = 128;

/// Returns the all-ones mask for a width in `1..=128`.
#[inline]
pub(crate) fn mask(width: u32) -> u128 {
    assert!((1..=MAX_WIDTH).contains(&width), "width {width} out of range");
    if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

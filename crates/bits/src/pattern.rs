use std::fmt;
use std::str::FromStr;

use crate::{mask, Bits, BitsError, MAX_WIDTH};

/// One ternary bit of a [`BitPattern`]: fixed `0`, fixed `1`, or don't-care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tern {
    /// Fixed zero bit.
    Zero,
    /// Fixed one bit.
    One,
    /// Don't-care bit (`x` in LISA coding sections): matches anything when
    /// decoding, is a free field position when encoding.
    DontCare,
}

impl fmt::Display for Tern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tern::Zero => "0",
            Tern::One => "1",
            Tern::DontCare => "x",
        })
    }
}

/// A ternary bit string as written in LISA `CODING` sections.
///
/// The paper specifies binary code "as a sequence composed of 0, 1, and x
/// which is preceded by a 0b"; during decoding the fixed bits must match the
/// instruction word and `x` matches always, while during encoding the same
/// pattern generates the instruction word (don't-cares filled by operand
/// fields). `BitPattern` captures exactly that: a `(mask, value)` pair plus
/// width, with helpers for matching, encoding, concatenation, and overlap
/// analysis used when the decoder is built.
///
/// # Examples
///
/// ```
/// use lisa_bits::BitPattern;
///
/// # fn main() -> Result<(), lisa_bits::BitsError> {
/// let add: BitPattern = "0b0011x10".parse()?;
/// assert_eq!(add.width(), 7);
/// assert_eq!(add.dont_care_count(), 1);
/// assert!(add.matches_u128(0b0011110));
/// assert!(!add.matches_u128(0b1011110));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitPattern {
    width: u32,
    /// 1 where the bit is fixed (0 or 1), 0 where don't-care.
    fixed_mask: u128,
    /// Fixed bit values; guaranteed zero at don't-care positions.
    value: u128,
}

impl BitPattern {
    /// Builds a pattern from individual ternary bits, most significant
    /// first (the order they appear in LISA source).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::InvalidWidth`] if the slice is empty or longer
    /// than [`MAX_WIDTH`] bits.
    pub fn from_terns(terns: &[Tern]) -> Result<Self, BitsError> {
        let width = terns.len() as u32;
        if width == 0 || width > MAX_WIDTH {
            return Err(BitsError::InvalidWidth { width });
        }
        let mut fixed_mask = 0u128;
        let mut value = 0u128;
        for (i, t) in terns.iter().enumerate() {
            let bit = width as usize - 1 - i;
            match t {
                Tern::Zero => fixed_mask |= 1 << bit,
                Tern::One => {
                    fixed_mask |= 1 << bit;
                    value |= 1 << bit;
                }
                Tern::DontCare => {}
            }
        }
        Ok(BitPattern { width, fixed_mask, value })
    }

    /// Builds a fully-specified pattern from a concrete value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128` (the value is masked).
    #[must_use]
    pub fn from_value(width: u32, value: u128) -> Self {
        let b = Bits::from_u128_wrapped(width, value);
        BitPattern { width, fixed_mask: mask(width), value: b.to_u128() }
    }

    /// An all-don't-care pattern of `width` bits (a pure operand field).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=128`.
    #[must_use]
    pub fn any(width: u32) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width {width} out of range");
        BitPattern { width, fixed_mask: 0, value: 0 }
    }

    /// Width in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask of fixed (non-don't-care) bit positions.
    #[inline]
    #[must_use]
    pub fn fixed_mask(&self) -> u128 {
        self.fixed_mask
    }

    /// Values of the fixed bits (zero at don't-care positions).
    #[inline]
    #[must_use]
    pub fn fixed_value(&self) -> u128 {
        self.value
    }

    /// Number of don't-care bits.
    #[must_use]
    pub fn dont_care_count(&self) -> u32 {
        self.width - self.fixed_mask.count_ones()
    }

    /// Whether every bit is fixed.
    #[must_use]
    pub fn is_fully_specified(&self) -> bool {
        self.fixed_mask == mask(self.width)
    }

    /// Tests a raw instruction word against the pattern (decode-time match).
    /// Bits of `word` above the pattern width are ignored.
    #[inline]
    #[must_use]
    pub fn matches_u128(&self, word: u128) -> bool {
        word & self.fixed_mask == self.value
    }

    /// Tests a [`Bits`] value of the same width against the pattern.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::WidthMismatch`] if the widths differ.
    pub fn matches(&self, word: &Bits) -> Result<bool, BitsError> {
        if word.width() != self.width {
            return Err(BitsError::WidthMismatch { left: self.width, right: word.width() });
        }
        Ok(self.matches_u128(word.to_u128()))
    }

    /// Encodes the pattern to a concrete word, requiring that every bit is
    /// fixed.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::UnderspecifiedPattern`] if don't-care bits
    /// remain.
    pub fn encode_exact(&self) -> Result<Bits, BitsError> {
        if !self.is_fully_specified() {
            return Err(BitsError::UnderspecifiedPattern { dont_cares: self.dont_care_count() });
        }
        Ok(Bits::from_u128_wrapped(self.width, self.value))
    }

    /// Encodes with don't-care bits forced to zero (used for canonical
    /// encodings of patterns whose free bits are architectural zeros).
    #[must_use]
    pub fn encode_zero_filled(&self) -> Bits {
        Bits::from_u128_wrapped(self.width, self.value)
    }

    /// Concatenates `self` (high bits) with `low` (low bits), as coding
    /// elements concatenate left-to-right in a `CODING` section.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::ConcatTooWide`] if the result would exceed
    /// [`MAX_WIDTH`].
    pub fn concat(&self, low: &BitPattern) -> Result<BitPattern, BitsError> {
        let width = self.width + low.width;
        if width > MAX_WIDTH {
            return Err(BitsError::ConcatTooWide { width });
        }
        Ok(BitPattern {
            width,
            fixed_mask: self.fixed_mask << low.width | low.fixed_mask,
            value: self.value << low.width | low.value,
        })
    }

    /// Whether some word can match both patterns (decoder-ambiguity test).
    /// Patterns of different widths never overlap.
    ///
    /// # Examples
    ///
    /// ```
    /// use lisa_bits::BitPattern;
    /// # fn main() -> Result<(), lisa_bits::BitsError> {
    /// let a: BitPattern = "0b1x0".parse()?;
    /// let b: BitPattern = "0b1x1".parse()?;
    /// let c: BitPattern = "0b1xx".parse()?;
    /// assert!(!a.overlaps(&b)); // last bit differs
    /// assert!(a.overlaps(&c));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn overlaps(&self, other: &BitPattern) -> bool {
        self.width == other.width
            && (self.value ^ other.value) & self.fixed_mask & other.fixed_mask == 0
    }

    /// Whether every word matching `other` also matches `self` (i.e.
    /// `self` is the more general pattern). Used to rank alias encodings.
    #[must_use]
    pub fn subsumes(&self, other: &BitPattern) -> bool {
        self.width == other.width
            && self.fixed_mask & !other.fixed_mask == 0
            && (self.value ^ other.value) & self.fixed_mask == 0
    }

    /// Ternary bit at position `index` (0 = least significant).
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::RangeOutOfBounds`] if `index >= width`.
    pub fn tern(&self, index: u32) -> Result<Tern, BitsError> {
        if index >= self.width {
            return Err(BitsError::RangeOutOfBounds { lo: index, len: 1, width: self.width });
        }
        Ok(if self.fixed_mask >> index & 1 == 0 {
            Tern::DontCare
        } else if self.value >> index & 1 == 1 {
            Tern::One
        } else {
            Tern::Zero
        })
    }

    /// Iterates over the ternary bits, most significant first (source
    /// order).
    pub fn terns(&self) -> impl Iterator<Item = Tern> + '_ {
        (0..self.width).rev().map(move |i| self.tern(i).expect("index in range"))
    }
}

impl FromStr for BitPattern {
    type Err = BitsError;

    /// Parses a LISA binary-coding literal: `0b` followed by `0`, `1`, `x`
    /// (case-insensitive) and cosmetic `_` separators.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::InvalidPattern`] for malformed literals and
    /// [`BitsError::InvalidWidth`] for empty or over-long ones.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("0b")
            .or_else(|| s.strip_prefix("0B"))
            .ok_or_else(|| BitsError::InvalidPattern { text: s.to_owned() })?;
        let mut terns = Vec::with_capacity(body.len());
        for ch in body.chars() {
            match ch {
                '0' => terns.push(Tern::Zero),
                '1' => terns.push(Tern::One),
                'x' | 'X' => terns.push(Tern::DontCare),
                '_' => {}
                _ => return Err(BitsError::InvalidPattern { text: s.to_owned() }),
            }
        }
        BitPattern::from_terns(&terns)
    }
}

impl fmt::Display for BitPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("0b")?;
        for t in self.terns() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> BitPattern {
        s.parse().unwrap()
    }

    #[test]
    fn parse_accepts_lisa_literals() {
        let p = pat("0b1001x110");
        assert_eq!(p.width(), 8);
        assert_eq!(p.dont_care_count(), 1);
        assert_eq!(p.to_string(), "0b1001x110");
        // Underscores and capitals are cosmetic.
        assert_eq!(pat("0b10_01X110"), p);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "0b", "1010", "0b2", "0bx 1", "0b_"] {
            assert!(bad.parse::<BitPattern>().is_err(), "{bad:?} should fail");
        }
        let too_long = format!("0b{}", "1".repeat(129));
        assert!(too_long.parse::<BitPattern>().is_err());
        let max = format!("0b{}", "x".repeat(128));
        assert_eq!(max.parse::<BitPattern>().unwrap().width(), 128);
    }

    #[test]
    fn matching_honours_dont_cares() {
        let p = pat("0b1001x110");
        assert!(p.matches_u128(0b1001_0110));
        assert!(p.matches_u128(0b1001_1110));
        assert!(!p.matches_u128(0b1001_0111));
        // The decimal-28 example from the paper: 0b0000011100.
        let twenty_eight = pat("0b0000011100");
        assert!(twenty_eight.matches_u128(28));
        assert!(!twenty_eight.matches_u128(29));
    }

    #[test]
    fn matches_checks_width() {
        let p = pat("0b10");
        assert!(p.matches(&Bits::new(2, 0b10).unwrap()).unwrap());
        assert!(p.matches(&Bits::new(3, 0b10).unwrap()).is_err());
    }

    #[test]
    fn concat_joins_high_to_low() {
        let hi = pat("0b10");
        let lo = pat("0bx1");
        let cat = hi.concat(&lo).unwrap();
        assert_eq!(cat.to_string(), "0b10x1");
        assert!(cat.matches_u128(0b1001));
        assert!(cat.matches_u128(0b1011));
        assert!(!cat.matches_u128(0b0011));
    }

    #[test]
    fn concat_width_limit() {
        let a = BitPattern::any(128);
        assert!(a.concat(&pat("0b1")).is_err());
    }

    #[test]
    fn overlap_detects_shared_words() {
        assert!(pat("0b1xx0").overlaps(&pat("0b1x00")));
        assert!(!pat("0b1xx0").overlaps(&pat("0b0xx0")));
        assert!(!pat("0b11").overlaps(&pat("0b110"))); // widths differ
        assert!(BitPattern::any(4).overlaps(&pat("0b0000")));
    }

    #[test]
    fn subsumption_orders_general_before_specific() {
        assert!(pat("0b1xx").subsumes(&pat("0b1x0")));
        assert!(pat("0b1xx").subsumes(&pat("0b111")));
        assert!(!pat("0b1x0").subsumes(&pat("0b1xx")));
        assert!(pat("0b1xx").subsumes(&pat("0b1xx")));
        assert!(!pat("0b0xx").subsumes(&pat("0b111")));
    }

    #[test]
    fn encode_exact_requires_full_specification() {
        assert_eq!(pat("0b1010").encode_exact().unwrap().to_u128(), 0b1010);
        assert!(matches!(
            pat("0b1x10").encode_exact(),
            Err(BitsError::UnderspecifiedPattern { dont_cares: 1 })
        ));
        assert_eq!(pat("0b1x10").encode_zero_filled().to_u128(), 0b1010);
    }

    #[test]
    fn tern_round_trip() {
        let p = pat("0b10x");
        assert_eq!(p.tern(0).unwrap(), Tern::DontCare);
        assert_eq!(p.tern(1).unwrap(), Tern::Zero);
        assert_eq!(p.tern(2).unwrap(), Tern::One);
        assert!(p.tern(3).is_err());
        let collected: Vec<Tern> = p.terns().collect();
        assert_eq!(BitPattern::from_terns(&collected).unwrap(), p);
    }

    #[test]
    fn from_value_is_fully_specified() {
        let p = BitPattern::from_value(8, 0x5A);
        assert!(p.is_fully_specified());
        assert!(p.matches_u128(0x5A));
        assert!(!p.matches_u128(0x5B));
    }
}

//! Exposition formats: Prometheus text and JSON, both with parsers so
//! snapshots round-trip (tested) and downstream tools can consume the
//! output without this crate.

use std::fmt::Write as _;

use crate::snapshot::{HistogramData, MetricKey, MetricValue, Snapshot};
use crate::{json, HISTOGRAM_BUCKETS};

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric name,
    /// then one sample per series. Histograms emit cumulative
    /// `_bucket{le=...}` samples (zero-count buckets elided), `_sum`
    /// and `_count`. Output is deterministic: sorted by name, then
    /// label set.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, value) in &self.metrics {
            if last_name != Some(key.name.as_str()) {
                if let Some(help) = self.help.get(&key.name) {
                    let escaped = help.replace('\\', "\\\\").replace('\n', "\\n");
                    let _ = writeln!(out, "# HELP {} {escaped}", key.name);
                }
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", key.name);
                last_name = Some(key.name.as_str());
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", key.name, label_block(&key.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", key.name, label_block(&key.labels, None));
                }
                MetricValue::Histogram(h) => {
                    // Finite buckets only; the overflow slot is covered by
                    // the unconditional `+Inf` sample below (`h.count`).
                    let mut cumulative = 0u64;
                    for (i, &count) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                        cumulative += count;
                        if count == 0 {
                            continue;
                        }
                        let le = le_text(i);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            key.name,
                            label_block(&key.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        label_block(&key.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        label_block(&key.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        label_block(&key.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as one deterministic JSON document
    /// (`lisa-metrics/1` schema; histogram buckets non-cumulative).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"lisa-metrics/1\",\n  \"metrics\": [");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            out.push_str(&json::escape(&key.name));
            out.push_str(", \"labels\": {");
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json::escape(k), json::escape(v));
            }
            out.push_str("}, ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    );
                    for (j, b) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push(']');
                }
            }
            if let Some(help) = self.help.get(&key.name) {
                let _ = write!(out, ", \"help\": {}", json::escape(help));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first structural problem.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = json::parse(text)?;
        if doc.get("schema").and_then(json::Value::as_str) != Some("lisa-metrics/1") {
            return Err("not a lisa-metrics/1 document".into());
        }
        let mut snap = Snapshot::new();
        let metrics =
            doc.get("metrics").and_then(json::Value::as_array).ok_or("missing `metrics` array")?;
        for m in metrics {
            let name = m.get("name").and_then(json::Value::as_str).ok_or("metric without name")?;
            let labels = m
                .get("labels")
                .and_then(json::Value::as_string_map)
                .ok_or("metric without labels")?;
            let label_refs: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let key = MetricKey::new(name, &label_refs);
            let value = match m.get("type").and_then(json::Value::as_str) {
                Some("counter") => MetricValue::Counter(
                    m.get("value").and_then(json::Value::as_u64).ok_or("bad counter value")?,
                ),
                Some("gauge") => MetricValue::Gauge(
                    m.get("value").and_then(json::Value::as_i64).ok_or("bad gauge value")?,
                ),
                Some("histogram") => {
                    let buckets = m
                        .get("buckets")
                        .and_then(json::Value::as_array)
                        .ok_or("histogram without buckets")?
                        .iter()
                        .map(|b| b.as_u64().ok_or("bad bucket count"))
                        .collect::<Result<Vec<u64>, _>>()?;
                    MetricValue::Histogram(HistogramData {
                        count: m.get("count").and_then(json::Value::as_u64).ok_or("bad count")?,
                        sum: m.get("sum").and_then(json::Value::as_u64).ok_or("bad sum")?,
                        buckets,
                    })
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            if let Some(help) = m.get("help").and_then(json::Value::as_str) {
                snap.help.entry(name.to_owned()).or_insert_with(|| help.to_owned());
            }
            snap.metrics.insert(key, value);
        }
        Ok(snap)
    }
}

/// `{a="x",le="+Inf"}` label block text (empty string when no labels).
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Text of the `le` boundary for finite bucket `i` (`2^i`).
fn le_text(i: usize) -> String {
    if i + 1 >= HISTOGRAM_BUCKETS {
        "+Inf".to_owned()
    } else {
        (1u64 << i).to_string()
    }
}

/// Parses the Prometheus text format emitted by
/// [`Snapshot::to_prometheus`] back into a [`Snapshot`].
///
/// Understands the subset this crate emits: `# HELP` / `# TYPE`
/// comments, samples with optional label blocks, and histogram series
/// (`_bucket`/`_sum`/`_count`, cumulative buckets de-cumulated back
/// into per-bucket counts).
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::new();
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // Histogram reassembly state per (base name, labels-without-le).
    let mut hist_cum: std::collections::HashMap<MetricKey, Vec<(usize, u64)>> =
        std::collections::HashMap::new();
    let mut hist_meta: std::collections::HashMap<MetricKey, (u64, u64)> =
        std::collections::HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let ctx = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').ok_or_else(|| ctx("bad HELP"))?;
            let unescaped = help.replace("\\n", "\n").replace("\\\\", "\\");
            snap.help.insert(name.to_owned(), unescaped);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| ctx("bad TYPE"))?;
            types.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        let (series, value_text) = split_sample(line).ok_or_else(|| ctx("bad sample"))?;
        let (name, labels) = parse_series(series).map_err(|e| ctx(&e))?;

        // Histogram component samples fold back into one metric.
        let base_and_part = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = name.strip_suffix(suffix)?;
            (types.get(base).map(String::as_str) == Some("histogram"))
                .then(|| (base.to_owned(), *suffix))
        });
        if let Some((base, part)) = base_and_part {
            let mut labels = labels;
            let le = match part {
                "_bucket" => {
                    let pos = labels
                        .iter()
                        .position(|(k, _)| k == "le")
                        .ok_or_else(|| ctx("bucket without le"))?;
                    Some(labels.remove(pos).1)
                }
                _ => None,
            };
            let key = MetricKey { name: base, labels };
            let entry = hist_meta.entry(key.clone()).or_insert((0, 0));
            match part {
                "_sum" => entry.1 = value_text.parse().map_err(|_| ctx("bad sum"))?,
                "_count" => entry.0 = value_text.parse().map_err(|_| ctx("bad count"))?,
                _ => {
                    let le = le.expect("bucket le present");
                    let index = if le == "+Inf" {
                        HISTOGRAM_BUCKETS - 1
                    } else {
                        let bound: u64 = le.parse().map_err(|_| ctx("bad le"))?;
                        if !bound.is_power_of_two() {
                            return Err(ctx("le is not a power of two"));
                        }
                        (bound.trailing_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
                    };
                    let cum: u64 = value_text.parse().map_err(|_| ctx("bad bucket value"))?;
                    hist_cum.entry(key).or_default().push((index, cum));
                }
            }
            continue;
        }

        let key = MetricKey { name: name.clone(), labels };
        let value = match types.get(&name).map(String::as_str) {
            Some("gauge") => {
                MetricValue::Gauge(value_text.parse().map_err(|_| ctx("bad gauge value"))?)
            }
            // Untyped samples default to counter, the common case.
            _ => MetricValue::Counter(value_text.parse().map_err(|_| ctx("bad counter value"))?),
        };
        snap.metrics.insert(key, value);
    }

    // Assemble histograms: de-cumulate buckets (elided buckets are zero).
    for (key, (count, sum)) in hist_meta {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut samples = hist_cum.remove(&key).unwrap_or_default();
        samples.sort_unstable();
        let mut prev = 0u64;
        for (index, cum) in samples {
            buckets[index] = cum.saturating_sub(prev);
            prev = cum;
        }
        snap.metrics.insert(key, MetricValue::Histogram(HistogramData { count, sum, buckets }));
    }
    Ok(snap)
}

/// Splits `name{labels} value` / `name value` into (series, value).
fn split_sample(line: &str) -> Option<(&str, &str)> {
    if let Some(close) = line.rfind('}') {
        let value = line.get(close + 1..)?.trim();
        (!value.is_empty()).then_some((line.get(..=close)?, value))
    } else {
        let (series, value) = line.rsplit_once(' ')?;
        Some((series.trim(), value.trim()))
    }
}

/// Parses `name{a="x",b="y"}` into its name and label pairs.
fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(open) = series.find('{') else {
        return Ok((series.to_owned(), Vec::new()));
    };
    let name = series[..open].to_owned();
    let body = series[open + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("unterminated label block in `{series}`"))?;
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or_else(|| format!("bad label in `{series}`"))?;
        let key = rest[..eq].to_owned();
        rest = &rest[eq + 2..];
        // Find the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err(format!("dangling escape in `{series}`")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in `{series}`"))?;
        labels.push((key, value));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    labels.sort();
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> Snapshot {
        let reg = Registry::new();
        reg.counter("sim_cycles_total", "control steps", &[("backend", "compiled")]).add(1234);
        reg.counter("sim_cycles_total", "control steps", &[("backend", "interp")]).add(99);
        reg.gauge("batch_inflight", "jobs in flight", &[]).set(-3);
        let h = reg.histogram("job_us", "job latency", &[("mode", "both")]);
        for v in [1, 2, 3, 900, 70_000] {
            h.observe(v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = populated();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE sim_cycles_total counter"), "{text}");
        assert!(text.contains("sim_cycles_total{backend=\"compiled\"} 1234"), "{text}");
        assert!(text.contains("# TYPE batch_inflight gauge"), "{text}");
        assert!(text.contains("batch_inflight -3"), "{text}");
        assert!(text.contains("job_us_bucket{mode=\"both\",le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("job_us_sum{mode=\"both\"} 70906"), "{text}");
        let back = parse_prometheus(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_round_trips() {
        let snap = populated();
        let text = snap.to_json();
        assert!(text.contains("\"schema\": \"lisa-metrics/1\""), "{text}");
        let back = Snapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn exposition_is_deterministic() {
        let a = populated();
        let b = populated();
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn label_values_with_quotes_survive() {
        let reg = Registry::new();
        reg.counter("m", "", &[("path", "a\"b\\c")]).inc();
        let snap = reg.snapshot();
        let back = parse_prometheus(&snap.to_prometheus()).expect("parses");
        assert_eq!(back.metrics, snap.metrics);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("metric_without_value").is_err());
        assert!(parse_prometheus("m{unclosed=\"x\" 3").is_err());
    }
}

//! The lock-free metric handles and the registry that interns them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramData, MetricKey, MetricValue, Snapshot};

/// Total histogram slots: finite buckets with upper bounds `2^0..=2^38`
/// plus one overflow (`+Inf`) slot. Bucket *b* counts observations `v`
/// with `2^(b-1) < v <= 2^b` (bucket 0 counts `v <= 1`), which keeps
/// the Prometheus `le` boundaries exact powers of two and lets merged
/// snapshots stay bit-identical regardless of merge order.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter (relaxed atomic adds).
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (set/add, relaxed atomics).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.cell.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistCore {
    fn default() -> HistCore {
        HistCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed histogram of `u64` observations (latencies in
/// microseconds, cycle counts, …). Recording is three relaxed atomic
/// adds — no locks, no floating point.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

/// Bucket index for an observed value (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)) for v >= 2.
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn data(&self) -> HistogramData {
        HistogramData {
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            buckets: self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    metrics: HashMap<MetricKey, Entry>,
    help: HashMap<String, String>,
}

/// Interns metric handles and snapshots their values.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a short mutex
/// hold and returns a cheap clone-able handle; callers cache the handle
/// and the hot path never touches the registry again. Registering the
/// same name + labels twice returns the **same** underlying cell, so
/// independent components accumulate into one series.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` + `labels` is already registered as a different
    /// metric type — that is a programming error, not load-time input.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.entry(name, help, labels, || {
            Entry::Counter(Counter { cell: Arc::new(AtomicU64::new(0)) })
        }) {
            Entry::Counter(c) => c,
            other => panic!("`{name}` is registered as a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or re-fetches) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type conflict, like [`Registry::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self
            .entry(name, help, labels, || Entry::Gauge(Gauge { cell: Arc::new(AtomicI64::new(0)) }))
        {
            Entry::Gauge(g) => g,
            other => panic!("`{name}` is registered as a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or re-fetches) a histogram.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type conflict, like [`Registry::counter`].
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.entry(name, help, labels, || {
            Entry::Histogram(Histogram { core: Arc::new(HistCore::default()) })
        }) {
            Entry::Histogram(h) => h,
            other => panic!("`{name}` is registered as a {}, not a histogram", other.kind()),
        }
    }

    fn entry(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Entry,
    ) -> Entry {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if !help.is_empty() {
            inner.help.entry(name.to_owned()).or_insert_with(|| help.to_owned());
        }
        inner.metrics.entry(key).or_insert_with(make).clone()
    }

    /// Freezes every registered metric into a deterministic
    /// [`Snapshot`] (sorted by name, then labels). Values are read with
    /// relaxed ordering: a snapshot taken while writers run is a
    /// consistent-enough aggregate view, not a barrier.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut snap = Snapshot::default();
        for (key, entry) in &inner.metrics {
            let value = match entry {
                Entry::Counter(c) => MetricValue::Counter(c.get()),
                Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                Entry::Histogram(h) => MetricValue::Histogram(h.data()),
            };
            snap.metrics.insert(key.clone(), value);
        }
        for (name, help) in &inner.help {
            snap.help.insert(name.clone(), help.clone());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", "jobs", &[("status", "ok")]);
        c.inc();
        c.add(4);
        // Re-registration shares the cell.
        let again = reg.counter("jobs_total", "", &[("status", "ok")]);
        again.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("queue_depth", "depth", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let reg = Registry::new();
        let h = reg.histogram("lat_us", "latency", &[]);
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let data = h.data();
        assert_eq!(data.buckets[0], 2, "0 and 1");
        assert_eq!(data.buckets[1], 1, "2");
        assert_eq!(data.buckets[2], 2, "3 and 4");
        assert_eq!(data.buckets[10], 1, "1000 <= 1024");
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn type_conflict_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x", "", &[]);
        let _ = reg.gauge("x", "", &[]);
    }

    #[test]
    fn labels_are_order_independent() {
        let reg = Registry::new();
        let a = reg.counter("m", "", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("m", "", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same sorted label set, same cell");
    }

    #[test]
    fn handles_work_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("n", "", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}

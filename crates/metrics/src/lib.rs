//! Always-on runtime metrics for the LISA toolchain.
//!
//! `lisa-trace` (PR 2) gives *event-level* visibility into one run; this
//! crate is the complementary layer the fleet needs: cheap **aggregate**
//! metrics that stay on in production across millions of runs. The
//! design follows the usual two-plane split:
//!
//! * the **hot plane** is lock-free: a [`Counter`], [`Gauge`] or
//!   [`Histogram`] handle is an `Arc` around plain atomics, so
//!   incrementing from simulator hot loops or batch-runner workers costs
//!   one relaxed atomic op and never takes a lock;
//! * the **cold plane** is the [`Registry`]: registration interns a
//!   handle under a name + sorted label set (one short mutex hold), and
//!   [`Registry::snapshot`] freezes every value into a deterministic,
//!   order-independent [`Snapshot`].
//!
//! Snapshots [`Snapshot::merge`] associatively (counters and histogram
//! buckets add; gauges add, fleet-aggregation semantics), so per-worker
//! or per-shard registries fold into one fleet view in any grouping —
//! the same contract `lisa_trace::Profile::merge` keeps, and property
//! tests hold it to that. Two exposition formats ship with round-trip
//! parsers: the Prometheus text format ([`Snapshot::to_prometheus`] /
//! [`parse_prometheus`]) and JSON ([`Snapshot::to_json`] / the generic
//! [`json`] parser).
//!
//! ```
//! use lisa_metrics::Registry;
//!
//! let reg = Registry::new();
//! let cycles = reg.counter("sim_cycles_total", "control steps", &[("backend", "compiled")]);
//! cycles.add(1_000_000);
//! let snap = reg.snapshot();
//! assert!(snap.to_prometheus().contains("sim_cycles_total{backend=\"compiled\"} 1000000"));
//! let back = lisa_metrics::parse_prometheus(&snap.to_prometheus()).unwrap();
//! assert_eq!(snap, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
pub mod json;
mod registry;
mod snapshot;

pub use expose::parse_prometheus;
pub use registry::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramData, MetricKey, MetricValue, Snapshot};

//! Deterministic, mergeable snapshots of a registry.

use std::collections::BTreeMap;

/// Identity of one metric series: a name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, counters end
    /// in `_total`).
    pub name: String,
    /// Label pairs, always sorted by label name (construction sorts).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with its labels sorted into canonical order.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        labels.sort();
        MetricKey { name: name.to_owned(), labels }
    }
}

/// Frozen histogram state: per-bucket (non-cumulative) counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramData {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// One count per bucket, `crate::HISTOGRAM_BUCKETS` long
    /// (non-cumulative; the Prometheus exposition cumulates on the way
    /// out and the parser de-cumulates on the way back in).
    pub buckets: Vec<u64>,
}

impl HistogramData {
    /// Approximate quantile `q` in `0.0..=1.0` as the upper bound of the
    /// bucket containing the `ceil(q * count)`-th observation (`None`
    /// when empty). Exact enough for log2 buckets: the answer is the
    /// right power of two.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

/// Upper bound of bucket `i` (`2^i`; the last bucket is unbounded and
/// reports `u64::MAX`).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= crate::HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramData),
}

/// A deterministic view of every metric at one instant.
///
/// Backed by `BTreeMap`, so iteration order — and therefore every
/// exposition format — depends only on the metric keys, never on
/// registration or thread order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Metric series, sorted by name then labels.
    pub metrics: BTreeMap<MetricKey, MetricValue>,
    /// Help text per metric *name* (shared across label sets).
    pub help: BTreeMap<String, String>,
}

impl Snapshot {
    /// An empty snapshot (the identity element of [`Snapshot::merge`]).
    #[must_use]
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Folds `other` into `self`.
    ///
    /// Counters and histogram buckets add (saturating); gauges add too —
    /// fleet-aggregation semantics, chosen so merge is **associative and
    /// commutative** like `lisa_trace::Profile::merge` (property-tested).
    /// Missing help text is taken from `other`.
    ///
    /// # Panics
    ///
    /// Panics when the same key carries different metric types — two
    /// snapshots of the same codebase never disagree, so this is a
    /// programming error.
    pub fn merge(&mut self, other: &Snapshot) {
        for (key, value) in &other.metrics {
            match self.metrics.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            a.count = a.count.saturating_add(b.count);
                            a.sum = a.sum.saturating_add(b.sum);
                            if a.buckets.len() < b.buckets.len() {
                                a.buckets.resize(b.buckets.len(), 0);
                            }
                            for (slot, add) in a.buckets.iter_mut().zip(&b.buckets) {
                                *slot = slot.saturating_add(*add);
                            }
                        }
                        (mine, theirs) => panic!(
                            "metric `{}` merged with a different type ({mine:?} vs {theirs:?})",
                            key.name
                        ),
                    }
                }
            }
        }
        for (name, help) in &other.help {
            self.help.entry(name.clone()).or_insert_with(|| help.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_snap(name: &str, v: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.metrics.insert(MetricKey::new(name, &[]), MetricValue::Counter(v));
        s
    }

    #[test]
    fn merge_adds_counters_and_keeps_disjoint_keys() {
        let mut a = counter_snap("x", 3);
        let mut b = counter_snap("x", 4);
        b.metrics.insert(MetricKey::new("y", &[]), MetricValue::Gauge(-2));
        a.merge(&b);
        assert_eq!(a.metrics[&MetricKey::new("x", &[])], MetricValue::Counter(7));
        assert_eq!(a.metrics[&MetricKey::new("y", &[])], MetricValue::Gauge(-2));
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity() {
        let base = counter_snap("x", 9);
        let mut left = Snapshot::new();
        left.merge(&base);
        let mut right = base.clone();
        right.merge(&Snapshot::new());
        assert_eq!(left, base);
        assert_eq!(right, base);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let ha = HistogramData { count: 2, sum: 5, buckets: vec![1, 1, 0] };
        let hb = HistogramData { count: 1, sum: 9, buckets: vec![0, 0, 1] };
        let mut a = Snapshot::new();
        a.metrics.insert(MetricKey::new("h", &[]), MetricValue::Histogram(ha));
        let mut b = Snapshot::new();
        b.metrics.insert(MetricKey::new("h", &[]), MetricValue::Histogram(hb));
        a.merge(&b);
        let MetricValue::Histogram(h) = &a.metrics[&MetricKey::new("h", &[])] else {
            panic!("histogram survives merge")
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 14);
        assert_eq!(h.buckets, vec![1, 1, 1]);
    }

    #[test]
    fn quantile_bound_finds_the_right_bucket() {
        let h = HistogramData { count: 0, sum: 0, buckets: vec![0; crate::HISTOGRAM_BUCKETS] };
        assert_eq!(h.quantile_bound(0.5), None);

        let mut buckets = vec![0; crate::HISTOGRAM_BUCKETS];
        buckets[0] = 5; // five observations <= 1
        buckets[3] = 4; // four in (4, 8]
        buckets[10] = 1; // one in (512, 1024]
        let h = HistogramData { count: 10, sum: 0, buckets };
        assert_eq!(h.quantile_bound(0.0), Some(1));
        assert_eq!(h.quantile_bound(0.5), Some(1));
        assert_eq!(h.quantile_bound(0.9), Some(8));
        assert_eq!(h.quantile_bound(1.0), Some(1024));
    }
}

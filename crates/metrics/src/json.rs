//! A minimal JSON reader/writer for the toolchain's machine-readable
//! artifacts (metric snapshots, `BENCH_*.json` trajectories).
//!
//! The workspace is dependency-free by policy (no serde in the
//! container), and its JSON needs are small: write deterministic
//! documents, read them back for baseline comparison and round-trip
//! tests. Numbers keep their raw text so `u64` values survive exactly
//! instead of detouring through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw text (convert with
    /// [`Value::as_u64`] / [`Value::as_i64`] / [`Value::as_f64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if it parses exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if it parses exactly.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields as a map (string values only), for label sets.
    #[must_use]
    pub fn as_string_map(&self) -> Option<BTreeMap<String, String>> {
        match self {
            Value::Obj(fields) => {
                fields.iter().map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned()))).collect()
            }
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON document (one top-level value, trailing whitespace
/// allowed).
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        raw.parse::<f64>().map_err(|e| format!("bad number `{raw}`: {e}"))?;
        Ok(Value::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5, "x\n\"y\""], "b": {"c": true, "d": null}, "n": 18446744073709551615}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX), "u64 survives exactly");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f µ";
        let doc = format!("{{{}: {}}}", escape("k"), escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}

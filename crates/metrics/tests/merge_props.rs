//! Property tests for the snapshot merge algebra, mirroring the
//! `Profile::merge` contract: deterministic, associative, commutative,
//! with the empty snapshot as identity — so fleet aggregation gives the
//! same answer for any grouping of per-worker registries. Plus
//! exposition round-trips on generated snapshots.

use lisa_metrics::{parse_prometheus, HistogramData, MetricKey, MetricValue, Registry, Snapshot};
use proptest::prelude::*;

/// One generated metric sample: key index, label index, type selector,
/// and a value. Keys/labels are drawn from small pools so generated
/// snapshots overlap (merges actually combine series).
fn sample_strategy() -> impl Strategy<Value = (u8, u8, u8, u64)> {
    (0u8..6, 0u8..3, 0u8..3, 0u64..1_000_000)
}

const NAMES: [&str; 6] =
    ["cycles_total", "jobs_total", "depth", "lat_us", "stalls_total", "iters_total"];
const LABELS: [&str; 3] = ["compiled", "interp", "both"];

/// Deterministically builds a snapshot from generated samples. The type
/// of a series is fixed by its *name index* (mod 3), so overlapping
/// samples never conflict on type.
fn build(samples: &[(u8, u8, u8, u64)]) -> Snapshot {
    let mut snap = Snapshot::new();
    for &(name_i, label_i, _, value) in samples {
        let name = NAMES[name_i as usize % NAMES.len()];
        let key = MetricKey::new(name, &[("backend", LABELS[label_i as usize % LABELS.len()])]);
        let entry = snap.metrics.entry(key);
        match name_i % 3 {
            0 => {
                let slot = entry.or_insert(MetricValue::Counter(0));
                if let MetricValue::Counter(c) = slot {
                    *c += value;
                }
            }
            1 => {
                let slot = entry.or_insert(MetricValue::Gauge(0));
                if let MetricValue::Gauge(g) = slot {
                    *g += value as i64 % 1000 - 500;
                }
            }
            _ => {
                let slot = entry.or_insert(MetricValue::Histogram(HistogramData {
                    count: 0,
                    sum: 0,
                    buckets: vec![0; lisa_metrics::HISTOGRAM_BUCKETS],
                }));
                if let MetricValue::Histogram(h) = slot {
                    h.count += 1;
                    h.sum += value;
                    let idx = if value <= 1 {
                        0
                    } else {
                        (64 - (value - 1).leading_zeros() as usize)
                            .min(lisa_metrics::HISTOGRAM_BUCKETS - 1)
                    };
                    h.buckets[idx] += 1;
                }
            }
        }
    }
    snap
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(sample_strategy(), 0..=12),
        ys in proptest::collection::vec(sample_strategy(), 0..=12),
        zs in proptest::collection::vec(sample_strategy(), 0..=12),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative_and_deterministic(
        xs in proptest::collection::vec(sample_strategy(), 0..=12),
        ys in proptest::collection::vec(sample_strategy(), 0..=12),
    ) {
        let (a, b) = (build(&xs), build(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        // Determinism: repeating the merge gives a byte-identical exposition.
        prop_assert_eq!(merged(&a, &b).to_prometheus(), merged(&b, &a).to_prometheus());
    }

    #[test]
    fn empty_is_identity(xs in proptest::collection::vec(sample_strategy(), 0..=12)) {
        let a = build(&xs);
        prop_assert_eq!(merged(&a, &Snapshot::new()), a.clone());
        prop_assert_eq!(merged(&Snapshot::new(), &a), a);
    }

    #[test]
    fn expositions_round_trip(xs in proptest::collection::vec(sample_strategy(), 0..=16)) {
        let snap = build(&xs);
        let back = parse_prometheus(&snap.to_prometheus()).expect("prometheus parses");
        prop_assert_eq!(&back, &snap);
        let back = Snapshot::from_json(&snap.to_json()).expect("json parses");
        prop_assert_eq!(&back, &snap);
    }

    #[test]
    fn registry_snapshot_matches_handle_reads(values in proptest::collection::vec(0u64..100_000, 1..=8)) {
        let reg = Registry::new();
        let c = reg.counter("c_total", "", &[]);
        let h = reg.histogram("h_us", "", &[]);
        let mut total = 0u64;
        for &v in &values {
            c.add(v);
            h.observe(v);
            total += v;
        }
        let snap = reg.snapshot();
        prop_assert_eq!(snap.metrics.get(&MetricKey::new("c_total", &[])),
            Some(&MetricValue::Counter(total)));
        match snap.metrics.get(&MetricKey::new("h_us", &[])) {
            Some(MetricValue::Histogram(hd)) => {
                prop_assert_eq!(hd.count, values.len() as u64);
                prop_assert_eq!(hd.sum, total);
                prop_assert_eq!(hd.buckets.iter().sum::<u64>(), values.len() as u64);
            }
            other => prop_assert!(false, "expected histogram, got {:?}", other),
        }
    }
}

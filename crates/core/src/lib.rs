//! The LISA machine description language: front-end and model database.
//!
//! This crate is the reproduction of the primary contribution of
//! *"LISA — Machine Description Language for Cycle-Accurate Models of
//! Programmable DSP Architectures"* (Pees, Hoffmann, Zivojnovic, Meyr,
//! DAC 1999). A LISA description captures, in one source, the five partial
//! models of a programmable architecture — memory, resource, behavioral,
//! instruction-set and timing — from which simulators, assemblers,
//! disassemblers and documentation are generated.
//!
//! The crate is organised as the paper's tool flow:
//!
//! 1. [`parser::parse`] turns LISA source into an [`ast::Description`];
//! 2. [`model::Model::build`] analyses the AST into the *model database*
//!    (the paper's "intermediate data base which is accessed by all other
//!    tools"): resolved resources, pipelines, operation variants
//!    (compile-time `SWITCH`/`IF` specialisation), group tables and the
//!    coding tree.
//!
//! Downstream crates generate tools from the [`model::Model`]:
//! `lisa-isa` (decoder/encoder/assembler), `lisa-sim` (interpretive and
//! compiled cycle-accurate simulators) and `lisa-docgen` (ISA manuals).
//!
//! # Examples
//!
//! ```
//! use lisa_core::{model::Model, parser::parse};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let desc = parse(r#"
//!     RESOURCE {
//!         PROGRAM_COUNTER int pc;
//!         CONTROL_REGISTER int ir;
//!         REGISTER int A[16];
//!     }
//!     OPERATION register {
//!         DECLARE { LABEL index; }
//!         CODING { index:0bx[4] }
//!         SYNTAX { "A" index:#u }
//!         EXPRESSION { A[index] }
//!     }
//!     OPERATION add {
//!         DECLARE { GROUP Dest, Src1, Src2 = { register }; }
//!         CODING { 0b0001 Dest Src1 Src2 0bx[16] }
//!         SYNTAX { "ADD" Dest "," Src1 "," Src2 }
//!         BEHAVIOR { Dest = Src1 + Src2; pc = pc + 1; }
//!     }
//!     OPERATION decode {
//!         DECLARE { GROUP Instruction = { add }; }
//!         CODING { ir == Instruction }
//!         SYNTAX { Instruction }
//!         BEHAVIOR { Instruction; }
//!     }
//! "#)?;
//! let model = Model::build(&desc)?;
//! assert_eq!(model.resources().len(), 3);
//! assert!(model.operation_by_name("add").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::Description;
pub use diag::{LisaError, ParseError};
pub use model::{Model, ModelError};
pub use parser::parse;

//! Hand-written lexer for the LISA machine description language.
//!
//! LISA is deliberately C-like (the paper: "Due to its C-like syntax, LISA
//! can be easily and intuitively used by designers"), so the token set is a
//! C subset plus bit-pattern literals (`0b01xx`) and the section keywords.

use crate::diag::ParseError;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Lexes a complete LISA source string into tokens (final token is
/// [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered: unexpected characters,
/// unterminated strings/comments, malformed numbers or escapes.
///
/// # Examples
///
/// ```
/// use lisa_core::lexer::lex;
/// use lisa_core::token::TokenKind;
///
/// # fn main() -> Result<(), lisa_core::diag::ParseError> {
/// let tokens = lex("CODING { 0b0110 opcode }")?;
/// assert!(matches!(&tokens[2].kind, TokenKind::PatternLit(p) if p == "0b0110"));
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1, tokens: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(b) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'0'..=b'9' => self.lex_number(start)?,
                b'"' => self.lex_string(start)?,
                _ => self.lex_punct(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(ParseError::UnterminatedComment {
                                    span: self.span_from(start),
                                });
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self, start: (usize, u32, u32)) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start.0..self.pos];
        let kind = match Keyword::from_ident(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_owned()),
        };
        self.push(kind, start);
    }

    fn lex_number(&mut self, start: (usize, u32, u32)) -> Result<(), ParseError> {
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'b') | Some(b'B')) {
            // Binary literal. Always lexed as a pattern literal — even
            // without don't-care bits — because coding sections need the
            // written *width* (`0b0010` is four bits, not the number 2).
            // The expression parser converts x-free patterns to integers.
            self.bump();
            self.bump();
            let mut has_digit = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0' | b'1' | b'_' => {
                        has_digit |= b != b'_';
                        self.bump();
                    }
                    b'x' | b'X' => {
                        has_digit = true;
                        self.bump();
                    }
                    _ => break,
                }
            }
            let text = &self.src[start.0..self.pos];
            if !has_digit {
                return Err(ParseError::InvalidNumber {
                    text: text.to_owned(),
                    span: self.span_from(start),
                });
            }
            self.push(TokenKind::PatternLit(text.to_owned()), start);
            return Ok(());
        }
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits: String =
                self.src[digits_start..self.pos].chars().filter(|c| *c != '_').collect();
            let text = &self.src[start.0..self.pos];
            if digits.is_empty() {
                return Err(ParseError::InvalidNumber {
                    text: text.to_owned(),
                    span: self.span_from(start),
                });
            }
            // Parse as u64 then reinterpret, so 0xFFFFFFFFFFFFFFFF lexes.
            let value = u64::from_str_radix(&digits, 16).map_err(|_| ParseError::InvalidNumber {
                text: text.to_owned(),
                span: self.span_from(start),
            })? as i64;
            self.push(TokenKind::Int(value), start);
            return Ok(());
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start.0..self.pos];
        let digits: String = text.chars().filter(|c| *c != '_').collect();
        let value: i64 = digits.parse().map_err(|_| ParseError::InvalidNumber {
            text: text.to_owned(),
            span: self.span_from(start),
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn lex_string(&mut self, start: (usize, u32, u32)) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(ParseError::UnterminatedString { span: self.span_from(start) });
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    let esc_start = self.here();
                    match self.bump() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'0') => out.push('\0'),
                        Some(other) => {
                            return Err(ParseError::InvalidEscape {
                                ch: other as char,
                                span: self.span_from(esc_start),
                            });
                        }
                        None => {
                            return Err(ParseError::UnterminatedString {
                                span: self.span_from(start),
                            });
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not just one byte.
                    let ch_start = self.pos;
                    let ch = self.src[ch_start..].chars().next().expect("non-empty");
                    for _ in 0..ch.len_utf8() {
                        self.bump();
                    }
                    out.push(ch);
                }
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn lex_punct(&mut self, start: (usize, u32, u32)) -> Result<(), ParseError> {
        use TokenKind::*;
        let b = self.bump().expect("peeked");
        let two = self.peek();
        let kind = match b {
            b'{' => LBrace,
            b'}' => RBrace,
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'#' => Hash,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => {
                if two == Some(b'.') {
                    self.bump();
                    DotDot
                } else {
                    Dot
                }
            }
            b'=' => {
                if two == Some(b'=') {
                    self.bump();
                    EqEq
                } else {
                    Assign
                }
            }
            b'!' => {
                if two == Some(b'=') {
                    self.bump();
                    NotEq
                } else {
                    Bang
                }
            }
            b'<' => match (two, self.peek2()) {
                (Some(b'<'), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    ShlAssign
                }
                (Some(b'<'), _) => {
                    self.bump();
                    Shl
                }
                (Some(b'='), _) => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match (two, self.peek2()) {
                (Some(b'>'), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    ShrAssign
                }
                (Some(b'>'), _) => {
                    self.bump();
                    Shr
                }
                (Some(b'='), _) => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            b'+' => match two {
                Some(b'+') => {
                    self.bump();
                    PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match two {
                Some(b'-') => {
                    self.bump();
                    MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => {
                if two == Some(b'=') {
                    self.bump();
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if two == Some(b'=') {
                    self.bump();
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => Percent,
            b'&' => match two {
                Some(b'&') => {
                    self.bump();
                    AmpAmp
                }
                Some(b'=') => {
                    self.bump();
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match two {
                Some(b'|') => {
                    self.bump();
                    PipePipe
                }
                Some(b'=') => {
                    self.bump();
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => {
                if two == Some(b'=') {
                    self.bump();
                    CaretAssign
                } else {
                    Caret
                }
            }
            other => {
                return Err(ParseError::UnexpectedChar {
                    ch: other as char,
                    span: self.span_from(start),
                });
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_resource_section_from_paper_example_1() {
        let src = "RESOURCE {\n  PROGRAM_COUNTER int pc;\n  REGISTER bit[48] accu;\n}";
        let toks = kinds(src);
        assert_eq!(toks[0], TokenKind::Kw(Keyword::Resource));
        assert_eq!(toks[1], TokenKind::LBrace);
        assert_eq!(toks[2], TokenKind::Kw(Keyword::ProgramCounter));
        assert_eq!(toks[3], TokenKind::Kw(Keyword::Int));
        assert_eq!(toks[4], TokenKind::Ident("pc".into()));
        assert!(toks.contains(&TokenKind::Kw(Keyword::Bit)));
        assert!(toks.contains(&TokenKind::Int(48)));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn binary_literals_keep_their_width_as_patterns() {
        let toks = kinds("0b0110 0b01x0 0b_1_0");
        assert_eq!(toks[0], TokenKind::PatternLit("0b0110".into()));
        assert_eq!(toks[1], TokenKind::PatternLit("0b01x0".into()));
        assert_eq!(toks[2], TokenKind::PatternLit("0b_1_0".into()));
    }

    #[test]
    fn hex_and_decimal_literals() {
        let toks = kinds("0x80000 255 0xffff_ffff 0");
        assert_eq!(toks[0], TokenKind::Int(0x80000));
        assert_eq!(toks[1], TokenKind::Int(255));
        assert_eq!(toks[2], TokenKind::Int(0xffff_ffff));
        assert_eq!(toks[3], TokenKind::Int(0));
    }

    #[test]
    fn full_width_hex_wraps_to_negative() {
        let toks = kinds("0xFFFFFFFFFFFFFFFF");
        assert_eq!(toks[0], TokenKind::Int(-1));
    }

    #[test]
    fn rejects_empty_number_bodies() {
        assert!(lex("0x").is_err());
        assert!(lex("0b").is_err());
        assert!(lex("0b__").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        let toks = kinds(r#" "ADD" "a\"b" "tab\there" "#);
        assert_eq!(toks[0], TokenKind::Str("ADD".into()));
        assert_eq!(toks[1], TokenKind::Str("a\"b".into()));
        assert_eq!(toks[2], TokenKind::Str("tab\there".into()));
        assert!(lex("\"unterminated").is_err());
        assert!(lex("\"bad\\q\"").is_err());
        assert!(lex("\"no\nnewline\"").is_err());
    }

    #[test]
    fn comments_are_trivia() {
        let toks = kinds("a // line\n b /* block\n comment */ c");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("== != <= >= << >> <<= >>= && || ++ -- += .. |=");
        use TokenKind::*;
        assert_eq!(
            toks,
            vec![
                EqEq, NotEq, Le, Ge, Shl, Shr, ShlAssign, ShrAssign, AmpAmp, PipePipe, PlusPlus,
                MinusMinus, PlusAssign, DotDot, PipeAssign, Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn unexpected_character_reports_location() {
        let err = lex("a @").unwrap_err();
        match err {
            ParseError::UnexpectedChar { ch, span } => {
                assert_eq!(ch, '@');
                assert_eq!((span.line, span.col), (1, 3));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn pipeline_stage_reference_tokens() {
        let toks = kinds("fetch_pipe.DP.stall()");
        assert_eq!(toks[0], TokenKind::Ident("fetch_pipe".into()));
        assert_eq!(toks[1], TokenKind::Dot);
        assert_eq!(toks[2], TokenKind::Ident("DP".into()));
        assert_eq!(toks[3], TokenKind::Dot);
        assert_eq!(toks[4], TokenKind::Ident("stall".into()));
    }

    #[test]
    fn address_range_tokens() {
        let toks = kinds("[0x100..0xffff]");
        assert_eq!(
            toks,
            vec![
                TokenKind::LBracket,
                TokenKind::Int(0x100),
                TokenKind::DotDot,
                TokenKind::Int(0xffff),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn utf8_in_strings_survives() {
        let toks = kinds("\"µDSP→\"");
        assert_eq!(toks[0], TokenKind::Str("µDSP→".into()));
    }
}

//! Pretty-printer: renders an AST back to LISA source text.
//!
//! The printed form re-parses to an equal AST (checked by round-trip
//! tests), making the printer usable for model normalisation and for the
//! "automatic generation of text book documentation" workflow the paper
//! describes.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a description as LISA source.
///
/// # Examples
///
/// ```
/// use lisa_core::{parser::parse, printer::print};
///
/// # fn main() -> Result<(), lisa_core::diag::ParseError> {
/// let desc = parse("RESOURCE { REGISTER bit[48] accu; }")?;
/// let text = print(&desc);
/// // Printing is a fixpoint modulo source spans:
/// assert_eq!(print(&parse(&text)?), text);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn print(desc: &Description) -> String {
    let mut p = Printer { out: String::new(), indent: 0 };
    p.description(desc);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, head: &str) {
        self.line(&format!("{head} {{"));
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn description(&mut self, desc: &Description) {
        if !desc.resources.is_empty() || !desc.pipelines.is_empty() {
            self.open("RESOURCE");
            for r in &desc.resources {
                let decl = format_resource(r);
                self.line(&decl);
            }
            for p in &desc.pipelines {
                let stages: Vec<&str> = p.stages.iter().map(|s| s.name.as_str()).collect();
                self.line(&format!("PIPELINE {} = {{ {} }};", p.name, stages.join("; ")));
            }
            self.close();
        }
        for op in &desc.operations {
            self.operation(op);
        }
    }

    fn operation(&mut self, op: &OperationDecl) {
        let mut head = format!("OPERATION {}", op.name);
        if op.alias {
            head.push_str(" ALIAS");
        }
        if let Some(stage) = &op.stage {
            let _ = write!(head, " IN {}.{}", stage.pipeline, stage.stage);
        }
        self.open(&head);
        for item in &op.items {
            self.op_item(item);
        }
        self.close();
    }

    fn op_item(&mut self, item: &OpItem) {
        match item {
            OpItem::Declare(d) => {
                self.open("DECLARE");
                for g in &d.groups {
                    let names: Vec<&str> = g.names.iter().map(|n| n.name.as_str()).collect();
                    let members: Vec<&str> = g.members.iter().map(|m| m.name.as_str()).collect();
                    self.line(&format!(
                        "GROUP {} = {{ {} }};",
                        names.join(", "),
                        members.join(" || ")
                    ));
                }
                if !d.labels.is_empty() {
                    let labels: Vec<&str> = d.labels.iter().map(|l| l.name.as_str()).collect();
                    self.line(&format!("LABEL {};", labels.join(", ")));
                }
                if !d.references.is_empty() {
                    let refs: Vec<&str> = d.references.iter().map(|r| r.name.as_str()).collect();
                    self.line(&format!("REFERENCE {};", refs.join(", ")));
                }
                self.close();
            }
            OpItem::Coding(c) => {
                let mut parts = Vec::new();
                if let Some(root) = &c.root {
                    parts.push(format!("{root} =="));
                }
                for e in &c.elements {
                    parts.push(match e {
                        CodingElement::Pattern(p, _) => p.to_string(),
                        CodingElement::Ref(r) => r.name.clone(),
                        CodingElement::LabelField { label, pattern } => {
                            format!("{label}:{pattern}")
                        }
                    });
                }
                self.line(&format!("CODING {{ {} }}", parts.join(" ")));
            }
            OpItem::Syntax(s) => {
                let parts: Vec<String> = s
                    .elements
                    .iter()
                    .map(|e| match e {
                        SyntaxElement::Literal(text, _) => format!("{text:?}"),
                        SyntaxElement::Ref(r) => r.name.clone(),
                        SyntaxElement::Num { name, format } => {
                            format!("{name}:#{}", format_suffix(*format))
                        }
                    })
                    .collect();
                self.line(&format!("SYNTAX {{ {} }}", parts.join(" ")));
            }
            OpItem::Semantics(raw) => {
                self.line(&format!("SEMANTICS {{ {} }}", raw.text));
            }
            OpItem::Behavior(block) => {
                self.open("BEHAVIOR");
                for stmt in &block.stmts {
                    self.stmt(stmt);
                }
                self.close();
            }
            OpItem::Expression(expr) => {
                self.line(&format!("EXPRESSION {{ {} }}", print_expr(expr)));
            }
            OpItem::Activation(act) => {
                self.open("ACTIVATION");
                self.act_list(&act.items);
                self.close();
            }
            OpItem::Switch(sw) => {
                self.open(&format!("SWITCH ({})", sw.group));
                for case in &sw.cases {
                    let members: Vec<&str> = case.members.iter().map(|m| m.name.as_str()).collect();
                    self.open(&format!("CASE {}:", members.join(", ")));
                    for item in &case.items {
                        self.op_item(item);
                    }
                    self.close();
                }
                if let Some(default) = &sw.default {
                    self.open("DEFAULT:");
                    for item in default {
                        self.op_item(item);
                    }
                    self.close();
                }
                self.close();
            }
            OpItem::If(ifitem) => {
                self.open(&format!("IF ({} == {})", ifitem.group, ifitem.member));
                for item in &ifitem.then_items {
                    self.op_item(item);
                }
                self.close();
                if !ifitem.else_items.is_empty() {
                    self.open("ELSE");
                    for item in &ifitem.else_items {
                        self.op_item(item);
                    }
                    self.close();
                }
            }
            OpItem::Custom(name, raw) => {
                self.line(&format!("{name} {{ {} }}", raw.text));
            }
        }
    }

    fn act_list(&mut self, items: &[ActNode]) {
        let mut last_delay = 0u32;
        for node in items {
            let delay = match node {
                ActNode::Activate { delay, .. }
                | ActNode::Call { delay, .. }
                | ActNode::If { delay, .. }
                | ActNode::Switch { delay, .. } => *delay,
            };
            // Emit `;` markers to encode delay increases, `,` otherwise.
            let mut prefix = String::new();
            for _ in last_delay..delay {
                prefix.push(';');
            }
            if prefix.is_empty() && last_delay > 0 {
                // separators between same-delay items are commas, but a
                // line break suffices visually; emit comma for fidelity
            }
            last_delay = delay;
            match node {
                ActNode::Activate { name, .. } => self.line(&format!("{prefix}{name},")),
                ActNode::Call { call, .. } => {
                    self.line(&format!("{prefix}{},", print_call(call)));
                }
                ActNode::If { cond, then_items, else_items, .. } => {
                    self.open(&format!("{prefix}if ({})", print_expr(cond)));
                    self.act_list(then_items);
                    self.close();
                    if !else_items.is_empty() {
                        self.open("else");
                        self.act_list(else_items);
                        self.close();
                    }
                }
                ActNode::Switch { scrutinee, cases, default, .. } => {
                    self.open(&format!("{prefix}switch ({})", print_expr(scrutinee)));
                    for (value, body) in cases {
                        self.open(&format!("case {value}:"));
                        self.act_list(body);
                        self.close();
                    }
                    if !default.is_empty() {
                        self.open("default:");
                        self.act_list(default);
                        self.close();
                    }
                    self.close();
                }
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Local { ty, name, init } => match init {
                Some(e) => self.line(&format!("{} {name} = {};", format_type(*ty), print_expr(e))),
                None => self.line(&format!("{} {name};", format_type(*ty))),
            },
            Stmt::Assign { target, op, value } => {
                self.line(&format!(
                    "{} {} {};",
                    print_expr(target),
                    assign_op_str(*op),
                    print_expr(value)
                ));
            }
            Stmt::IncDec { target, delta } => {
                let op = if *delta > 0 { "++" } else { "--" };
                self.line(&format!("{}{op};", print_expr(target)));
            }
            Stmt::Expr(e) => self.line(&format!("{};", print_expr(e))),
            Stmt::If { cond, then_block, else_block } => {
                self.open(&format!("if ({})", print_expr(cond)));
                for s in &then_block.stmts {
                    self.stmt(s);
                }
                self.close();
                if !else_block.stmts.is_empty() {
                    self.open("else");
                    for s in &else_block.stmts {
                        self.stmt(s);
                    }
                    self.close();
                }
            }
            Stmt::While { cond, body } => {
                self.open(&format!("while ({})", print_expr(cond)));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::DoWhile { body, cond } => {
                self.open("do");
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line(&format!("}} while ({});", print_expr(cond)));
            }
            Stmt::For { init, cond, step, body } => {
                let init_s = init.as_ref().map_or(String::new(), |s| print_simple_stmt(s));
                let cond_s = cond.as_ref().map_or(String::new(), print_expr);
                let step_s = step.as_ref().map_or(String::new(), |s| print_simple_stmt(s));
                self.open(&format!("for ({init_s}; {cond_s}; {step_s})"));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::Switch { scrutinee, cases, default } => {
                // The printed `case N: { … }` re-parses as a case body
                // holding one block statement; splice sole blocks so
                // printing is a fixpoint.
                fn case_stmts(block: &Block) -> &[Stmt] {
                    match block.stmts.as_slice() {
                        [Stmt::Block(inner)] => &inner.stmts,
                        stmts => stmts,
                    }
                }
                self.open(&format!("switch ({})", print_expr(scrutinee)));
                for (value, block) in cases {
                    self.open(&format!("case {value}:"));
                    for s in case_stmts(block) {
                        self.stmt(s);
                    }
                    self.close();
                }
                if let Some(block) = default {
                    self.open("default:");
                    for s in case_stmts(block) {
                        self.stmt(s);
                    }
                    self.close();
                }
                self.close();
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Block(b) => {
                self.open("");
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.close();
            }
        }
    }
}

fn format_resource(r: &ResourceDecl) -> String {
    let class = match r.class {
        ResourceClass::Plain => "",
        ResourceClass::Register => "REGISTER ",
        ResourceClass::ControlRegister => "CONTROL_REGISTER ",
        ResourceClass::ProgramCounter => "PROGRAM_COUNTER ",
        ResourceClass::DataMemory => "DATA_MEMORY ",
        ResourceClass::ProgramMemory => "PROGRAM_MEMORY ",
    };
    let mut decl = format!("{class}{} {}", format_type(r.ty), r.name);
    for dim in &r.dims {
        match dim {
            Dim::Size(n) => {
                let _ = write!(decl, "[{:#x}]", n);
            }
            Dim::Range(lo, hi) => {
                let _ = write!(decl, "[{:#x}..{:#x}]", lo, hi);
            }
        }
    }
    decl.push(';');
    decl
}

fn format_type(ty: DataType) -> String {
    match ty {
        DataType::Int => "int".into(),
        DataType::Long => "long".into(),
        DataType::Short => "short".into(),
        DataType::Char => "char".into(),
        DataType::UnsignedInt => "unsigned int".into(),
        DataType::UnsignedLong => "unsigned long".into(),
        DataType::UnsignedShort => "unsigned short".into(),
        DataType::UnsignedChar => "unsigned char".into(),
        DataType::Bit(1) => "bit".into(),
        DataType::Bit(w) => format!("bit[{w}]"),
    }
}

fn format_suffix(f: NumFormat) -> &'static str {
    match f {
        NumFormat::Signed => "s",
        NumFormat::Unsigned => "u",
        NumFormat::Hex => "x",
    }
}

fn assign_op_str(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Set => "=",
        AssignOp::Add => "+=",
        AssignOp::Sub => "-=",
        AssignOp::Mul => "*=",
        AssignOp::Div => "/=",
        AssignOp::Shl => "<<=",
        AssignOp::Shr => ">>=",
        AssignOp::And => "&=",
        AssignOp::Or => "|=",
        AssignOp::Xor => "^=",
    }
}

fn print_simple_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Local { ty, name, init } => match init {
            Some(e) => format!("{} {name} = {}", format_type(*ty), print_expr(e)),
            None => format!("{} {name}", format_type(*ty)),
        },
        Stmt::Assign { target, op, value } => {
            format!("{} {} {}", print_expr(target), assign_op_str(*op), print_expr(value))
        }
        Stmt::IncDec { target, delta } => {
            format!("{}{}", print_expr(target), if *delta > 0 { "++" } else { "--" })
        }
        Stmt::Expr(e) => print_expr(e),
        _ => String::new(),
    }
}

fn print_call(call: &Call) -> String {
    let path: Vec<&str> = call.path.iter().map(|p| p.name.as_str()).collect();
    let args: Vec<String> = call.args.iter().map(print_expr).collect();
    format!("{}({})", path.join("."), args.join(", "))
}

/// Renders an expression with full parenthesisation (safe for re-parsing).
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v, _) => v.to_string(),
        Expr::Name(id) => id.name.clone(),
        Expr::Index { base, index } => {
            format!("{}[{}]", print_expr(base), print_expr(index))
        }
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{sym}({})", print_expr(expr))
        }
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::LogAnd => "&&",
                BinOp::LogOr => "||",
            };
            format!("({} {sym} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Ternary { cond, then_expr, else_expr } => {
            format!(
                "({} ? {} : {})",
                print_expr(cond),
                print_expr(then_expr),
                print_expr(else_expr)
            )
        }
        Expr::Call(call) => print_call(call),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let first = parse(src).expect("first parse");
        let printed = print(&first);
        let second = match parse(&printed) {
            Ok(d) => d,
            Err(e) => panic!("re-parse failed: {e}\nprinted:\n{printed}"),
        };
        // Spans differ; compare printed forms instead, which erases them.
        assert_eq!(print(&second), printed, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn resources_round_trip() {
        round_trip(
            r#"RESOURCE {
                PROGRAM_COUNTER int pc;
                REGISTER bit[48] accu;
                DATA_MEMORY int mem[0x1000];
                PROGRAM_MEMORY short prog[0x100..0x1ff];
                PIPELINE pipe = { FE; DC; EX };
                unsigned int flags;
            }"#,
        );
    }

    #[test]
    fn operations_round_trip() {
        round_trip(
            r#"OPERATION add IN pipe.EX {
                DECLARE { GROUP Dest, Src = { register }; LABEL imm; }
                CODING { 0b0011 Dest Src imm:0bx[8] }
                SYNTAX { "ADD" Dest "," Src "," imm:#s }
                BEHAVIOR {
                    int t;
                    t = Src + imm;
                    Dest = t;
                    if (t == 0) { zflag = 1; } else { zflag = 0; }
                    for (int i = 0; i < 3; i++) { window[i] = window[i + 1]; }
                    while (x > 0) { x--; }
                }
            }
            OPERATION register {
                DECLARE { LABEL index; }
                CODING { index:0bx[4] }
                SYNTAX { "R" index:#u }
                EXPRESSION { R[index] }
            }"#,
        );
    }

    #[test]
    fn activation_and_switch_round_trip() {
        round_trip(
            r#"OPERATION main {
                DECLARE { GROUP Side = { side1 || side2 }; }
                ACTIVATION {
                    if (go) { fetch, decode; execute } else { idle }
                    pipe.shift()
                }
                SWITCH (Side) {
                    CASE side1: { SYNTAX { "A" } }
                    CASE side2: { SYNTAX { "B" } }
                }
            }
            OPERATION side1 { CODING { 0b0 } }
            OPERATION side2 { CODING { 0b1 } }"#,
        );
    }

    #[test]
    fn alias_and_semantics_round_trip() {
        round_trip(
            r#"OPERATION mv ALIAS {
                SEMANTICS { MOVE(dst, src) }
                CODING { 0b1010 }
                SYNTAX { "MV" }
            }"#,
        );
    }
}

//! Source locations and spans for diagnostics.

use std::fmt;

/// A half-open byte range into a LISA source file, with line/column of the
/// start for human-readable diagnostics.
///
/// # Examples
///
/// ```
/// use lisa_core::span::Span;
/// let span = Span::new(10, 13, 2, 5);
/// assert_eq!(span.to_string(), "2:5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span from raw components.
    #[must_use]
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A zero-width span at the origin, for synthesized nodes.
    #[must_use]
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`; keeps the
    /// earlier line/column.
    #[must_use]
    pub fn merge(&self, other: Span) -> Span {
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) && self.line != 0 {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span { start: self.start.min(other.start), end: self.end.max(other.end), line, col }
    }

    /// Extracts the spanned text from the original source.
    #[must_use]
    pub fn slice<'s>(&self, source: &'s str) -> &'s str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_extremes() {
        let a = Span::new(5, 9, 1, 6);
        let b = Span::new(12, 20, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 5);
        assert_eq!(m.end, 20);
        assert_eq!((m.line, m.col), (1, 6));
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn merge_with_synthetic_prefers_real_location() {
        let real = Span::new(3, 7, 4, 2);
        let m = Span::synthetic().merge(real);
        assert_eq!((m.line, m.col), (4, 2));
    }

    #[test]
    fn slice_is_safe_on_bad_ranges() {
        let s = Span::new(0, 100, 1, 1);
        assert_eq!(s.slice("abc"), "");
        let ok = Span::new(4, 7, 1, 5);
        assert_eq!(ok.slice("the cat"), "cat");
    }
}

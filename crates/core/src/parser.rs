//! Recursive-descent parser for the LISA machine description language.
//!
//! The grammar follows the DAC 1999 paper: a description is a sequence of
//! `RESOURCE` sections (containing resource and `PIPELINE` declarations)
//! and `OPERATION` definitions, whose bodies hold `DECLARE`, `CODING`,
//! `SYNTAX`, `SEMANTICS`, `BEHAVIOR`, `EXPRESSION` and `ACTIVATION`
//! sections, optionally wrapped in compile-time `SWITCH`/`IF` structuring.
//! The behavior language is a C subset.

use lisa_bits::BitPattern;

use crate::ast::*;
use crate::diag::ParseError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a complete LISA description.
///
/// # Errors
///
/// Returns the first lexing or parsing error with its source location.
///
/// # Examples
///
/// ```
/// use lisa_core::parser::parse;
///
/// # fn main() -> Result<(), lisa_core::diag::ParseError> {
/// let desc = parse(r#"
///     RESOURCE {
///         PROGRAM_COUNTER int pc;
///         REGISTER bit[48] accu;
///     }
///     OPERATION nop {
///         CODING { 0b00000000 }
///         SYNTAX { "NOP" }
///         BEHAVIOR { pc = pc + 1; }
///     }
/// "#)?;
/// assert_eq!(desc.resources.len(), 2);
/// assert_eq!(desc.operations.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Description, ParseError> {
    let tokens = lex(source)?;
    Parser { source, tokens, pos: 0 }.description()
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'s> Parser<'s> {
    // -- token plumbing ----------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Kw(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Token, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("`{}`", kw.as_str())))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::UnexpectedToken {
            found: self.peek().clone(),
            expected: expected.to_owned(),
            span: self.span(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Ident, ParseError> {
        match self.peek() {
            TokenKind::Ident(_) => {
                let tok = self.bump();
                let TokenKind::Ident(name) = tok.kind else { unreachable!() };
                Ok(Ident { name, span: tok.span })
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn int(&mut self, what: &str) -> Result<(i64, Span), ParseError> {
        match self.peek() {
            TokenKind::Int(_) => {
                let tok = self.bump();
                let TokenKind::Int(v) = tok.kind else { unreachable!() };
                Ok((v, tok.span))
            }
            // Pure binary literals double as integers.
            TokenKind::PatternLit(_) => {
                let (pat, span) = self.pattern_lit()?;
                if !pat.is_fully_specified() {
                    return Err(ParseError::InvalidNumber { text: pat.to_string(), span });
                }
                Ok((pat.fixed_value() as i64, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn pattern_lit(&mut self) -> Result<(BitPattern, Span), ParseError> {
        match self.peek() {
            TokenKind::PatternLit(_) => {
                let tok = self.bump();
                let TokenKind::PatternLit(text) = tok.kind else { unreachable!() };
                let pat: BitPattern = text
                    .parse()
                    .map_err(|source| ParseError::InvalidPattern { source, span: tok.span })?;
                Ok((pat, tok.span))
            }
            _ => Err(self.unexpected("a bit pattern literal")),
        }
    }

    // -- top level ----------------------------------------------------------

    fn description(mut self) -> Result<Description, ParseError> {
        let mut desc = Description::default();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(desc),
                TokenKind::Kw(Keyword::Resource) => self.resource_section(&mut desc)?,
                TokenKind::Kw(Keyword::Operation) => {
                    let op = self.operation()?;
                    desc.operations.push(op);
                }
                _ => return Err(self.unexpected("`RESOURCE` or `OPERATION`")),
            }
        }
    }

    // -- RESOURCE -----------------------------------------------------------

    fn resource_section(&mut self, desc: &mut Description) -> Result<(), ParseError> {
        self.expect_kw(Keyword::Resource)?;
        self.expect(TokenKind::LBrace, "`{`")?;
        while !self.eat(&TokenKind::RBrace) {
            if self.at_kw(Keyword::Pipeline) {
                desc.pipelines.push(self.pipeline_decl()?);
            } else {
                desc.resources.push(self.resource_decl()?);
            }
        }
        Ok(())
    }

    fn pipeline_decl(&mut self) -> Result<PipelineDecl, ParseError> {
        let start = self.span();
        self.expect_kw(Keyword::Pipeline)?;
        let name = self.ident("a pipeline name")?;
        self.expect(TokenKind::Assign, "`=`")?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stages = Vec::new();
        loop {
            stages.push(self.ident("a stage name")?);
            // Stages are separated by `;` (paper Example 2); also accept `,`.
            let more = self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma);
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            if !more {
                return Err(self.unexpected("`;` or `}` in pipeline stage list"));
            }
        }
        self.eat(&TokenKind::Semi);
        let span = start.merge(self.tokens[self.pos.saturating_sub(1)].span);
        Ok(PipelineDecl { name, stages, span })
    }

    fn resource_decl(&mut self) -> Result<ResourceDecl, ParseError> {
        let start = self.span();
        let class = match self.peek() {
            TokenKind::Kw(Keyword::Register) => {
                self.bump();
                ResourceClass::Register
            }
            TokenKind::Kw(Keyword::ControlRegister) => {
                self.bump();
                ResourceClass::ControlRegister
            }
            TokenKind::Kw(Keyword::ProgramCounter) => {
                self.bump();
                ResourceClass::ProgramCounter
            }
            TokenKind::Kw(Keyword::DataMemory) => {
                self.bump();
                ResourceClass::DataMemory
            }
            TokenKind::Kw(Keyword::ProgramMemory) => {
                self.bump();
                ResourceClass::ProgramMemory
            }
            _ => ResourceClass::Plain,
        };
        let ty = self.data_type()?;
        let name = self.ident("a resource name")?;
        let mut dims = Vec::new();
        loop {
            if self.at(&TokenKind::LBracket) {
                dims.push(self.dim()?);
            } else if self.at(&TokenKind::LParen) && *self.peek_at(1) == TokenKind::LBracket {
                // Banked memory: `data_mem2[4]([0x20000])`.
                self.bump(); // (
                dims.push(self.dim()?);
                self.expect(TokenKind::RParen, "`)`")?;
            } else {
                break;
            }
        }
        self.expect(TokenKind::Semi, "`;`")?;
        let span = start.merge(name.span);
        Ok(ResourceDecl { class, ty, name, dims, span })
    }

    fn dim(&mut self) -> Result<Dim, ParseError> {
        self.expect(TokenKind::LBracket, "`[`")?;
        let (lo, lo_span) = self.int("an array size or address")?;
        let dim = if self.eat(&TokenKind::DotDot) {
            let (hi, hi_span) = self.int("an end address")?;
            if hi < lo || lo < 0 {
                return Err(ParseError::InvalidNumber {
                    text: format!("{lo}..{hi}"),
                    span: lo_span.merge(hi_span),
                });
            }
            Dim::Range(lo as u64, hi as u64)
        } else {
            if lo <= 0 {
                return Err(ParseError::InvalidNumber { text: lo.to_string(), span: lo_span });
            }
            Dim::Size(lo as u64)
        };
        self.expect(TokenKind::RBracket, "`]`")?;
        Ok(dim)
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let unsigned = self.eat_kw(Keyword::Unsigned);
        let ty = match self.peek() {
            TokenKind::Kw(Keyword::Int) => {
                self.bump();
                if unsigned {
                    DataType::UnsignedInt
                } else {
                    DataType::Int
                }
            }
            TokenKind::Kw(Keyword::Long) => {
                self.bump();
                if unsigned {
                    DataType::UnsignedLong
                } else {
                    DataType::Long
                }
            }
            TokenKind::Kw(Keyword::Short) => {
                self.bump();
                if unsigned {
                    DataType::UnsignedShort
                } else {
                    DataType::Short
                }
            }
            TokenKind::Kw(Keyword::Char) => {
                self.bump();
                if unsigned {
                    DataType::UnsignedChar
                } else {
                    DataType::Char
                }
            }
            TokenKind::Kw(Keyword::Bit) => {
                self.bump();
                if self.eat(&TokenKind::LBracket) {
                    let (w, w_span) = self.int("a bit width")?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    if !(1..=i64::from(lisa_bits::MAX_WIDTH)).contains(&w) {
                        return Err(ParseError::InvalidNumber {
                            text: w.to_string(),
                            span: w_span,
                        });
                    }
                    DataType::Bit(w as u32)
                } else {
                    DataType::Bit(1)
                }
            }
            _ if unsigned => DataType::UnsignedInt, // bare `unsigned`
            _ => return Err(self.unexpected("a type (`int`, `bit[N]`, …)")),
        };
        Ok(ty)
    }

    // -- OPERATION ----------------------------------------------------------

    fn operation(&mut self) -> Result<OperationDecl, ParseError> {
        let start = self.span();
        self.expect_kw(Keyword::Operation)?;
        let name = self.ident("an operation name")?;
        let mut alias = false;
        let mut stage = None;
        loop {
            if self.eat_kw(Keyword::Alias) {
                alias = true;
            } else if self.eat_kw(Keyword::In) {
                let pipeline = self.ident("a pipeline name")?;
                self.expect(TokenKind::Dot, "`.`")?;
                let st = self.ident("a stage name")?;
                stage = Some(StageRef { pipeline, stage: st });
            } else {
                break;
            }
        }
        let span = start.merge(name.span);
        let items = self.op_items_block()?;
        Ok(OperationDecl { name, alias, stage, items, span })
    }

    fn op_items_block(&mut self) -> Result<Vec<OpItem>, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut items = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            items.push(self.op_item()?);
        }
        Ok(items)
    }

    fn op_item(&mut self) -> Result<OpItem, ParseError> {
        match self.peek().clone() {
            TokenKind::Kw(Keyword::Declare) => {
                self.bump();
                Ok(OpItem::Declare(self.declare_section()?))
            }
            TokenKind::Kw(Keyword::Coding) => {
                self.bump();
                Ok(OpItem::Coding(self.coding_section()?))
            }
            TokenKind::Kw(Keyword::Syntax) => {
                self.bump();
                Ok(OpItem::Syntax(self.syntax_section()?))
            }
            TokenKind::Kw(Keyword::Semantics) => {
                self.bump();
                Ok(OpItem::Semantics(self.raw_section()?))
            }
            TokenKind::Kw(Keyword::Behavior) => {
                self.bump();
                Ok(OpItem::Behavior(self.block()?))
            }
            TokenKind::Kw(Keyword::Expression) => {
                self.bump();
                self.expect(TokenKind::LBrace, "`{`")?;
                let expr = self.expr()?;
                self.eat(&TokenKind::Semi);
                self.expect(TokenKind::RBrace, "`}`")?;
                Ok(OpItem::Expression(expr))
            }
            TokenKind::Kw(Keyword::Activation) => {
                self.bump();
                self.expect(TokenKind::LBrace, "`{`")?;
                let items = self.activation_list(&TokenKind::RBrace)?;
                self.expect(TokenKind::RBrace, "`}`")?;
                Ok(OpItem::Activation(ActivationSection { items }))
            }
            TokenKind::Kw(Keyword::Switch) => self.op_switch().map(OpItem::Switch),
            TokenKind::Kw(Keyword::If) => self.op_if().map(OpItem::If),
            TokenKind::Ident(_) => {
                // User-defined section, e.g. `POWER { ... }`.
                let name = self.ident("a section name")?;
                let raw = self.raw_section()?;
                Ok(OpItem::Custom(name, raw))
            }
            _ => Err(self.unexpected("a section keyword")),
        }
    }

    fn op_switch(&mut self) -> Result<OpSwitch, ParseError> {
        let start = self.span();
        self.expect_kw(Keyword::Switch)?;
        self.expect(TokenKind::LParen, "`(`")?;
        let group = self.ident("a group name")?;
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut cases = Vec::new();
        let mut default = None;
        while !self.eat(&TokenKind::RBrace) {
            if self.eat_kw(Keyword::Case) {
                let mut members = vec![self.ident("a group member name")?];
                while self.eat(&TokenKind::Comma) {
                    members.push(self.ident("a group member name")?);
                }
                self.expect(TokenKind::Colon, "`:`")?;
                let items = self.op_items_block()?;
                cases.push(SwitchCase { members, items });
            } else if self.eat_kw(Keyword::Default) {
                self.expect(TokenKind::Colon, "`:`")?;
                if default.is_some() {
                    return Err(ParseError::DuplicateSection {
                        section: "DEFAULT",
                        span: self.span(),
                    });
                }
                default = Some(self.op_items_block()?);
            } else {
                return Err(self.unexpected("`CASE` or `DEFAULT`"));
            }
        }
        let span = start.merge(group.span);
        Ok(OpSwitch { group, cases, default, span })
    }

    fn op_if(&mut self) -> Result<OpIf, ParseError> {
        let start = self.span();
        self.expect_kw(Keyword::If)?;
        self.expect(TokenKind::LParen, "`(`")?;
        let group = self.ident("a group name")?;
        self.expect(TokenKind::EqEq, "`==`")?;
        let member = self.ident("a group member name")?;
        self.expect(TokenKind::RParen, "`)`")?;
        let then_items = self.op_items_block()?;
        let else_items =
            if self.eat_kw(Keyword::Else) { self.op_items_block()? } else { Vec::new() };
        let span = start.merge(member.span);
        Ok(OpIf { group, member, then_items, else_items, span })
    }

    // -- DECLARE ------------------------------------------------------------

    fn declare_section(&mut self) -> Result<DeclareSection, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut section = DeclareSection::default();
        while !self.eat(&TokenKind::RBrace) {
            if self.eat_kw(Keyword::Group) {
                let mut names = vec![self.ident("a group name")?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.ident("a group name")?);
                }
                self.expect(TokenKind::Assign, "`=`")?;
                self.expect(TokenKind::LBrace, "`{`")?;
                let mut members = vec![self.ident("a group member")?];
                // Members are separated by `||` (or-rules); `,` also accepted.
                while self.eat(&TokenKind::PipePipe) || self.eat(&TokenKind::Comma) {
                    members.push(self.ident("a group member")?);
                }
                self.expect(TokenKind::RBrace, "`}`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                section.groups.push(GroupDecl { names, members });
            } else if self.eat_kw(Keyword::Label) {
                section.labels.push(self.ident("a label name")?);
                while self.eat(&TokenKind::Comma) {
                    section.labels.push(self.ident("a label name")?);
                }
                self.expect(TokenKind::Semi, "`;`")?;
            } else if self.eat_kw(Keyword::Reference) {
                section.references.push(self.ident("an operation name")?);
                while self.eat(&TokenKind::Comma) {
                    section.references.push(self.ident("an operation name")?);
                }
                self.expect(TokenKind::Semi, "`;`")?;
            } else {
                return Err(self.unexpected("`GROUP`, `LABEL` or `REFERENCE`"));
            }
        }
        Ok(section)
    }

    // -- CODING -------------------------------------------------------------

    fn coding_section(&mut self) -> Result<CodingSection, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut section = CodingSection::default();
        // Coding-tree root: `resource == elements` (paper Example 3).
        if matches!(self.peek(), TokenKind::Ident(_)) && *self.peek_at(1) == TokenKind::EqEq {
            section.root = Some(self.ident("a resource name")?);
            self.bump(); // ==
        }
        while !self.eat(&TokenKind::RBrace) {
            section.elements.push(self.coding_element()?);
        }
        Ok(section)
    }

    fn coding_element(&mut self) -> Result<CodingElement, ParseError> {
        match self.peek() {
            TokenKind::PatternLit(_) => {
                let (pat, span) = self.pattern_with_repetition()?;
                Ok(CodingElement::Pattern(pat, span))
            }
            TokenKind::Ident(_) => {
                let name = self.ident("a coding element")?;
                if self.eat(&TokenKind::Colon) {
                    // `index:0bx[4]` — label-bound field.
                    let (pattern, _) = self.pattern_with_repetition()?;
                    Ok(CodingElement::LabelField { label: name, pattern })
                } else {
                    Ok(CodingElement::Ref(name))
                }
            }
            _ => Err(self.unexpected("a bit pattern or operation reference")),
        }
    }

    /// Parses `0b…` optionally followed by `[N]` repetition (`0bx[4]` is
    /// four don't-care bits).
    fn pattern_with_repetition(&mut self) -> Result<(BitPattern, Span), ParseError> {
        let (pat, span) = self.pattern_lit()?;
        if self.eat(&TokenKind::LBracket) {
            let (count, count_span) = self.int("a repetition count")?;
            self.expect(TokenKind::RBracket, "`]`")?;
            if count < 1 || count as u32 * pat.width() > lisa_bits::MAX_WIDTH {
                return Err(ParseError::InvalidRepetition { count, span: count_span });
            }
            let mut repeated = pat.clone();
            for _ in 1..count {
                repeated = repeated
                    .concat(&pat)
                    .map_err(|source| ParseError::InvalidPattern { source, span: count_span })?;
            }
            Ok((repeated, span.merge(count_span)))
        } else {
            Ok((pat, span))
        }
    }

    // -- SYNTAX -------------------------------------------------------------

    fn syntax_section(&mut self) -> Result<SyntaxSection, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut section = SyntaxSection::default();
        while !self.eat(&TokenKind::RBrace) {
            section.elements.push(self.syntax_element()?);
        }
        Ok(section)
    }

    fn syntax_element(&mut self) -> Result<SyntaxElement, ParseError> {
        match self.peek() {
            TokenKind::Str(_) => {
                let tok = self.bump();
                let TokenKind::Str(text) = tok.kind else { unreachable!() };
                Ok(SyntaxElement::Literal(text, tok.span))
            }
            TokenKind::Ident(_) => {
                let name = self.ident("a syntax element")?;
                if self.eat(&TokenKind::Colon) {
                    self.expect(TokenKind::Hash, "`#`")?;
                    let fmt_ident = self.ident("`s`, `u` or `x`")?;
                    let format = match fmt_ident.name.as_str() {
                        "s" => NumFormat::Signed,
                        "u" => NumFormat::Unsigned,
                        "x" => NumFormat::Hex,
                        _ => {
                            return Err(ParseError::UnexpectedToken {
                                found: TokenKind::Ident(fmt_ident.name),
                                expected: "`s`, `u` or `x`".into(),
                                span: fmt_ident.span,
                            });
                        }
                    };
                    Ok(SyntaxElement::Num { name, format })
                } else {
                    Ok(SyntaxElement::Ref(name))
                }
            }
            _ => Err(self.unexpected("a string literal or operand reference")),
        }
    }

    // -- raw sections -------------------------------------------------------

    fn raw_section(&mut self) -> Result<RawSection, ParseError> {
        let open = self.expect(TokenKind::LBrace, "`{`")?;
        let text_start = open.span.end;
        let mut depth = 1usize;
        let close_span;
        loop {
            match self.peek() {
                TokenKind::Eof => {
                    return Err(self.unexpected("`}`"));
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    depth -= 1;
                    let tok = self.bump();
                    if depth == 0 {
                        close_span = tok.span;
                        break;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
        let text = self.source[text_start..close_span.start].trim().to_owned();
        let span = open.span.merge(close_span);
        Ok(RawSection { text, span })
    }

    // -- ACTIVATION ---------------------------------------------------------

    fn activation_list(&mut self, terminator: &TokenKind) -> Result<Vec<ActNode>, ParseError> {
        let mut items = Vec::new();
        let mut delay = 0u32;
        loop {
            // Swallow separators, counting `;` as delayed activation.
            loop {
                if self.eat(&TokenKind::Semi) {
                    delay += 1;
                } else if self.eat(&TokenKind::Comma) {
                    // concurrent: no delay change
                } else {
                    break;
                }
            }
            if self.at(terminator) || self.at(&TokenKind::Eof) {
                return Ok(items);
            }
            items.push(self.activation_node(delay)?);
        }
    }

    fn activation_node(&mut self, delay: u32) -> Result<ActNode, ParseError> {
        match self.peek() {
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::LBrace, "`{`")?;
                let then_items = self.activation_list(&TokenKind::RBrace)?;
                self.expect(TokenKind::RBrace, "`}`")?;
                let else_items = if self.eat_kw(Keyword::Else) {
                    self.expect(TokenKind::LBrace, "`{`")?;
                    let items = self.activation_list(&TokenKind::RBrace)?;
                    self.expect(TokenKind::RBrace, "`}`")?;
                    items
                } else {
                    Vec::new()
                };
                Ok(ActNode::If { cond, then_items, else_items, delay })
            }
            TokenKind::Kw(Keyword::Switch) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let scrutinee = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::LBrace, "`{`")?;
                let mut cases = Vec::new();
                let mut default = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    if self.eat_kw(Keyword::Case) {
                        let (value, _) = self.int("a case value")?;
                        self.expect(TokenKind::Colon, "`:`")?;
                        self.expect(TokenKind::LBrace, "`{`")?;
                        let body = self.activation_list(&TokenKind::RBrace)?;
                        self.expect(TokenKind::RBrace, "`}`")?;
                        cases.push((value, body));
                    } else if self.eat_kw(Keyword::Default) {
                        self.expect(TokenKind::Colon, "`:`")?;
                        self.expect(TokenKind::LBrace, "`{`")?;
                        default = self.activation_list(&TokenKind::RBrace)?;
                        self.expect(TokenKind::RBrace, "`}`")?;
                    } else {
                        return Err(self.unexpected("`CASE` or `DEFAULT`"));
                    }
                }
                Ok(ActNode::Switch { scrutinee, cases, default, delay })
            }
            TokenKind::Ident(_) => {
                let first = self.ident("an operation name")?;
                if self.at(&TokenKind::Dot) || self.at(&TokenKind::LParen) {
                    let call = self.call_after_first(first)?;
                    Ok(ActNode::Call { call, delay })
                } else {
                    Ok(ActNode::Activate { name: first, delay })
                }
            }
            _ => Err(self.unexpected("an activation item")),
        }
    }

    /// Parses the rest of a dotted call, the first path segment already
    /// consumed: `.seg(.seg)? ( args )` or directly `( args )`.
    fn call_after_first(&mut self, first: Ident) -> Result<Call, ParseError> {
        let mut path = vec![first];
        while self.eat(&TokenKind::Dot) {
            path.push(self.ident("a name after `.`")?);
        }
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(Call { path, args })
    }

    // -- behavior language ----------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_block = self.block_or_single()?;
                let else_block = if self.eat_kw(Keyword::Else) {
                    self.block_or_single()?
                } else {
                    Block::default()
                };
                Ok(Stmt::If { cond, then_block, else_block })
            }
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Kw(Keyword::Do) => {
                self.bump();
                let body = self.block_or_single()?;
                self.expect_kw(Keyword::While)?;
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::DoWhile { body, cond })
            }
            TokenKind::Kw(Keyword::For) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let init = if self.eat(&TokenKind::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_semicolon()?))
                };
                let cond = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(TokenKind::Semi, "`;`")?;
                let step = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semicolon()?))
                };
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::Kw(Keyword::Switch) => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let scrutinee = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::LBrace, "`{`")?;
                let mut cases = Vec::new();
                let mut default = None;
                while !self.eat(&TokenKind::RBrace) {
                    if self.eat_kw(Keyword::Case) {
                        let (value, _) = self.int_or_negative("a case value")?;
                        self.expect(TokenKind::Colon, "`:`")?;
                        cases.push((value, self.case_body()?));
                    } else if self.eat_kw(Keyword::Default) {
                        self.expect(TokenKind::Colon, "`:`")?;
                        default = Some(self.case_body()?);
                    } else {
                        return Err(self.unexpected("`case` or `default`"));
                    }
                }
                Ok(Stmt::Switch { scrutinee, cases, default })
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break)
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue)
            }
            _ => self.simple_stmt_semicolon(),
        }
    }

    /// A case body: statements until `case`/`default`/`}`, with an
    /// optional trailing `break;` that is absorbed (no fall-through).
    fn case_body(&mut self) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RBrace
                | TokenKind::Kw(Keyword::Case)
                | TokenKind::Kw(Keyword::Default) => break,
                TokenKind::Kw(Keyword::Break) => {
                    self.bump();
                    self.expect(TokenKind::Semi, "`;`")?;
                    break;
                }
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(Block { stmts })
    }

    fn block_or_single(&mut self) -> Result<Block, ParseError> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn simple_stmt_semicolon(&mut self) -> Result<Stmt, ParseError> {
        let stmt = self.simple_stmt_no_semicolon()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(stmt)
    }

    /// Declaration, assignment, inc/dec, or expression statement — without
    /// the trailing semicolon (shared with `for` headers).
    fn simple_stmt_no_semicolon(&mut self) -> Result<Stmt, ParseError> {
        // Local declaration?
        if matches!(
            self.peek(),
            TokenKind::Kw(
                Keyword::Int
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Char
                    | Keyword::Unsigned
                    | Keyword::Bit
            )
        ) {
            let ty = self.data_type()?;
            let name = self.ident("a variable name")?;
            let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
            return Ok(Stmt::Local { ty, name, init });
        }
        let target = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::ShlAssign => Some(AssignOp::Shl),
            TokenKind::ShrAssign => Some(AssignOp::Shr),
            TokenKind::AmpAssign => Some(AssignOp::And),
            TokenKind::PipeAssign => Some(AssignOp::Or),
            TokenKind::CaretAssign => Some(AssignOp::Xor),
            TokenKind::PlusPlus => {
                self.bump();
                return Ok(Stmt::IncDec { target, delta: 1 });
            }
            TokenKind::MinusMinus => {
                self.bump();
                return Ok(Stmt::IncDec { target, delta: -1 });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            Ok(Stmt::Assign { target, op, value })
        } else {
            Ok(Stmt::Expr(target))
        }
    }

    fn int_or_negative(&mut self, what: &str) -> Result<(i64, Span), ParseError> {
        if self.eat(&TokenKind::Minus) {
            let (v, span) = self.int(what)?;
            Ok((-v, span))
        } else {
            self.int(what)
        }
    }

    // -- expressions ----------------------------------------------------------

    /// Entry point for expressions (ternary is lowest precedence).
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logic_or()?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expr()?;
            self.expect(TokenKind::Colon, "`:`")?;
            let else_expr = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logic_and()?;
        while self.eat(&TokenKind::PipePipe) {
            let rhs = self.logic_and()?;
            lhs = bin(BinOp::LogOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AmpAmp) {
            let rhs = self.bit_or()?;
            lhs = bin(BinOp::LogAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bit_and()?;
            lhs = bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality()?;
            lhs = bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.eat(&TokenKind::EqEq) {
                BinOp::Eq
            } else if self.eat(&TokenKind::NotEq) {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.relational()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinOp::Ge
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat(&TokenKind::Shl) {
                BinOp::Shl
            } else if self.eat(&TokenKind::Shr) {
                BinOp::Shr
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.eat(&TokenKind::Minus) {
            Some(UnOp::Neg)
        } else if self.eat(&TokenKind::Bang) {
            Some(UnOp::Not)
        } else if self.eat(&TokenKind::Tilde) {
            Some(UnOp::BitNot)
        } else if self.eat(&TokenKind::Plus) {
            None // unary plus is a no-op; continue into the operand
        } else {
            return self.postfix();
        };
        let operand = self.unary()?;
        Ok(match op {
            Some(op) => Expr::Unary { op, expr: Box::new(operand) },
            None => operand,
        })
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let index = self.expr()?;
                self.expect(TokenKind::RBracket, "`]`")?;
                expr = Expr::Index { base: Box::new(expr), index: Box::new(index) };
            } else if self.at(&TokenKind::Dot) || self.at(&TokenKind::LParen) {
                // Only bare names can head a call path.
                if let Expr::Name(first) = expr {
                    let call = self.call_after_first(first)?;
                    expr = Expr::Call(call);
                } else if self.at(&TokenKind::Dot) {
                    return Err(self.unexpected("no `.` after a non-name expression"));
                } else {
                    return Err(self.unexpected("no call on a non-name expression"));
                }
            } else {
                return Ok(expr);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Int(_) => {
                let (v, span) = self.int("an integer")?;
                Ok(Expr::Int(v, span))
            }
            TokenKind::PatternLit(_) => {
                let (v, span) = self.int("a binary literal without `x` bits")?;
                Ok(Expr::Int(v, span))
            }
            TokenKind::Ident(_) => Ok(Expr::Name(self.ident("a name")?)),
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Description {
        match parse(src) {
            Ok(d) => d,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parses_paper_example_1_resources() {
        let d = parse_ok(
            r#"RESOURCE {
                PROGRAM_COUNTER int pc;
                CONTROL_REGISTER int instruction_register;
                REGISTER bit[48] accu;
                REGISTER bit carry;
                DATA_MEMORY int data_mem1[0x80000];
                DATA_MEMORY int data_mem2[4]([0x20000]);
                PROGRAM_MEMORY int prog_mem[0x100..0xffff];
            }"#,
        );
        assert_eq!(d.resources.len(), 7);
        assert_eq!(d.resources[0].class, ResourceClass::ProgramCounter);
        assert_eq!(d.resources[2].ty, DataType::Bit(48));
        assert_eq!(d.resources[3].ty, DataType::Bit(1));
        assert_eq!(d.resources[4].dims, vec![Dim::Size(0x80000)]);
        assert_eq!(d.resources[5].dims, vec![Dim::Size(4), Dim::Size(0x20000)]);
        assert_eq!(d.resources[6].dims, vec![Dim::Range(0x100, 0xffff)]);
    }

    #[test]
    fn parses_paper_example_2_pipelines() {
        let d = parse_ok(
            r#"RESOURCE {
                PIPELINE fetch_pipe = { PG; PS; PW; PR; DP };
                PIPELINE execute_pipe = { DC; E1; E2; E3; E4; E5 };
            }"#,
        );
        assert_eq!(d.pipelines.len(), 2);
        assert_eq!(d.pipelines[0].name.name, "fetch_pipe");
        let stages: Vec<&str> = d.pipelines[0].stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(stages, vec!["PG", "PS", "PW", "PR", "DP"]);
        assert_eq!(d.pipelines[1].stages.len(), 6);
    }

    #[test]
    fn parses_paper_example_3_coding_root() {
        let d = parse_ok(
            r#"OPERATION decode {
                DECLARE {
                    GROUP Instruction = { abs || add || and || cmp || ld || mul };
                }
                CODING { instruction_register == Instruction }
                SYNTAX { Instruction }
                BEHAVIOR { Instruction; }
            }"#,
        );
        let op = &d.operations[0];
        let OpItem::Declare(decl) = &op.items[0] else { panic!("expected DECLARE") };
        assert_eq!(decl.groups[0].names[0].name, "Instruction");
        assert_eq!(decl.groups[0].members.len(), 6);
        let OpItem::Coding(coding) = &op.items[1] else { panic!("expected CODING") };
        assert_eq!(coding.root.as_ref().unwrap().name, "instruction_register");
        assert_eq!(coding.elements.len(), 1);
    }

    #[test]
    fn parses_paper_example_4_operation_groups_and_labels() {
        let d = parse_ok(
            r#"OPERATION add_d {
                DECLARE { GROUP Dest, Src1, Src2 = { register }; }
                CODING { Dest Src2 Src1 0b1000000 0b10000 }
                SYNTAX { "ADD" ".D" Src1 "," Src2 "," Dest }
                BEHAVIOR { Dest = Src1 + Src2; }
            }
            OPERATION register {
                DECLARE { LABEL index; }
                CODING { 0bx index:0bx[4] }
                SYNTAX { "A" index:#u }
                EXPRESSION { A[index] }
            }"#,
        );
        assert_eq!(d.operations.len(), 2);
        let add = &d.operations[0];
        let OpItem::Declare(decl) = &add.items[0] else { panic!() };
        assert_eq!(
            decl.groups[0].names.iter().map(|n| n.name.as_str()).collect::<Vec<_>>(),
            vec!["Dest", "Src1", "Src2"]
        );
        let OpItem::Coding(coding) = &add.items[1] else { panic!() };
        assert_eq!(coding.elements.len(), 5);
        assert!(matches!(&coding.elements[0], CodingElement::Ref(r) if r.name == "Dest"));
        let CodingElement::Pattern(p, _) = &coding.elements[3] else { panic!() };
        assert_eq!(p.width(), 7);

        let reg = &d.operations[1];
        let OpItem::Coding(coding) = &reg.items[1] else { panic!() };
        let CodingElement::LabelField { label, pattern } = &coding.elements[1] else { panic!() };
        assert_eq!(label.name, "index");
        assert_eq!(pattern.width(), 4);
        assert_eq!(pattern.dont_care_count(), 4);
        let OpItem::Syntax(syn) = &reg.items[2] else { panic!() };
        assert!(matches!(
            &syn.elements[1],
            SyntaxElement::Num { name, format: NumFormat::Unsigned } if name.name == "index"
        ));
        let OpItem::Expression(Expr::Index { .. }) = &reg.items[3] else {
            panic!("expected EXPRESSION with index")
        };
    }

    #[test]
    fn parses_paper_example_5_activation() {
        let d = parse_ok(
            r#"OPERATION main {
                ACTIVATION {
                    if (dispatch_complete && !multicycle_nop) {
                        Prog_Address_Generate, Prog_Address_Send,
                        Prog_Access_Ready_Wait, Prog_Fetch_Packet_Receive,
                        Dispatch
                    }
                    if (multicycle_nop) {
                        fetch_pipe.DP.stall(), execute_pipe.DC.stall()
                    }
                    fetch_pipe.shift(), execute_pipe.shift()
                }
            }"#,
        );
        let OpItem::Activation(act) = &d.operations[0].items[0] else { panic!() };
        assert_eq!(act.items.len(), 4);
        let ActNode::If { cond, then_items, .. } = &act.items[0] else { panic!() };
        assert!(matches!(cond, Expr::Binary { op: BinOp::LogAnd, .. }));
        assert_eq!(then_items.len(), 5);
        let ActNode::If { then_items, .. } = &act.items[1] else { panic!() };
        let ActNode::Call { call, .. } = &then_items[0] else { panic!() };
        assert_eq!(call.path.len(), 3);
        assert_eq!(call.path[2].name, "stall");
        let ActNode::Call { call, .. } = &act.items[2] else { panic!() };
        assert_eq!(call.path.len(), 2);
        assert_eq!(call.path[1].name, "shift");
    }

    #[test]
    fn parses_paper_example_6_switch_case() {
        let d = parse_ok(
            r#"OPERATION register {
                DECLARE {
                    GROUP Side = { side1 || side2 };
                    LABEL index;
                }
                CODING { Side index:0bx[4] }
                SWITCH (Side) {
                    CASE side1: {
                        SYNTAX { "A" index:#u }
                        EXPRESSION { A[index] }
                    }
                    CASE side2: {
                        SYNTAX { "B" index:#u }
                        EXPRESSION { B[index] }
                    }
                }
            }"#,
        );
        let op = &d.operations[0];
        let OpItem::Switch(sw) = &op.items[2] else { panic!("expected SWITCH") };
        assert_eq!(sw.group.name, "Side");
        assert_eq!(sw.cases.len(), 2);
        assert_eq!(sw.cases[0].members[0].name, "side1");
        assert_eq!(sw.cases[1].items.len(), 2);
        assert!(sw.default.is_none());
    }

    #[test]
    fn parses_activation_delays() {
        let d = parse_ok(
            r#"OPERATION seq {
                ACTIVATION { first, second; third; ; fourth }
            }"#,
        );
        let OpItem::Activation(act) = &d.operations[0].items[0] else { panic!() };
        let delays: Vec<u32> = act
            .items
            .iter()
            .map(|n| match n {
                ActNode::Activate { delay, .. } => *delay,
                _ => panic!(),
            })
            .collect();
        assert_eq!(delays, vec![0, 0, 1, 3]);
    }

    #[test]
    fn parses_operation_header_options() {
        let d = parse_ok(
            r#"OPERATION mv ALIAS { CODING { 0b0 } }
            OPERATION add IN execute_pipe.E1 { CODING { 0b1 } }"#,
        );
        assert!(d.operations[0].alias);
        assert!(d.operations[0].stage.is_none());
        let stage = d.operations[1].stage.as_ref().unwrap();
        assert_eq!(stage.pipeline.name, "execute_pipe");
        assert_eq!(stage.stage.name, "E1");
    }

    #[test]
    fn parses_behavior_c_subset() {
        let d = parse_ok(
            r#"OPERATION mac {
                BEHAVIOR {
                    int prod;
                    prod = x * y;
                    if (sat_mode) {
                        accu = saturate(accu + prod, 40);
                    } else {
                        accu += prod;
                    }
                    for (int i = 0; i < 4; i++) {
                        window[i] = window[i + 1];
                    }
                    while (norm_count > 0) {
                        norm_count--;
                    }
                    switch (mode) {
                        case 0: accu = 0; break;
                        case 1: { accu = accu >> 1; }
                        default: nop();
                    }
                }
            }"#,
        );
        let OpItem::Behavior(block) = &d.operations[0].items[0] else { panic!() };
        assert_eq!(block.stmts.len(), 6);
        assert!(matches!(block.stmts[0], Stmt::Local { ty: DataType::Int, .. }));
        assert!(matches!(block.stmts[2], Stmt::If { .. }));
        assert!(matches!(block.stmts[3], Stmt::For { .. }));
        let Stmt::Switch { cases, default, .. } = &block.stmts[5] else { panic!() };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn expression_precedence() {
        let d = parse_ok("OPERATION t { BEHAVIOR { r = 1 + 2 * 3 << 1 | 7 & 3; } }");
        let OpItem::Behavior(b) = &d.operations[0].items[0] else { panic!() };
        let Stmt::Assign { value, .. } = &b.stmts[0] else { panic!() };
        // ((1 + (2*3)) << 1) | (7 & 3)
        let Expr::Binary { op: BinOp::BitOr, lhs, rhs } = value else { panic!() };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Shl, .. }));
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::BitAnd, .. }));
    }

    #[test]
    fn ternary_and_unary() {
        let d = parse_ok("OPERATION t { BEHAVIOR { r = a ? -b : ~c + !d; } }");
        let OpItem::Behavior(b) = &d.operations[0].items[0] else { panic!() };
        let Stmt::Assign { value: Expr::Ternary { .. }, .. } = &b.stmts[0] else {
            panic!("expected ternary")
        };
    }

    #[test]
    fn semantics_and_custom_sections_are_raw() {
        let d = parse_ok(
            r#"OPERATION add {
                SEMANTICS { ADD(dst, src1, src2) { nested } }
                POWER { 1.5 mW typical }
            }"#,
        );
        let OpItem::Semantics(raw) = &d.operations[0].items[0] else { panic!() };
        assert_eq!(raw.text, "ADD(dst, src1, src2) { nested }");
        let OpItem::Custom(name, raw) = &d.operations[0].items[1] else { panic!() };
        assert_eq!(name.name, "POWER");
        assert!(raw.text.contains("1.5 mW"));
    }

    #[test]
    fn rejects_bad_inputs_with_positions() {
        for (src, needle) in [
            ("RESOURCE { int ; }", "resource name"),
            ("OPERATION { }", "operation name"),
            ("OPERATION x { CODING { , } }", "bit pattern"),
            ("OPERATION x { SYNTAX { 12 } }", "string literal"),
            ("RESOURCE { bit[0] z; }", "invalid numeric"),
            ("RESOURCE { int m[0]; }", "invalid numeric"),
            ("RESOURCE { int m[5..2]; }", "invalid numeric"),
            ("OPERATION x { CODING { 0bx[200] } }", "repetition"),
            ("OPERATION x { BEHAVIOR { a = 0b1x; } }", "invalid numeric"),
        ] {
            let err = parse(src).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "source {src:?} gave {msg:?}, wanted {needle:?}");
        }
    }

    #[test]
    fn repetition_expands_patterns() {
        let d = parse_ok("OPERATION x { CODING { 0b10[3] imm:0bx[8] } }");
        let OpItem::Coding(c) = &d.operations[0].items[0] else { panic!() };
        let CodingElement::Pattern(p, _) = &c.elements[0] else { panic!() };
        assert_eq!(p.to_string(), "0b101010");
        let CodingElement::LabelField { pattern, .. } = &c.elements[1] else { panic!() };
        assert_eq!(pattern.width(), 8);
    }

    #[test]
    fn empty_description_parses() {
        let d = parse_ok("");
        assert!(d.resources.is_empty() && d.operations.is_empty());
    }

    #[test]
    fn eof_inside_operation_is_an_error() {
        assert!(parse("OPERATION x { CODING {").is_err());
        assert!(parse("OPERATION x { SEMANTICS { never closed").is_err());
    }
}

//! Diagnostics for the LISA front-end: lexing and parsing errors.

use std::error::Error;
use std::fmt;

use crate::span::Span;
use crate::token::TokenKind;

/// An error produced while lexing or parsing LISA source.
///
/// Every variant carries the [`Span`] where the problem was detected, so
/// tools can point at the offending source text.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A character that cannot start any token.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Its location.
        span: Span,
    },
    /// A string literal missing its closing quote.
    UnterminatedString {
        /// Location of the opening quote.
        span: Span,
    },
    /// A block comment missing its closing `*/`.
    UnterminatedComment {
        /// Location of the opening `/*`.
        span: Span,
    },
    /// A numeric literal that does not parse (overflow, empty digits…).
    InvalidNumber {
        /// The literal text.
        text: String,
        /// Its location.
        span: Span,
    },
    /// A malformed bit-pattern literal.
    InvalidPattern {
        /// The underlying bit-pattern error.
        source: lisa_bits::BitsError,
        /// Its location.
        span: Span,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// What was found.
        found: TokenKind,
        /// A description of what was expected (e.g. "`;`", "a section
        /// keyword").
        expected: String,
        /// Location of the found token.
        span: Span,
    },
    /// A pattern repetition count (`0bx[4]`) that is zero or too large.
    InvalidRepetition {
        /// The repetition count.
        count: i64,
        /// Its location.
        span: Span,
    },
    /// The same section appeared twice in one operation (outside
    /// conditional structuring).
    DuplicateSection {
        /// Section keyword name.
        section: &'static str,
        /// Location of the second occurrence.
        span: Span,
    },
    /// An escape sequence in a string literal that is not recognised.
    InvalidEscape {
        /// The escaped character.
        ch: char,
        /// Its location.
        span: Span,
    },
}

impl ParseError {
    /// The source span the error points at.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            ParseError::UnexpectedChar { span, .. }
            | ParseError::UnterminatedString { span }
            | ParseError::UnterminatedComment { span }
            | ParseError::InvalidNumber { span, .. }
            | ParseError::InvalidPattern { span, .. }
            | ParseError::UnexpectedToken { span, .. }
            | ParseError::InvalidRepetition { span, .. }
            | ParseError::DuplicateSection { span, .. }
            | ParseError::InvalidEscape { span, .. } => *span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { ch, span } => {
                write!(f, "{span}: unexpected character `{ch}`")
            }
            ParseError::UnterminatedString { span } => {
                write!(f, "{span}: unterminated string literal")
            }
            ParseError::UnterminatedComment { span } => {
                write!(f, "{span}: unterminated block comment")
            }
            ParseError::InvalidNumber { text, span } => {
                write!(f, "{span}: invalid numeric literal `{text}`")
            }
            ParseError::InvalidPattern { source, span } => {
                write!(f, "{span}: {source}")
            }
            ParseError::UnexpectedToken { found, expected, span } => {
                write!(f, "{span}: expected {expected}, found {found}")
            }
            ParseError::InvalidRepetition { count, span } => {
                write!(f, "{span}: invalid pattern repetition count {count}")
            }
            ParseError::DuplicateSection { section, span } => {
                write!(f, "{span}: duplicate {section} section")
            }
            ParseError::InvalidEscape { ch, span } => {
                write!(f, "{span}: invalid escape sequence `\\{ch}`")
            }
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::InvalidPattern { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let err = ParseError::UnexpectedChar { ch: '@', span: Span::new(4, 5, 2, 1) };
        assert_eq!(err.to_string(), "2:1: unexpected character `@`");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<ParseError>();
    }

    #[test]
    fn pattern_errors_chain_source() {
        let inner = lisa_bits::BitsError::InvalidPattern { text: "0b2".into() };
        let err = ParseError::InvalidPattern { source: inner, span: Span::synthetic() };
        assert!(err.source().is_some());
    }
}

/// Combined error for the parse-then-analyse pipeline
/// ([`crate::model::Model::from_source`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LisaError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Model analysis failed.
    Model(crate::model::ModelError),
}

impl fmt::Display for LisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LisaError::Parse(e) => write!(f, "parse error: {e}"),
            LisaError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for LisaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LisaError::Parse(e) => Some(e),
            LisaError::Model(e) => Some(e),
        }
    }
}

impl From<ParseError> for LisaError {
    fn from(e: ParseError) -> Self {
        LisaError::Parse(e)
    }
}

impl From<crate::model::ModelError> for LisaError {
    fn from(e: crate::model::ModelError) -> Self {
        LisaError::Model(e)
    }
}

//! Abstract syntax tree for LISA descriptions.
//!
//! A [`Description`] is the parse result of one LISA source file: resource
//! declarations (memory/resource model), pipeline declarations (timing
//! model), and operation definitions whose sections carry the instruction
//! set, behavioral and timing models. The AST stays close to the concrete
//! syntax; resolution of names into ids happens later in
//! [`crate::model`].

use lisa_bits::BitPattern;

use crate::span::Span;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name text.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a synthetic span (for programmatic ASTs).
    #[must_use]
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident { name: name.into(), span: Span::synthetic() }
    }
}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A complete parsed LISA description.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Description {
    /// All resource declarations, in source order (multiple `RESOURCE`
    /// sections are concatenated).
    pub resources: Vec<ResourceDecl>,
    /// All pipeline declarations.
    pub pipelines: Vec<PipelineDecl>,
    /// All operation definitions.
    pub operations: Vec<OperationDecl>,
}

/// The classifying attribute of a resource declaration (paper §3.1: "these
/// keywords are not mandatory but they are used to classify the
/// definitions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResourceClass {
    /// No classifying keyword.
    #[default]
    Plain,
    /// `REGISTER`
    Register,
    /// `CONTROL_REGISTER`
    ControlRegister,
    /// `PROGRAM_COUNTER`
    ProgramCounter,
    /// `DATA_MEMORY`
    DataMemory,
    /// `PROGRAM_MEMORY`
    ProgramMemory,
}

/// The element type of a resource: C-style integer types or exact bit
/// widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `int` — 32 bits.
    Int,
    /// `long` — 64 bits.
    Long,
    /// `short` — 16 bits.
    Short,
    /// `char` — 8 bits.
    Char,
    /// `unsigned int` et al. — same widths, unsigned interpretation.
    UnsignedInt,
    /// `unsigned long`.
    UnsignedLong,
    /// `unsigned short`.
    UnsignedShort,
    /// `unsigned char`.
    UnsignedChar,
    /// `bit` (width 1) or `bit[N]`.
    Bit(u32),
}

impl DataType {
    /// The storage width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        match self {
            DataType::Int | DataType::UnsignedInt => 32,
            DataType::Long | DataType::UnsignedLong => 64,
            DataType::Short | DataType::UnsignedShort => 16,
            DataType::Char | DataType::UnsignedChar => 8,
            DataType::Bit(w) => *w,
        }
    }

    /// Whether values are interpreted as signed two's-complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        matches!(self, DataType::Int | DataType::Long | DataType::Short | DataType::Char)
    }
}

/// One array/range dimension of a resource declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// `[N]` — N elements, addressed from 0.
    Size(u64),
    /// `[lo..hi]` — elements addressed `lo..=hi` (paper Example 1:
    /// `prog_mem[0x100..0xffff]`).
    Range(u64, u64),
}

impl Dim {
    /// Number of addressable elements.
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            Dim::Size(n) => *n,
            Dim::Range(lo, hi) => hi - lo + 1,
        }
    }

    /// Whether the dimension holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lowest valid address.
    #[must_use]
    pub fn base(&self) -> u64 {
        match self {
            Dim::Size(_) => 0,
            Dim::Range(lo, _) => *lo,
        }
    }
}

/// One declaration from a `RESOURCE` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDecl {
    /// Classifying keyword.
    pub class: ResourceClass,
    /// Element type.
    pub ty: DataType,
    /// Resource name.
    pub name: Ident,
    /// Zero or more dimensions; empty = scalar register. Paper Example 1's
    /// `data_mem2[4]([0x20000])` yields two dimensions.
    pub dims: Vec<Dim>,
    /// Source location of the whole declaration.
    pub span: Span,
}

/// A `PIPELINE name = { S1; S2; … };` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineDecl {
    /// Pipeline name.
    pub name: Ident,
    /// Stage names, first stage first.
    pub stages: Vec<Ident>,
    /// Source location.
    pub span: Span,
}

/// A reference to a pipeline stage, `pipeline.stage`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageRef {
    /// Pipeline name.
    pub pipeline: Ident,
    /// Stage name.
    pub stage: Ident,
}

/// An `OPERATION name [ALIAS] [IN pipe.stage] { … }` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationDecl {
    /// Operation name.
    pub name: Ident,
    /// Whether the `ALIAS` option was given (instruction aliasing, §3:
    /// "Support for instruction aliasing").
    pub alias: bool,
    /// Optional pipeline-stage assignment from the header.
    pub stage: Option<StageRef>,
    /// The operation body items (sections and conditional structuring).
    pub items: Vec<OpItem>,
    /// Source location of the header.
    pub span: Span,
}

/// One item in an operation body: a section, or compile-time conditional
/// structuring around nested items (paper §3.4).
#[derive(Debug, Clone, PartialEq)]
pub enum OpItem {
    /// `DECLARE { … }`
    Declare(DeclareSection),
    /// `CODING { … }`
    Coding(CodingSection),
    /// `SYNTAX { … }`
    Syntax(SyntaxSection),
    /// `SEMANTICS { … }` — kept as raw text for documentation/compiler
    /// back-ends; not interpreted by the simulator.
    Semantics(RawSection),
    /// `BEHAVIOR { … }`
    Behavior(Block),
    /// `EXPRESSION { … }`
    Expression(Expr),
    /// `ACTIVATION { … }`
    Activation(ActivationSection),
    /// `SWITCH (Group) { CASE member: { … } … }`
    Switch(OpSwitch),
    /// `IF (Group == member) { … } [ELSE { … }]`
    If(OpIf),
    /// A user-defined section (`name { raw }`) — the paper allows designers
    /// to "add further sections in order to describe other attributes, like
    /// e.g. power consumption".
    Custom(Ident, RawSection),
}

/// Compile-time `SWITCH` over a group's selected member.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSwitch {
    /// The group being switched on.
    pub group: Ident,
    /// `CASE member[, member…]: { items }` arms.
    pub cases: Vec<SwitchCase>,
    /// Optional `DEFAULT: { items }` arm.
    pub default: Option<Vec<OpItem>>,
    /// Source location.
    pub span: Span,
}

/// One arm of an [`OpSwitch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// Members selecting this arm.
    pub members: Vec<Ident>,
    /// Items active when one of `members` is selected.
    pub items: Vec<OpItem>,
}

/// Compile-time `IF (Group == member)` structuring.
#[derive(Debug, Clone, PartialEq)]
pub struct OpIf {
    /// The group being tested.
    pub group: Ident,
    /// The member compared against.
    pub member: Ident,
    /// Items active when the member is selected.
    pub then_items: Vec<OpItem>,
    /// Items active otherwise.
    pub else_items: Vec<OpItem>,
    /// Source location.
    pub span: Span,
}

/// A `DECLARE` section: symbol declarations for the operation (paper
/// §3.2.2 lists operation references, group definitions, group references
/// and labels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeclareSection {
    /// `GROUP a, b = { x || y || z };` definitions.
    pub groups: Vec<GroupDecl>,
    /// `LABEL idx;` inter-section references.
    pub labels: Vec<Ident>,
    /// `REFERENCE op;` operation references.
    pub references: Vec<Ident>,
}

/// One `GROUP names… = { members… };` definition. Several group *names*
/// may share one member list ("The groups src1, src2, and dest are
/// instantiations of the same operation group").
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDecl {
    /// The group instance names.
    pub names: Vec<Ident>,
    /// The alternative operations.
    pub members: Vec<Ident>,
}

/// A `CODING` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodingSection {
    /// For coding-tree roots: the compared resource in
    /// `CODING { instruction_register == Instruction … }`.
    pub root: Option<Ident>,
    /// The coding elements left (most significant) to right.
    pub elements: Vec<CodingElement>,
}

/// One element of a coding sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum CodingElement {
    /// A literal bit pattern (`0b0011x10`), possibly repeated
    /// (`0bx[4]` = four don't-care bits).
    Pattern(BitPattern, Span),
    /// A reference to another operation's or group's coding.
    Ref(Ident),
    /// `label:0bx[4]` — a label-bound field; the matched bits become the
    /// label's value, linking coding to syntax (translation rules).
    LabelField {
        /// The label name.
        label: Ident,
        /// The pattern giving the field its width (and any fixed bits).
        pattern: BitPattern,
    },
}

impl CodingElement {
    /// Best-effort source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            CodingElement::Pattern(_, span) => *span,
            CodingElement::Ref(ident) => ident.span,
            CodingElement::LabelField { label, .. } => label.span,
        }
    }
}

/// A `SYNTAX` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SyntaxSection {
    /// The syntax elements in order.
    pub elements: Vec<SyntaxElement>,
}

/// Numeric operand display format (`:#s` signed, `:#u` unsigned, `:#x`
/// hexadecimal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumFormat {
    /// Signed decimal.
    Signed,
    /// Unsigned decimal.
    Unsigned,
    /// Hexadecimal with `0x` prefix.
    Hex,
}

/// One element of a syntax sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum SyntaxElement {
    /// A quoted literal: mnemonic text or punctuation (`"ADD"`, `","`).
    Literal(String, Span),
    /// A reference to another operation's or group's syntax.
    Ref(Ident),
    /// A numeric field: `index:#u` (a label) or `imm:#s` (a group/ref whose
    /// selected operation is an immediate).
    Num {
        /// The label/group/reference name.
        name: Ident,
        /// Display format.
        format: NumFormat,
    },
}

/// A raw (uninterpreted) section body: the source text between braces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawSection {
    /// Raw text, braces excluded.
    pub text: String,
    /// Source location of the braced body.
    pub span: Span,
}

/// An `ACTIVATION` section: a timed list of operation activations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivationSection {
    /// The activation nodes in order.
    pub items: Vec<ActNode>,
}

/// One node of an activation list. `delay` counts the `;` (delayed
/// activation) separators preceding the node within its list; `,`
/// (concurrent activation) does not increase it.
#[derive(Debug, Clone, PartialEq)]
pub enum ActNode {
    /// Activate an operation or group by name.
    Activate {
        /// The activated operation/group.
        name: Ident,
        /// Extra control-step delay from `;` separators.
        delay: u32,
    },
    /// A call such as `fetch_pipe.DP.stall()` or `execute_pipe.shift()`.
    Call {
        /// The dotted call target and arguments.
        call: Call,
        /// Extra control-step delay from `;` separators.
        delay: u32,
    },
    /// Run-time conditional activation (`if` inside ACTIVATION — paper:
    /// "we allow the activation to be embedded in control structures").
    If {
        /// Condition over resources.
        cond: Expr,
        /// Nodes when true.
        then_items: Vec<ActNode>,
        /// Nodes when false.
        else_items: Vec<ActNode>,
        /// Extra control-step delay applied to the whole conditional.
        delay: u32,
    },
    /// Run-time switch over a resource value.
    Switch {
        /// Scrutinee expression.
        scrutinee: Expr,
        /// `(match value, nodes)` arms.
        cases: Vec<(i64, Vec<ActNode>)>,
        /// Default arm.
        default: Vec<ActNode>,
        /// Extra control-step delay applied to the whole switch.
        delay: u32,
    },
}

/// A call with a dotted target path: `pipe.stage.stall()`, `shift()`,
/// or a plain builtin like `print(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Dotted path segments (1–3 of them).
    pub path: Vec<Ident>,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

// ---------------------------------------------------------------------------
// Behavior language (C subset)
// ---------------------------------------------------------------------------

/// A behavior-language block: `{ stmt* }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the operators
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

/// A behavior-language statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration: `int x;` or `int x = e;`.
    Local {
        /// Declared type.
        ty: DataType,
        /// Variable name.
        name: Ident,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment to an lvalue (identifier or indexed resource).
    Assign {
        /// Assignment target.
        target: Expr,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `x++;` / `x--;`
    IncDec {
        /// Target lvalue.
        target: Expr,
        /// +1 or -1.
        delta: i64,
    },
    /// An expression evaluated for effect: an operation/group invocation
    /// (`Instruction;` from paper Example 3) or an intrinsic call.
    Expr(Expr),
    /// `if (c) { … } [else { … }]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Else branch (empty when absent).
        else_block: Block,
    },
    /// `while (c) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { … } while (c);`
    DoWhile {
        /// Loop body.
        body: Block,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) { … }`
    For {
        /// Initialiser statement.
        init: Option<Box<Stmt>>,
        /// Condition (absent = true).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `switch (e) { case n: … default: … }` with implicit break at each
    /// case end (no fall-through: each case body is a block).
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// `(value, body)` arms.
        cases: Vec<(i64, Block)>,
        /// Default arm.
        default: Option<Block>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Binary operators (C semantics over 64-bit signed integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

/// A behavior-language expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Name: local variable, resource, label, group or operation
    /// reference — resolved during analysis/evaluation.
    Name(Ident),
    /// Indexing: `A[i]`, `mem[bank][addr]` (nested).
    Index {
        /// The indexed base.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `c ? t : f`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// Call: builtin (`sext(v, 16)`), pipeline intrinsic
    /// (`pipe.DC.stall()`), or referenced-operation invocation
    /// (`Operand()`).
    Call(Call),
}

impl Expr {
    /// Best-effort source span (synthetic for composite nodes).
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, span) => *span,
            Expr::Name(id) => id.span,
            Expr::Index { base, .. } => base.span(),
            Expr::Unary { expr, .. } => expr.span(),
            Expr::Binary { lhs, .. } => lhs.span(),
            Expr::Ternary { cond, .. } => cond.span(),
            Expr::Call(call) => call.path.first().map_or_else(Span::synthetic, |p| p.span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_widths() {
        assert_eq!(DataType::Int.width(), 32);
        assert_eq!(DataType::Long.width(), 64);
        assert_eq!(DataType::Short.width(), 16);
        assert_eq!(DataType::Char.width(), 8);
        assert_eq!(DataType::Bit(1).width(), 1);
        assert_eq!(DataType::Bit(48).width(), 48);
        assert!(DataType::Int.is_signed());
        assert!(!DataType::UnsignedInt.is_signed());
    }

    #[test]
    fn dim_addressing() {
        let size = Dim::Size(0x80000);
        assert_eq!(size.len(), 0x80000);
        assert_eq!(size.base(), 0);
        let range = Dim::Range(0x100, 0xffff);
        assert_eq!(range.len(), 0xff00);
        assert_eq!(range.base(), 0x100);
        assert!(!range.is_empty());
    }

    #[test]
    fn ident_display() {
        assert_eq!(Ident::synthetic("accu").to_string(), "accu");
    }
}

//! Token kinds produced by the LISA lexer.

use std::fmt;

use crate::span::Span;

/// Keywords of the LISA language.
///
/// Section keywords (`CODING`, `SYNTAX`, …) and structural keywords
/// (`OPERATION`, `RESOURCE`, `PIPELINE`, …) are reserved; resource-class
/// attributes (`REGISTER`, `PROGRAM_COUNTER`, …) are also keywords since
/// they prefix declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    Resource,
    Operation,
    Pipeline,
    Register,
    ControlRegister,
    ProgramCounter,
    DataMemory,
    ProgramMemory,
    Declare,
    Group,
    Label,
    Reference,
    Coding,
    Syntax,
    Semantics,
    Behavior,
    Expression,
    Activation,
    In,
    Switch,
    Case,
    Default,
    If,
    Else,
    Alias,
    // Behavior-language keywords.
    Int,
    Long,
    Short,
    Char,
    Unsigned,
    Bit,
    While,
    For,
    Do,
    Break,
    Continue,
}

impl Keyword {
    /// Looks up an identifier; returns `None` if it is not a keyword.
    #[must_use]
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "RESOURCE" => Keyword::Resource,
            "OPERATION" => Keyword::Operation,
            "PIPELINE" => Keyword::Pipeline,
            "REGISTER" => Keyword::Register,
            "CONTROL_REGISTER" => Keyword::ControlRegister,
            "PROGRAM_COUNTER" => Keyword::ProgramCounter,
            "DATA_MEMORY" => Keyword::DataMemory,
            "PROGRAM_MEMORY" => Keyword::ProgramMemory,
            "DECLARE" => Keyword::Declare,
            "GROUP" => Keyword::Group,
            "LABEL" => Keyword::Label,
            "REFERENCE" => Keyword::Reference,
            "CODING" => Keyword::Coding,
            "SYNTAX" => Keyword::Syntax,
            "SEMANTICS" => Keyword::Semantics,
            "BEHAVIOR" => Keyword::Behavior,
            "EXPRESSION" => Keyword::Expression,
            "ACTIVATION" => Keyword::Activation,
            "IN" => Keyword::In,
            "SWITCH" => Keyword::Switch,
            "CASE" => Keyword::Case,
            "DEFAULT" => Keyword::Default,
            "IF" => Keyword::If,
            "ELSE" => Keyword::Else,
            "ALIAS" => Keyword::Alias,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "short" => Keyword::Short,
            "char" => Keyword::Char,
            "unsigned" => Keyword::Unsigned,
            "bit" => Keyword::Bit,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "do" => Keyword::Do,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            // Lower-case `if`/`else`/`switch`/`case`/`default` inside
            // behavior code share the upper-case keyword variants.
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            _ => return None,
        })
    }

    /// The canonical spelling (upper-case form for section keywords).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Resource => "RESOURCE",
            Keyword::Operation => "OPERATION",
            Keyword::Pipeline => "PIPELINE",
            Keyword::Register => "REGISTER",
            Keyword::ControlRegister => "CONTROL_REGISTER",
            Keyword::ProgramCounter => "PROGRAM_COUNTER",
            Keyword::DataMemory => "DATA_MEMORY",
            Keyword::ProgramMemory => "PROGRAM_MEMORY",
            Keyword::Declare => "DECLARE",
            Keyword::Group => "GROUP",
            Keyword::Label => "LABEL",
            Keyword::Reference => "REFERENCE",
            Keyword::Coding => "CODING",
            Keyword::Syntax => "SYNTAX",
            Keyword::Semantics => "SEMANTICS",
            Keyword::Behavior => "BEHAVIOR",
            Keyword::Expression => "EXPRESSION",
            Keyword::Activation => "ACTIVATION",
            Keyword::In => "IN",
            Keyword::Switch => "SWITCH",
            Keyword::Case => "CASE",
            Keyword::Default => "DEFAULT",
            Keyword::If => "IF",
            Keyword::Else => "ELSE",
            Keyword::Alias => "ALIAS",
            Keyword::Int => "int",
            Keyword::Long => "long",
            Keyword::Short => "short",
            Keyword::Char => "char",
            Keyword::Unsigned => "unsigned",
            Keyword::Bit => "bit",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Do => "do",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
        }
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier (operation, group, label, resource, or variable name).
    Ident(String),
    /// Reserved word.
    Kw(Keyword),
    /// Integer literal (decimal, `0x…` hex, or pure-binary `0b…` without
    /// don't-cares), with its value.
    Int(i64),
    /// Bit-pattern literal containing at least one `x` don't-care
    /// (`0b01xx`), kept textually; the parser turns it into a
    /// [`lisa_bits::BitPattern`].
    PatternLit(String),
    /// Double-quoted string literal (syntax mnemonics), unescaped.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `#`
    Hash,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `+=`
    PlusAssign,
    /// `-`
    Minus,
    /// `-=`
    MinusAssign,
    /// `*`
    Star,
    /// `*=`
    StarAssign,
    /// `/`
    Slash,
    /// `/=`
    SlashAssign,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `&=`
    AmpAssign,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `|=`
    PipeAssign,
    /// `^`
    Caret,
    /// `^=`
    CaretAssign,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `<<=`
    ShlAssign,
    /// `>>`
    Shr,
    /// `>>=`
    ShrAssign,
    /// `?`
    Question,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::PatternLit(s) => write!(f, "bit pattern `{s}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            other => {
                let text = match other {
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Semi => ";",
                    TokenKind::Comma => ",",
                    TokenKind::Colon => ":",
                    TokenKind::Dot => ".",
                    TokenKind::DotDot => "..",
                    TokenKind::Hash => "#",
                    TokenKind::Assign => "=",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::Plus => "+",
                    TokenKind::PlusAssign => "+=",
                    TokenKind::Minus => "-",
                    TokenKind::MinusAssign => "-=",
                    TokenKind::Star => "*",
                    TokenKind::StarAssign => "*=",
                    TokenKind::Slash => "/",
                    TokenKind::SlashAssign => "/=",
                    TokenKind::Percent => "%",
                    TokenKind::Amp => "&",
                    TokenKind::AmpAmp => "&&",
                    TokenKind::AmpAssign => "&=",
                    TokenKind::Pipe => "|",
                    TokenKind::PipePipe => "||",
                    TokenKind::PipeAssign => "|=",
                    TokenKind::Caret => "^",
                    TokenKind::CaretAssign => "^=",
                    TokenKind::Tilde => "~",
                    TokenKind::Bang => "!",
                    TokenKind::Shl => "<<",
                    TokenKind::ShlAssign => "<<=",
                    TokenKind::Shr => ">>",
                    TokenKind::ShrAssign => ">>=",
                    TokenKind::Question => "?",
                    TokenKind::PlusPlus => "++",
                    TokenKind::MinusMinus => "--",
                    TokenKind::Eof => "end of input",
                    _ => unreachable!(),
                };
                if matches!(other, TokenKind::Eof) {
                    write!(f, "{text}")
                } else {
                    write!(f, "`{text}`")
                }
            }
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in [
            Keyword::Resource,
            Keyword::Operation,
            Keyword::Coding,
            Keyword::ProgramCounter,
            Keyword::Int,
            Keyword::While,
        ] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_ident("add"), None);
        // Lower-case control keywords map onto the shared variants.
        assert_eq!(Keyword::from_ident("if"), Some(Keyword::If));
        assert_eq!(Keyword::from_ident("switch"), Some(Keyword::Switch));
    }

    #[test]
    fn display_is_helpful() {
        assert_eq!(TokenKind::Ident("add".into()).to_string(), "identifier `add`");
        assert_eq!(TokenKind::Shl.to_string(), "`<<`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(TokenKind::Kw(Keyword::Coding).to_string(), "`CODING`");
    }
}

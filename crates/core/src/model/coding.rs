//! Resolved coding layout: fields with widths and bit offsets, plus the
//! flattened match pattern used to build decoders and detect ambiguity.

use lisa_bits::BitPattern;

use super::{OpId, ResourceId};

/// Where a coding field's bits come from.
#[derive(Debug, Clone, PartialEq)]
pub enum CodingTarget {
    /// A fixed/don't-care pattern written literally.
    Pattern(BitPattern),
    /// A label-bound operand field (`index:0bx[4]`); the pattern may also
    /// carry fixed bits.
    Label {
        /// Index into the operation's label list.
        label: usize,
        /// The field pattern (fixed bits must match; free bits form the
        /// label value).
        pattern: BitPattern,
    },
    /// The coding of a group's selected alternative.
    Group(usize),
    /// The coding of a directly referenced operation.
    Op(OpId),
}

/// One positioned field of a resolved coding.
#[derive(Debug, Clone, PartialEq)]
pub struct CodingField {
    /// The field source.
    pub target: CodingTarget,
    /// Field width in bits.
    pub width: u32,
    /// Bit offset of the field's least significant bit within the
    /// instruction word (0 = rightmost).
    pub offset: u32,
}

/// The resolved coding of one operation variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Coding {
    /// Root-compare resource for decode entry points
    /// (`CODING { ir == Instruction }`).
    pub root: Option<ResourceId>,
    /// Fields, leftmost (most significant) first.
    pub fields: Vec<CodingField>,
    /// Total width in bits.
    width: u32,
    /// The flattened match pattern: fixed bits that every expansion of
    /// this coding shares (referenced operations contribute the
    /// intersection of their alternatives' fixed bits).
    flat: BitPattern,
}

impl Coding {
    /// Assembles a coding from positioned fields and its flattened
    /// pattern. Internal to model building.
    pub(crate) fn new(
        root: Option<ResourceId>,
        fields: Vec<CodingField>,
        width: u32,
        flat: BitPattern,
    ) -> Self {
        debug_assert_eq!(flat.width(), width);
        Coding { root, fields, width, flat }
    }

    /// Total coding width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The flattened match pattern (sound over-approximation: every word
    /// this coding can encode matches it).
    #[must_use]
    pub fn flat_pattern(&self) -> &BitPattern {
        &self.flat
    }

    /// Fields that are operand-like (labels, groups, op references).
    pub fn operand_fields(&self) -> impl Iterator<Item = &CodingField> {
        self.fields.iter().filter(|f| !matches!(f.target, CodingTarget::Pattern(_)))
    }

    /// Number of fixed (discriminating) bits in the flattened pattern.
    #[must_use]
    pub fn fixed_bits(&self) -> u32 {
        self.width - self.flat.dont_care_count()
    }
}

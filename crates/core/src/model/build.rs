//! Construction of the model database from a parsed description.

use std::collections::{HashMap, HashSet};

use lisa_bits::BitPattern;

use crate::ast::*;

use super::coding::{Coding, CodingField, CodingTarget};
use super::{
    Group, Model, ModelError, ModelWarning, OpId, Operation, Pipeline, PipelineId, Resource,
    ResourceId, SynElem, Variant,
};

impl Model {
    /// Analyses a parsed description into the model database.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] for duplicate names, unresolved
    /// references, recursive or width-inconsistent codings, and malformed
    /// conditional structuring. Non-fatal findings are collected as
    /// [`ModelWarning`]s on the returned model.
    pub fn build(desc: &Description) -> Result<Model, ModelError> {
        Builder::new(desc)?.run(desc)
    }

    /// Parses LISA source and builds the model database in one step.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::LisaError`] wrapping either the parse error or
    /// the model error.
    pub fn from_source(source: &str) -> Result<Model, crate::LisaError> {
        let desc = crate::parser::parse(source)?;
        let mut model = Model::build(&desc)?;
        model.source_lines = source.lines().filter(|l| !l.trim().is_empty()).count();
        Ok(model)
    }
}

/// Sections accumulated for one variant during conditional expansion.
#[derive(Debug, Clone, Default)]
struct SectionSet {
    guard: Vec<(usize, OpId)>,
    coding: Option<CodingSection>,
    syntax: Option<SyntaxSection>,
    behavior: Option<Block>,
    expression: Option<Expr>,
    activation: Option<Vec<ActNode>>,
    semantics: Option<String>,
}

struct Builder {
    resources: Vec<Resource>,
    pipelines: Vec<Pipeline>,
    resource_names: HashMap<String, ResourceId>,
    pipeline_names: HashMap<String, PipelineId>,
    op_names: HashMap<String, OpId>,
    warnings: Vec<ModelWarning>,
}

impl Builder {
    fn new(desc: &Description) -> Result<Self, ModelError> {
        let mut b = Builder {
            resources: Vec::new(),
            pipelines: Vec::new(),
            resource_names: HashMap::new(),
            pipeline_names: HashMap::new(),
            op_names: HashMap::new(),
            warnings: Vec::new(),
        };
        for decl in &desc.resources {
            let id = ResourceId(b.resources.len());
            if b.resource_names.insert(decl.name.name.clone(), id).is_some() {
                return Err(ModelError::DuplicateResource {
                    name: decl.name.name.clone(),
                    span: decl.name.span,
                });
            }
            b.resources.push(Resource {
                id,
                name: decl.name.name.clone(),
                class: decl.class,
                ty: decl.ty,
                dims: decl.dims.clone(),
            });
        }
        for decl in &desc.pipelines {
            let id = PipelineId(b.pipelines.len());
            if b.pipeline_names.insert(decl.name.name.clone(), id).is_some()
                || b.resource_names.contains_key(&decl.name.name)
            {
                return Err(ModelError::DuplicatePipeline {
                    name: decl.name.name.clone(),
                    span: decl.name.span,
                });
            }
            let mut seen = HashSet::new();
            for stage in &decl.stages {
                if !seen.insert(stage.name.clone()) {
                    return Err(ModelError::DuplicateStage {
                        stage: stage.name.clone(),
                        pipeline: decl.name.name.clone(),
                    });
                }
            }
            b.pipelines.push(Pipeline {
                id,
                name: decl.name.name.clone(),
                stages: decl.stages.iter().map(|s| s.name.clone()).collect(),
            });
        }
        for op in &desc.operations {
            let id = OpId(b.op_names.len());
            if b.op_names.insert(op.name.name.clone(), id).is_some() {
                return Err(ModelError::DuplicateOperation {
                    name: op.name.name.clone(),
                    span: op.name.span,
                });
            }
        }
        Ok(b)
    }

    fn run(mut self, desc: &Description) -> Result<Model, ModelError> {
        let mut operations = Vec::with_capacity(desc.operations.len());
        let mut raw_codings: Vec<Vec<Option<CodingSection>>> =
            Vec::with_capacity(desc.operations.len());
        for (index, decl) in desc.operations.iter().enumerate() {
            let (op, codings) = self.build_operation(OpId(index), decl)?;
            operations.push(op);
            raw_codings.push(codings);
        }

        resolve_codings(&mut operations, &self.resource_names, &raw_codings)?;
        self.warn_overlaps(&operations);
        self.warn_unreachable(&operations, desc);

        let decode_roots: Vec<OpId> =
            operations.iter().filter(|o| o.decode_root.is_some()).map(|o| o.id).collect();
        let main_op = self.op_names.get("main").copied();

        Ok(Model {
            resources: self.resources,
            pipelines: self.pipelines,
            operations,
            resource_names: self.resource_names,
            op_names: self.op_names,
            decode_roots,
            main_op,
            warnings: self.warnings,
            source_lines: 0,
        })
    }

    fn build_operation(
        &mut self,
        id: OpId,
        decl: &OperationDecl,
    ) -> Result<(Operation, Vec<Option<CodingSection>>), ModelError> {
        // Gather DECLARE sections (anywhere in the body, including inside
        // conditional structuring — declarations are operation-global).
        let mut groups = Vec::new();
        let mut labels = Vec::new();
        let mut references = Vec::new();
        collect_declares(&decl.items, &mut |section: &DeclareSection| {
            for g in &section.groups {
                for name in &g.names {
                    groups.push((name.clone(), g.members.clone()));
                }
            }
            for l in &section.labels {
                labels.push(l.name.clone());
            }
            for r in &section.references {
                references.push(r.clone());
            }
        });

        let resolved_groups = groups
            .into_iter()
            .map(|(name, members)| {
                if members.is_empty() {
                    return Err(ModelError::EmptyGroup {
                        group: name.name.clone(),
                        operation: decl.name.name.clone(),
                    });
                }
                let members = members
                    .iter()
                    .map(|m| self.lookup_op(m, "group member"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Group { name: name.name, members })
            })
            .collect::<Result<Vec<Group>, ModelError>>()?;

        let references = references
            .iter()
            .map(|r| self.lookup_op(r, "referenced operation"))
            .collect::<Result<Vec<_>, _>>()?;

        let stage = match &decl.stage {
            None => None,
            Some(sr) => {
                let pid = self.pipeline_names.get(&sr.pipeline.name).copied().ok_or_else(|| {
                    ModelError::UnknownStage {
                        pipeline: sr.pipeline.name.clone(),
                        stage: sr.stage.name.clone(),
                        span: sr.pipeline.span,
                    }
                })?;
                let sidx = self.pipelines[pid.0].stage_index(&sr.stage.name).ok_or_else(|| {
                    ModelError::UnknownStage {
                        pipeline: sr.pipeline.name.clone(),
                        stage: sr.stage.name.clone(),
                        span: sr.stage.span,
                    }
                })?;
                Some((pid, sidx))
            }
        };

        // Expand conditional structuring into variants.
        let ctx =
            OpCtx { name: &decl.name.name, groups: &resolved_groups, op_names: &self.op_names };
        let mut sets = vec![SectionSet::default()];
        expand_items(&decl.items, &mut sets, &ctx)?;
        // Most-specific guard first so `select_variant` finds the right
        // specialisation before any unguarded default.
        sets.sort_by_key(|s| std::cmp::Reverse(s.guard.len()));

        let mut variants = Vec::with_capacity(sets.len());
        let mut codings = Vec::with_capacity(sets.len());
        for set in sets {
            let syntax = match set.syntax {
                None => None,
                Some(sec) => Some(resolve_syntax(&sec, &ctx, &labels)?),
            };
            codings.push(set.coding);
            variants.push(Variant {
                guard: set.guard,
                coding: None, // resolved once all operations are registered
                syntax,
                behavior: set.behavior,
                expression: set.expression,
                activation: set.activation,
                semantics: set.semantics,
            });
        }

        let mut customs = Vec::new();
        collect_customs(&decl.items, &mut customs);

        let op = Operation {
            id,
            name: decl.name.name.clone(),
            alias: decl.alias,
            stage,
            groups: resolved_groups,
            labels,
            references,
            variants,
            decode_root: None,
            customs,
        };
        Ok((op, codings))
    }

    fn lookup_op(&self, ident: &Ident, expected: &'static str) -> Result<OpId, ModelError> {
        self.op_names.get(&ident.name).copied().ok_or_else(|| ModelError::UnknownName {
            name: ident.name.clone(),
            expected,
            span: ident.span,
        })
    }

    fn warn_overlaps(&mut self, operations: &[Operation]) {
        for op in operations {
            for group in &op.groups {
                for (i, &a) in group.members.iter().enumerate() {
                    for &b in &group.members[i + 1..] {
                        let (oa, ob) = (&operations[a.0], &operations[b.0]);
                        if oa.alias || ob.alias {
                            continue;
                        }
                        let (Some(ca), Some(cb)) = (
                            oa.variants.iter().find_map(|v| v.coding.as_ref()),
                            ob.variants.iter().find_map(|v| v.coding.as_ref()),
                        ) else {
                            continue;
                        };
                        if ca.flat_pattern().overlaps(cb.flat_pattern()) {
                            self.warnings.push(ModelWarning::OverlappingCoding {
                                group: group.name.clone(),
                                operation: op.name.clone(),
                                first: oa.name.clone(),
                                second: ob.name.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    fn warn_unreachable(&mut self, operations: &[Operation], desc: &Description) {
        let mut reachable: HashSet<OpId> = HashSet::new();
        for op in operations {
            for g in &op.groups {
                reachable.extend(g.members.iter().copied());
            }
            reachable.extend(op.references.iter().copied());
        }
        // Names mentioned in activations and behaviors also count.
        let mut mentioned: HashSet<&str> = HashSet::new();
        for decl in &desc.operations {
            collect_mentions(&decl.items, &mut mentioned);
        }
        for op in operations {
            let is_root = op.decode_root.is_some();
            let is_main = op.name == "main" || op.name == "reset";
            if !is_root
                && !is_main
                && !reachable.contains(&op.id)
                && !mentioned.contains(op.name.as_str())
            {
                self.warnings
                    .push(ModelWarning::UnreachableOperation { operation: op.name.clone() });
            }
        }
    }
}

/// Minimal context needed while resolving one operation's sections.
struct OpCtx<'a> {
    name: &'a str,
    groups: &'a [Group],
    op_names: &'a HashMap<String, OpId>,
}

impl OpCtx<'_> {
    fn group_index(&self, name: &str) -> Option<usize> {
        self.groups.iter().position(|g| g.name == name)
    }
}

fn collect_customs(items: &[OpItem], out: &mut Vec<(String, String)>) {
    for item in items {
        match item {
            OpItem::Custom(name, raw) => out.push((name.name.clone(), raw.text.clone())),
            OpItem::Switch(sw) => {
                for case in &sw.cases {
                    collect_customs(&case.items, out);
                }
                if let Some(d) = &sw.default {
                    collect_customs(d, out);
                }
            }
            OpItem::If(i) => {
                collect_customs(&i.then_items, out);
                collect_customs(&i.else_items, out);
            }
            _ => {}
        }
    }
}

fn collect_declares(items: &[OpItem], f: &mut impl FnMut(&DeclareSection)) {
    for item in items {
        match item {
            OpItem::Declare(d) => f(d),
            OpItem::Switch(sw) => {
                for case in &sw.cases {
                    collect_declares(&case.items, f);
                }
                if let Some(d) = &sw.default {
                    collect_declares(d, f);
                }
            }
            OpItem::If(i) => {
                collect_declares(&i.then_items, f);
                collect_declares(&i.else_items, f);
            }
            _ => {}
        }
    }
}

fn collect_mentions<'a>(items: &'a [OpItem], out: &mut HashSet<&'a str>) {
    fn walk_act<'a>(nodes: &'a [ActNode], out: &mut HashSet<&'a str>) {
        for node in nodes {
            match node {
                ActNode::Activate { name, .. } => {
                    out.insert(name.name.as_str());
                }
                ActNode::Call { .. } => {}
                ActNode::If { then_items, else_items, .. } => {
                    walk_act(then_items, out);
                    walk_act(else_items, out);
                }
                ActNode::Switch { cases, default, .. } => {
                    for (_, body) in cases {
                        walk_act(body, out);
                    }
                    walk_act(default, out);
                }
            }
        }
    }
    fn walk_expr<'a>(e: &'a Expr, out: &mut HashSet<&'a str>) {
        match e {
            Expr::Int(..) => {}
            Expr::Name(id) => {
                out.insert(id.name.as_str());
            }
            Expr::Index { base, index } => {
                walk_expr(base, out);
                walk_expr(index, out);
            }
            Expr::Unary { expr, .. } => walk_expr(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                walk_expr(cond, out);
                walk_expr(then_expr, out);
                walk_expr(else_expr, out);
            }
            Expr::Call(c) => {
                if let Some(first) = c.path.first() {
                    out.insert(first.name.as_str());
                }
                for a in &c.args {
                    walk_expr(a, out);
                }
            }
        }
    }
    fn walk_block<'a>(b: &'a Block, out: &mut HashSet<&'a str>) {
        for stmt in &b.stmts {
            walk_stmt(stmt, out);
        }
    }
    fn walk_stmt<'a>(s: &'a Stmt, out: &mut HashSet<&'a str>) {
        match s {
            Stmt::Local { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                walk_expr(target, out);
                walk_expr(value, out);
            }
            Stmt::IncDec { target, .. } => walk_expr(target, out),
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::If { cond, then_block, else_block } => {
                walk_expr(cond, out);
                walk_block(then_block, out);
                walk_block(else_block, out);
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                walk_expr(cond, out);
                walk_block(body, out);
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(s) = init {
                    walk_stmt(s, out);
                }
                if let Some(e) = cond {
                    walk_expr(e, out);
                }
                if let Some(s) = step {
                    walk_stmt(s, out);
                }
                walk_block(body, out);
            }
            Stmt::Switch { scrutinee, cases, default } => {
                walk_expr(scrutinee, out);
                for (_, b) in cases {
                    walk_block(b, out);
                }
                if let Some(b) = default {
                    walk_block(b, out);
                }
            }
            Stmt::Break | Stmt::Continue => {}
            Stmt::Block(b) => walk_block(b, out),
        }
    }
    for item in items {
        match item {
            OpItem::Behavior(b) => walk_block(b, out),
            OpItem::Activation(a) => walk_act(&a.items, out),
            OpItem::Expression(e) => walk_expr(e, out),
            OpItem::Switch(sw) => {
                for case in &sw.cases {
                    collect_mentions(&case.items, out);
                }
                if let Some(d) = &sw.default {
                    collect_mentions(d, out);
                }
            }
            OpItem::If(i) => {
                collect_mentions(&i.then_items, out);
                collect_mentions(&i.else_items, out);
            }
            _ => {}
        }
    }
}

/// Expands conditional structuring, forking the accumulated section sets
/// at each `SWITCH`/`IF`.
fn expand_items(
    items: &[OpItem],
    sets: &mut Vec<SectionSet>,
    ctx: &OpCtx<'_>,
) -> Result<(), ModelError> {
    for item in items {
        match item {
            OpItem::Declare(_) => {} // handled globally
            OpItem::Coding(sec) => {
                assign_section(sets, ctx.name, "CODING", |s| &mut s.coding, sec.clone())?;
            }
            OpItem::Syntax(sec) => {
                assign_section(sets, ctx.name, "SYNTAX", |s| &mut s.syntax, sec.clone())?;
            }
            OpItem::Behavior(b) => {
                assign_section(sets, ctx.name, "BEHAVIOR", |s| &mut s.behavior, b.clone())?;
            }
            OpItem::Expression(e) => {
                assign_section(sets, ctx.name, "EXPRESSION", |s| &mut s.expression, e.clone())?;
            }
            OpItem::Activation(a) => {
                assign_section(
                    sets,
                    ctx.name,
                    "ACTIVATION",
                    |s| &mut s.activation,
                    a.items.clone(),
                )?;
            }
            OpItem::Semantics(raw) => {
                assign_section(
                    sets,
                    ctx.name,
                    "SEMANTICS",
                    |s| &mut s.semantics,
                    raw.text.clone(),
                )?;
            }
            OpItem::Custom(..) => {} // user sections carry no model info
            OpItem::Switch(sw) => {
                let gidx = ctx.group_index(&sw.group.name).ok_or_else(|| {
                    ModelError::SwitchOnUnknownGroup {
                        group: sw.group.name.clone(),
                        operation: ctx.name.to_owned(),
                        span: sw.group.span,
                    }
                })?;
                let group = &ctx.groups[gidx];
                let mut new_sets = Vec::new();
                let mut covered: HashSet<OpId> = HashSet::new();
                for case in &sw.cases {
                    for member in &case.members {
                        let mid = resolve_member(member, group, ctx)?;
                        covered.insert(mid);
                        let mut forked = sets.clone();
                        for set in &mut forked {
                            set.guard.push((gidx, mid));
                        }
                        expand_items(&case.items, &mut forked, ctx)?;
                        new_sets.extend(forked);
                    }
                }
                // Members not covered by a CASE take the DEFAULT arm (or
                // just the base sections when there is no default).
                let uncovered: Vec<OpId> =
                    group.members.iter().copied().filter(|m| !covered.contains(m)).collect();
                for mid in uncovered {
                    let mut forked = sets.clone();
                    for set in &mut forked {
                        set.guard.push((gidx, mid));
                    }
                    if let Some(default_items) = &sw.default {
                        expand_items(default_items, &mut forked, ctx)?;
                    }
                    new_sets.extend(forked);
                }
                *sets = new_sets;
            }
            OpItem::If(ifitem) => {
                let gidx = ctx.group_index(&ifitem.group.name).ok_or_else(|| {
                    ModelError::SwitchOnUnknownGroup {
                        group: ifitem.group.name.clone(),
                        operation: ctx.name.to_owned(),
                        span: ifitem.group.span,
                    }
                })?;
                let group = &ctx.groups[gidx];
                let mid = resolve_member(&ifitem.member, group, ctx)?;
                let mut then_sets = sets.clone();
                for set in &mut then_sets {
                    set.guard.push((gidx, mid));
                }
                expand_items(&ifitem.then_items, &mut then_sets, ctx)?;

                let others: Vec<OpId> =
                    group.members.iter().copied().filter(|m| *m != mid).collect();
                let mut else_sets = Vec::new();
                for other in others {
                    let mut forked = sets.clone();
                    for set in &mut forked {
                        set.guard.push((gidx, other));
                    }
                    expand_items(&ifitem.else_items, &mut forked, ctx)?;
                    else_sets.extend(forked);
                }
                *sets = then_sets;
                sets.extend(else_sets);
            }
        }
    }
    Ok(())
}

fn resolve_member(member: &Ident, group: &Group, ctx: &OpCtx<'_>) -> Result<OpId, ModelError> {
    let mid = ctx.op_names.get(&member.name).copied().ok_or_else(|| ModelError::UnknownName {
        name: member.name.clone(),
        expected: "operation",
        span: member.span,
    })?;
    if !group.members.contains(&mid) {
        return Err(ModelError::CaseNotInGroup {
            member: member.name.clone(),
            group: group.name.clone(),
            span: member.span,
        });
    }
    Ok(mid)
}

fn assign_section<T: Clone>(
    sets: &mut [SectionSet],
    op: &str,
    section: &'static str,
    field: impl Fn(&mut SectionSet) -> &mut Option<T>,
    value: T,
) -> Result<(), ModelError> {
    for set in sets {
        let slot = field(set);
        if slot.is_some() {
            return Err(ModelError::DuplicateSection { section, operation: op.to_owned() });
        }
        *slot = Some(value.clone());
    }
    Ok(())
}

fn resolve_syntax(
    sec: &SyntaxSection,
    ctx: &OpCtx<'_>,
    labels: &[String],
) -> Result<Vec<SynElem>, ModelError> {
    sec.elements
        .iter()
        .map(|elem| match elem {
            SyntaxElement::Literal(text, _) => Ok(SynElem::Literal(text.clone())),
            SyntaxElement::Ref(name) => {
                if let Some(g) = ctx.group_index(&name.name) {
                    Ok(SynElem::Group { group: g, format: None })
                } else if let Some(op) = ctx.op_names.get(&name.name) {
                    Ok(SynElem::Op { op: *op, format: None })
                } else if let Some(l) = labels.iter().position(|l| *l == name.name) {
                    // Bare label reference renders unsigned.
                    Ok(SynElem::Label { label: l, format: NumFormat::Unsigned })
                } else {
                    Err(ModelError::UnknownName {
                        name: name.name.clone(),
                        expected: "syntax operand",
                        span: name.span,
                    })
                }
            }
            SyntaxElement::Num { name, format } => {
                if let Some(l) = labels.iter().position(|l| *l == name.name) {
                    Ok(SynElem::Label { label: l, format: *format })
                } else if let Some(g) = ctx.group_index(&name.name) {
                    Ok(SynElem::Group { group: g, format: Some(*format) })
                } else if let Some(op) = ctx.op_names.get(&name.name) {
                    Ok(SynElem::Op { op: *op, format: Some(*format) })
                } else {
                    Err(ModelError::UnknownName {
                        name: name.name.clone(),
                        expected: "label or operand",
                        span: name.span,
                    })
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Coding resolution
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Visit {
    Unvisited,
    InProgress,
    Done,
}

/// Resolves every operation's coding: widths (with recursion detection),
/// field offsets, flattened patterns and decode roots.
fn resolve_codings(
    operations: &mut [Operation],
    resource_names: &HashMap<String, ResourceId>,
    raw: &[Vec<Option<CodingSection>>],
) -> Result<(), ModelError> {
    // Pass 1: coding widths via DFS with cycle detection.
    let mut widths: Vec<Option<u32>> = vec![None; operations.len()];
    let mut state = vec![Visit::Unvisited; operations.len()];
    for idx in 0..operations.len() {
        compute_width(idx, operations, raw, &mut widths, &mut state)?;
    }

    // Pass 2: flattened patterns (widths now known, graph acyclic).
    let mut flats: Vec<Option<BitPattern>> = vec![None; operations.len()];
    for idx in 0..operations.len() {
        compute_flat(idx, operations, raw, &widths, &mut flats)?;
    }

    // Pass 3: positioned Coding values and decode roots.
    for idx in 0..operations.len() {
        let op_name = operations[idx].name.clone();
        for (vidx, section) in raw[idx].iter().enumerate() {
            let Some(section) = section else { continue };
            let root = match &section.root {
                None => None,
                Some(res) => Some(*resource_names.get(&res.name).ok_or_else(|| {
                    ModelError::UnknownRootResource {
                        resource: res.name.clone(),
                        operation: op_name.clone(),
                        span: res.span,
                    }
                })?),
            };
            let (fields, width, flat) =
                layout_fields(&operations[idx], section, operations, &widths, &flats)?;
            let coding = Coding::new(root, fields, width, flat);
            if root.is_some() {
                operations[idx].decode_root = root;
            }
            operations[idx].variants[vidx].coding = Some(coding);
        }
        // Variant width consistency (compute_width also checks, but that
        // only sees variants with codings; re-verify the built ones).
        let ws: Vec<u32> = operations[idx]
            .variants
            .iter()
            .filter_map(|v| v.coding.as_ref().map(Coding::width))
            .collect();
        if ws.windows(2).any(|w| w[0] != w[1]) {
            return Err(ModelError::VariantWidthMismatch { operation: op_name, widths: ws });
        }
    }
    Ok(())
}

fn compute_width(
    idx: usize,
    operations: &[Operation],
    raw: &[Vec<Option<CodingSection>>],
    widths: &mut Vec<Option<u32>>,
    state: &mut Vec<Visit>,
) -> Result<(), ModelError> {
    match state[idx] {
        Visit::Done => return Ok(()),
        Visit::InProgress => {
            return Err(ModelError::CodingCycle { operation: operations[idx].name.clone() });
        }
        Visit::Unvisited => {}
    }
    state[idx] = Visit::InProgress;
    let op = &operations[idx];
    let mut result: Option<u32> = None;
    for section in raw[idx].iter().flatten() {
        let mut total: u32 = 0;
        for elem in &section.elements {
            let w = match elem {
                CodingElement::Pattern(p, _) => p.width(),
                CodingElement::LabelField { pattern, .. } => pattern.width(),
                CodingElement::Ref(name) => {
                    if let Some(gidx) = op.group_index(&name.name) {
                        group_width(idx, gidx, operations, raw, widths, state)?
                    } else {
                        let target = find_op_by_name(operations, &name.name).ok_or_else(|| {
                            ModelError::UnknownName {
                                name: name.name.clone(),
                                expected: "operation or group in coding",
                                span: name.span,
                            }
                        })?;
                        compute_width(target.0, operations, raw, widths, state)?;
                        widths[target.0].ok_or_else(|| ModelError::MissingCoding {
                            operation: name.name.clone(),
                            referenced_from: op.name.clone(),
                        })?
                    }
                }
            };
            total = total.saturating_add(w);
        }
        if total > lisa_bits::MAX_WIDTH {
            return Err(ModelError::CodingTooWide { operation: op.name.clone(), width: total });
        }
        match result {
            None => result = Some(total),
            Some(prev) if prev != total => {
                return Err(ModelError::VariantWidthMismatch {
                    operation: op.name.clone(),
                    widths: vec![prev, total],
                });
            }
            Some(_) => {}
        }
    }
    widths[idx] = result;
    state[idx] = Visit::Done;
    Ok(())
}

fn group_width(
    op_idx: usize,
    gidx: usize,
    operations: &[Operation],
    raw: &[Vec<Option<CodingSection>>],
    widths: &mut Vec<Option<u32>>,
    state: &mut Vec<Visit>,
) -> Result<u32, ModelError> {
    let op = &operations[op_idx];
    let group = &op.groups[gidx];
    let mut seen: Vec<u32> = Vec::new();
    for member in &group.members {
        compute_width(member.0, operations, raw, widths, state)?;
        let w = widths[member.0].ok_or_else(|| ModelError::MissingCoding {
            operation: operations[member.0].name.clone(),
            referenced_from: op.name.clone(),
        })?;
        if !seen.contains(&w) {
            seen.push(w);
        }
    }
    if seen.len() != 1 {
        return Err(ModelError::GroupWidthMismatch {
            group: group.name.clone(),
            operation: op.name.clone(),
            widths: seen,
        });
    }
    Ok(seen[0])
}

fn find_op_by_name(operations: &[Operation], name: &str) -> Option<OpId> {
    operations.iter().find(|o| o.name == name).map(|o| o.id)
}

fn compute_flat(
    idx: usize,
    operations: &[Operation],
    raw: &[Vec<Option<CodingSection>>],
    widths: &[Option<u32>],
    flats: &mut Vec<Option<BitPattern>>,
) -> Result<(), ModelError> {
    if flats[idx].is_some() || widths[idx].is_none() {
        return Ok(());
    }
    let op = &operations[idx];
    let mut variant_flats: Vec<BitPattern> = Vec::new();
    for section in raw[idx].iter().flatten() {
        let mut flat: Option<BitPattern> = None;
        for elem in &section.elements {
            let piece = match elem {
                CodingElement::Pattern(p, _) => p.clone(),
                CodingElement::LabelField { pattern, .. } => pattern.clone(),
                CodingElement::Ref(name) => {
                    if let Some(gidx) = op.group_index(&name.name) {
                        let group = &op.groups[gidx];
                        let mut merged: Option<BitPattern> = None;
                        for member in &group.members {
                            compute_flat(member.0, operations, raw, widths, flats)?;
                            let mflat = flats[member.0].clone().ok_or_else(|| {
                                ModelError::MissingCoding {
                                    operation: operations[member.0].name.clone(),
                                    referenced_from: op.name.clone(),
                                }
                            })?;
                            merged = Some(match merged {
                                None => mflat,
                                Some(prev) => intersect_fixed(&prev, &mflat),
                            });
                        }
                        merged.expect("groups are non-empty")
                    } else {
                        let target = find_op_by_name(operations, &name.name).expect("validated");
                        compute_flat(target.0, operations, raw, widths, flats)?;
                        flats[target.0].clone().ok_or_else(|| ModelError::MissingCoding {
                            operation: name.name.clone(),
                            referenced_from: op.name.clone(),
                        })?
                    }
                }
            };
            flat = Some(match flat {
                None => piece,
                Some(prev) => prev.concat(&piece).map_err(|_| ModelError::CodingTooWide {
                    operation: op.name.clone(),
                    width: u32::MAX,
                })?,
            });
        }
        if let Some(flat) = flat {
            variant_flats.push(flat);
        }
    }
    flats[idx] = match variant_flats.len() {
        0 => None,
        _ => {
            let mut merged = variant_flats[0].clone();
            for other in &variant_flats[1..] {
                merged = intersect_fixed(&merged, other);
            }
            Some(merged)
        }
    };
    Ok(())
}

/// A pattern whose fixed bits are exactly those fixed *and equal* in both
/// inputs (the sound merge for alternatives).
fn intersect_fixed(a: &BitPattern, b: &BitPattern) -> BitPattern {
    debug_assert_eq!(a.width(), b.width());
    let both = a.fixed_mask() & b.fixed_mask() & !(a.fixed_value() ^ b.fixed_value());
    pattern_from_mask_value(a.width(), both, a.fixed_value() & both)
}

fn pattern_from_mask_value(width: u32, mask: u128, value: u128) -> BitPattern {
    use lisa_bits::Tern;
    let terns: Vec<Tern> = (0..width)
        .rev()
        .map(|i| {
            if mask >> i & 1 == 0 {
                Tern::DontCare
            } else if value >> i & 1 == 1 {
                Tern::One
            } else {
                Tern::Zero
            }
        })
        .collect();
    BitPattern::from_terns(&terns).expect("width validated")
}

fn layout_fields(
    op: &Operation,
    section: &CodingSection,
    operations: &[Operation],
    widths: &[Option<u32>],
    flats: &[Option<BitPattern>],
) -> Result<(Vec<CodingField>, u32, BitPattern), ModelError> {
    // First collect (target, width, flat piece), then assign offsets from
    // the right.
    let mut entries: Vec<(CodingTarget, u32, BitPattern)> = Vec::new();
    for elem in &section.elements {
        match elem {
            CodingElement::Pattern(p, _) => {
                entries.push((CodingTarget::Pattern(p.clone()), p.width(), p.clone()));
            }
            CodingElement::LabelField { label, pattern } => {
                let lidx = op.label_index(&label.name).ok_or_else(|| ModelError::UnknownLabel {
                    label: label.name.clone(),
                    operation: op.name.clone(),
                    span: label.span,
                })?;
                entries.push((
                    CodingTarget::Label { label: lidx, pattern: pattern.clone() },
                    pattern.width(),
                    pattern.clone(),
                ));
            }
            CodingElement::Ref(name) => {
                if let Some(gidx) = op.group_index(&name.name) {
                    let group = &op.groups[gidx];
                    let w = widths[group.members[0].0].expect("validated");
                    let mut merged = flats[group.members[0].0].clone().expect("validated");
                    for member in &group.members[1..] {
                        merged =
                            intersect_fixed(&merged, flats[member.0].as_ref().expect("validated"));
                    }
                    entries.push((CodingTarget::Group(gidx), w, merged));
                } else {
                    let target = find_op_by_name(operations, &name.name).ok_or_else(|| {
                        ModelError::UnknownName {
                            name: name.name.clone(),
                            expected: "operation or group in coding",
                            span: name.span,
                        }
                    })?;
                    let w = widths[target.0].ok_or_else(|| ModelError::MissingCoding {
                        operation: name.name.clone(),
                        referenced_from: op.name.clone(),
                    })?;
                    let flat = flats[target.0].clone().expect("validated");
                    entries.push((CodingTarget::Op(target), w, flat));
                }
            }
        }
    }
    let total: u32 = entries.iter().map(|(_, w, _)| *w).sum();
    if total == 0 || total > lisa_bits::MAX_WIDTH {
        return Err(ModelError::CodingTooWide { operation: op.name.clone(), width: total });
    }
    let mut fields = Vec::with_capacity(entries.len());
    let mut offset = total;
    let mut flat: Option<BitPattern> = None;
    for (target, width, piece) in entries {
        offset -= width;
        flat = Some(match flat {
            None => piece,
            Some(prev) => prev.concat(&piece).expect("total validated"),
        });
        fields.push(CodingField { target, width, offset });
    }
    Ok((fields, total, flat.expect("non-empty coding")))
}

//! Model complexity statistics — the numbers the paper reports for its
//! TMS320C6201 case study (§4): resources, operations, instructions,
//! aliases and LISA lines of code.

use std::fmt;

use super::{Model, SynElem};

/// Complexity statistics of a model, comparable to the paper's §4 figures
/// ("54 resources and 256 operations comprising the full set of 156 real
/// instructions and 8 instruction aliases which adds up to 5362 lines of
/// LISA code at an average of approximately 21 lines of code per
/// operation").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelStats {
    /// Declared storage/pipeline resources (pipelines count as resources,
    /// as in the paper's resource section).
    pub resources: usize,
    /// Operation definitions.
    pub operations: usize,
    /// Real instructions: non-alias operations carrying both a mnemonic
    /// syntax (first element is a literal) and a coding.
    pub instructions: usize,
    /// Instruction aliases (operations declared `ALIAS`).
    pub aliases: usize,
    /// Non-empty LISA source lines (0 when the model was built from an
    /// AST without source).
    pub lisa_lines: usize,
    /// Specialised operation variants produced by `SWITCH`/`IF`
    /// structuring.
    pub variants: usize,
    /// Pipelines declared.
    pub pipelines: usize,
    /// Total pipeline stages.
    pub pipeline_stages: usize,
}

impl ModelStats {
    /// Computes statistics for a model.
    #[must_use]
    pub fn of(model: &Model) -> ModelStats {
        let mut stats = ModelStats {
            resources: model.resources().len() + model.pipelines().len(),
            operations: model.operations().len(),
            pipelines: model.pipelines().len(),
            pipeline_stages: model.pipelines().iter().map(|p| p.stages.len()).sum(),
            lisa_lines: model.source_lines(),
            ..ModelStats::default()
        };
        for op in model.operations() {
            stats.variants += op.variants.len();
        }
        let (instructions, aliases) = count_instructions(model);
        stats.instructions = instructions;
        stats.aliases = aliases;
        stats
    }

    /// Average non-empty LISA lines per operation, the paper's "~21 lines
    /// of code per operation" metric. Zero when line info is missing.
    #[must_use]
    pub fn lines_per_operation(&self) -> f64 {
        if self.operations == 0 || self.lisa_lines == 0 {
            0.0
        } else {
            self.lisa_lines as f64 / self.operations as f64
        }
    }
}

/// Counts instructions and aliases the way the paper does for the C6201
/// model: walk the instruction groups reachable from the decode roots; a
/// member with a mnemonic (leading syntax literal) is an instruction (or
/// an alias when declared `ALIAS`), a member without one is a further
/// dispatch level whose own coding groups are walked recursively.
///
/// Models without decode roots fall back to the mnemonic heuristic over
/// all operations.
fn count_instructions(model: &Model) -> (usize, usize) {
    use super::CodingTarget;
    use std::collections::HashSet;

    fn has_mnemonic(model: &Model, op: super::OpId) -> bool {
        // The mnemonic is the first non-empty literal; elements before it
        // (e.g. an optional predicate group) are skipped.
        model.operation(op).variants.iter().any(|v| {
            v.syntax.as_ref().is_some_and(|s| {
                s.iter()
                    .find_map(|e| match e {
                        SynElem::Literal(text) if !text.trim().is_empty() => Some(true),
                        SynElem::Literal(_) => None,
                        _ => None,
                    })
                    .unwrap_or(false)
            })
        })
    }

    let mut instructions = 0;
    let mut aliases = 0;
    if model.decode_roots().is_empty() {
        for op in model.operations() {
            let has_coding = op.variants.iter().any(|v| v.coding.is_some());
            if !has_coding || !has_mnemonic(model, op.id) {
                continue;
            }
            if op.alias {
                aliases += 1;
            } else {
                instructions += 1;
            }
        }
        return (instructions, aliases);
    }

    let mut visited: HashSet<super::OpId> = HashSet::new();
    let mut stack: Vec<super::OpId> = model.decode_roots().to_vec();
    // Roots themselves are dispatch levels; expand their group members.
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let op = model.operation(id);
        let is_dispatch =
            id == *model.decode_roots().first().unwrap_or(&id) && op.decode_root.is_some();
        if !is_dispatch && has_mnemonic(model, id) {
            if op.alias {
                aliases += 1;
            } else {
                instructions += 1;
            }
            continue;
        }
        // Dispatch level: expand group/op fields of its coding.
        for variant in &op.variants {
            let Some(coding) = &variant.coding else { continue };
            for field in &coding.fields {
                match &field.target {
                    CodingTarget::Group(g) => {
                        stack.extend(op.groups[*g].members.iter().copied());
                    }
                    CodingTarget::Op(o) => stack.push(*o),
                    _ => {}
                }
            }
        }
    }
    (instructions, aliases)
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resources:        {}", self.resources)?;
        writeln!(f, "operations:       {}", self.operations)?;
        writeln!(f, "instructions:     {}", self.instructions)?;
        writeln!(f, "aliases:          {}", self.aliases)?;
        writeln!(f, "variants:         {}", self.variants)?;
        writeln!(f, "pipelines:        {} ({} stages)", self.pipelines, self.pipeline_stages)?;
        writeln!(f, "LISA lines:       {}", self.lisa_lines)?;
        write!(f, "lines/operation:  {:.1}", self.lines_per_operation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_instructions_and_aliases() {
        let model = Model::from_source(
            r#"
            RESOURCE {
                PROGRAM_COUNTER int pc;
                CONTROL_REGISTER int ir;
                REGISTER int A[16];
                PIPELINE pipe = { FE; EX };
            }
            OPERATION register {
                DECLARE { LABEL index; }
                CODING { index:0bx[4] }
                SYNTAX { "A" index:#u }
                EXPRESSION { A[index] }
            }
            OPERATION add {
                DECLARE { GROUP Dest, Src = { register }; }
                CODING { 0b0001 Dest Src Src 0bx[16] }
                SYNTAX { "ADD" Dest "," Src }
                BEHAVIOR { Dest = Src + Src; }
            }
            OPERATION mv ALIAS {
                DECLARE { GROUP Dest, Src = { register }; }
                CODING { 0b0001 Dest Src 0b0000 0bx[16] }
                SYNTAX { "MV" Dest "," Src }
            }
            OPERATION decode {
                DECLARE { GROUP Instruction = { add || mv }; }
                CODING { ir == Instruction }
                SYNTAX { Instruction }
                BEHAVIOR { Instruction; }
            }
            "#,
        )
        .expect("model builds");
        let stats = ModelStats::of(&model);
        assert_eq!(stats.operations, 4);
        assert_eq!(stats.instructions, 1); // add (register has no mnemonic, decode has no literal head)
        assert_eq!(stats.aliases, 1); // mv
        assert_eq!(stats.pipelines, 1);
        assert_eq!(stats.pipeline_stages, 2);
        assert_eq!(stats.resources, 4); // 3 storage + 1 pipeline
        assert!(stats.lisa_lines > 20);
        assert!(stats.lines_per_operation() > 1.0);
        let display = stats.to_string();
        assert!(display.contains("instructions:     1"));
    }
}

//! Errors and warnings produced while building the model database.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// A fatal analysis error: the description cannot be turned into a
/// consistent model database.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two resources share a name.
    DuplicateResource {
        /// The name.
        name: String,
        /// Location of the second declaration.
        span: Span,
    },
    /// Two pipelines share a name, or a pipeline name collides with a
    /// resource.
    DuplicatePipeline {
        /// The name.
        name: String,
        /// Location of the second declaration.
        span: Span,
    },
    /// Two operations share a name.
    DuplicateOperation {
        /// The name.
        name: String,
        /// Location of the second definition.
        span: Span,
    },
    /// A pipeline stage list declares the same stage twice.
    DuplicateStage {
        /// The stage name.
        stage: String,
        /// Pipeline name.
        pipeline: String,
    },
    /// A name used in a coding/syntax/declare context is not defined.
    UnknownName {
        /// The unresolved name.
        name: String,
        /// What kind of thing was expected ("operation", "group member",
        /// "pipeline", …).
        expected: &'static str,
        /// Where the name was used.
        span: Span,
    },
    /// An operation's `IN pipe.stage` names an unknown pipeline or stage.
    UnknownStage {
        /// Pipeline name.
        pipeline: String,
        /// Stage name.
        stage: String,
        /// Location.
        span: Span,
    },
    /// A group has no members (or all members failed to resolve).
    EmptyGroup {
        /// The group name.
        group: String,
        /// Operation that declares it.
        operation: String,
    },
    /// A `SWITCH`/`IF` names a group not declared in the operation.
    SwitchOnUnknownGroup {
        /// The group name.
        group: String,
        /// Operation name.
        operation: String,
        /// Location.
        span: Span,
    },
    /// A `CASE` member is not a member of the switched group.
    CaseNotInGroup {
        /// The member name.
        member: String,
        /// The group name.
        group: String,
        /// Location.
        span: Span,
    },
    /// The same section appears twice in one variant of an operation.
    DuplicateSection {
        /// The section name.
        section: &'static str,
        /// The operation.
        operation: String,
    },
    /// The coding graph is cyclic (an operation's coding eventually
    /// references itself).
    CodingCycle {
        /// The operation on the cycle.
        operation: String,
    },
    /// Members of a group used in a coding have different coding widths.
    GroupWidthMismatch {
        /// The group name.
        group: String,
        /// The operation declaring the group.
        operation: String,
        /// The differing widths observed.
        widths: Vec<u32>,
    },
    /// Variants of one operation have different coding widths.
    VariantWidthMismatch {
        /// The operation.
        operation: String,
        /// The differing widths observed.
        widths: Vec<u32>,
    },
    /// A coding references an operation that has no `CODING` section.
    MissingCoding {
        /// The referenced operation.
        operation: String,
        /// The referencing operation.
        referenced_from: String,
    },
    /// A coding root compares against an unknown resource.
    UnknownRootResource {
        /// The resource name.
        resource: String,
        /// The operation.
        operation: String,
        /// Location.
        span: Span,
    },
    /// The combined coding is wider than the supported maximum.
    CodingTooWide {
        /// The operation.
        operation: String,
        /// The computed width.
        width: u32,
    },
    /// A label is used in a coding but not declared (or vice versa in a
    /// syntax numeric field).
    UnknownLabel {
        /// The label name.
        label: String,
        /// The operation.
        operation: String,
        /// Location.
        span: Span,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateResource { name, span } => {
                write!(f, "{span}: duplicate resource `{name}`")
            }
            ModelError::DuplicatePipeline { name, span } => {
                write!(f, "{span}: duplicate pipeline `{name}`")
            }
            ModelError::DuplicateOperation { name, span } => {
                write!(f, "{span}: duplicate operation `{name}`")
            }
            ModelError::DuplicateStage { stage, pipeline } => {
                write!(f, "duplicate stage `{stage}` in pipeline `{pipeline}`")
            }
            ModelError::UnknownName { name, expected, span } => {
                write!(f, "{span}: unknown {expected} `{name}`")
            }
            ModelError::UnknownStage { pipeline, stage, span } => {
                write!(f, "{span}: unknown pipeline stage `{pipeline}.{stage}`")
            }
            ModelError::EmptyGroup { group, operation } => {
                write!(f, "group `{group}` in operation `{operation}` has no members")
            }
            ModelError::SwitchOnUnknownGroup { group, operation, span } => {
                write!(
                    f,
                    "{span}: SWITCH/IF over `{group}` which is not a group of operation `{operation}`"
                )
            }
            ModelError::CaseNotInGroup { member, group, span } => {
                write!(f, "{span}: `{member}` is not a member of group `{group}`")
            }
            ModelError::DuplicateSection { section, operation } => {
                write!(f, "operation `{operation}` has more than one active {section} section")
            }
            ModelError::CodingCycle { operation } => {
                write!(f, "coding of operation `{operation}` is recursive")
            }
            ModelError::GroupWidthMismatch { group, operation, widths } => {
                write!(
                    f,
                    "members of group `{group}` in operation `{operation}` have different coding widths: {widths:?}"
                )
            }
            ModelError::VariantWidthMismatch { operation, widths } => {
                write!(
                    f,
                    "variants of operation `{operation}` have different coding widths: {widths:?}"
                )
            }
            ModelError::MissingCoding { operation, referenced_from } => {
                write!(
                    f,
                    "operation `{operation}` is used in the coding of `{referenced_from}` but has no CODING section"
                )
            }
            ModelError::UnknownRootResource { resource, operation, span } => {
                write!(
                    f,
                    "{span}: coding root of `{operation}` compares unknown resource `{resource}`"
                )
            }
            ModelError::CodingTooWide { operation, width } => {
                write!(
                    f,
                    "coding of operation `{operation}` is {width} bits, wider than the supported {}",
                    lisa_bits::MAX_WIDTH
                )
            }
            ModelError::UnknownLabel { label, operation, span } => {
                write!(f, "{span}: unknown label `{label}` in operation `{operation}`")
            }
        }
    }
}

impl Error for ModelError {}

/// A non-fatal analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelWarning {
    /// Two alternatives of a group have overlapping codings and neither
    /// is declared `ALIAS`; the decoder will prefer the one with more
    /// fixed bits, then declaration order.
    OverlappingCoding {
        /// The group.
        group: String,
        /// The operation declaring the group.
        operation: String,
        /// First overlapping member.
        first: String,
        /// Second overlapping member.
        second: String,
    },
    /// An operation is never referenced and is not a decode root or
    /// `main`.
    UnreachableOperation {
        /// The operation.
        operation: String,
    },
}

impl fmt::Display for ModelWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelWarning::OverlappingCoding { group, operation, first, second } => {
                write!(
                    f,
                    "codings of `{first}` and `{second}` overlap in group `{group}` of `{operation}`"
                )
            }
            ModelWarning::UnreachableOperation { operation } => {
                write!(f, "operation `{operation}` is unreachable")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_with_context() {
        let err = ModelError::CodingCycle { operation: "add".into() };
        assert_eq!(err.to_string(), "coding of operation `add` is recursive");
        let err = ModelError::GroupWidthMismatch {
            group: "Src".into(),
            operation: "add".into(),
            widths: vec![5, 6],
        };
        assert!(err.to_string().contains("[5, 6]"));
    }

    #[test]
    fn error_impls_error_trait() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<ModelError>();
    }
}

//! The LISA *model database*: the analysed, name-resolved form of a
//! description, "accessed by all other tools" (paper §4.1).
//!
//! [`Model::build`] performs:
//!
//! * resource and pipeline registration (memory + resource models);
//! * operation registration with `DECLARE` resolution (groups, labels,
//!   references);
//! * compile-time `SWITCH`/`IF` expansion into operation **variants**
//!   (paper §3.4 — "the selection … can already be determined at
//!   compile-time thus avoiding to check the bit at run-time");
//! * coding resolution: element widths, bit offsets, flattened match
//!   patterns, decode-root discovery, cycle and width validation;
//! * ambiguity analysis of group alternatives (aliases are expected to
//!   overlap; anything else is reported as a warning).

mod build;
mod coding;
mod error;
mod stats;

pub use coding::{Coding, CodingField, CodingTarget};
pub use error::{ModelError, ModelWarning};
pub use stats::ModelStats;

use std::collections::HashMap;

use crate::ast::{ActNode, Block, DataType, Dim, Expr, NumFormat, ResourceClass};

/// Index of a resource in [`Model::resources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Index of a pipeline in [`Model::pipelines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(pub usize);

/// Index of an operation in [`Model::operations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// A resolved storage object from the `RESOURCE` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Its id.
    pub id: ResourceId,
    /// Declared name.
    pub name: String,
    /// Classifying keyword.
    pub class: ResourceClass,
    /// Element type.
    pub ty: DataType,
    /// Dimensions (empty = scalar).
    pub dims: Vec<Dim>,
}

impl Resource {
    /// Total number of addressable elements (1 for scalars).
    #[must_use]
    pub fn element_count(&self) -> u64 {
        self.dims.iter().map(Dim::len).product()
    }

    /// Whether this is a memory-like (dimensioned) resource.
    #[must_use]
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A resolved pipeline with its ordered stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Its id.
    pub id: PipelineId,
    /// Declared name.
    pub name: String,
    /// Stage names, first stage first.
    pub stages: Vec<String>,
}

impl Pipeline {
    /// Index of a stage by name.
    #[must_use]
    pub fn stage_index(&self, name: &str) -> Option<usize> {
        self.stages.iter().position(|s| s == name)
    }

    /// Number of stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

/// A group instance local to an operation: a named list of alternative
/// operations (the or-rule mechanism).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// The instance name (`Dest`, `Src1`, …).
    pub name: String,
    /// The alternative operations.
    pub members: Vec<OpId>,
}

/// A resolved syntax element of an operation variant.
#[derive(Debug, Clone, PartialEq)]
pub enum SynElem {
    /// Literal text (mnemonic or punctuation).
    Literal(String),
    /// A sub-operand rendered by a group's selected member. A format
    /// (`imm:#s`) forces numeric rendering of the member's label value.
    Group {
        /// Index into the operation's group list.
        group: usize,
        /// Forced numeric format, if any.
        format: Option<NumFormat>,
    },
    /// A sub-operand rendered by a directly referenced operation.
    Op {
        /// The referenced operation.
        op: OpId,
        /// Forced numeric format, if any.
        format: Option<NumFormat>,
    },
    /// A numeric field bound to a label, with its display format.
    Label {
        /// Index into the operation's label list.
        label: usize,
        /// Display format.
        format: NumFormat,
    },
}

/// One specialisation of an operation: the sections that are active for a
/// particular selection of `SWITCH`/`IF` group members. Operations without
/// conditional structuring have exactly one variant with an empty guard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Variant {
    /// `(local group index, selected member)` constraints. Empty = always
    /// active.
    pub guard: Vec<(usize, OpId)>,
    /// Resolved coding (None if the operation has no `CODING`).
    pub coding: Option<Coding>,
    /// Resolved syntax elements.
    pub syntax: Option<Vec<SynElem>>,
    /// Behavior block.
    pub behavior: Option<Block>,
    /// Expression section.
    pub expression: Option<Expr>,
    /// Activation list.
    pub activation: Option<Vec<ActNode>>,
    /// Raw semantics text.
    pub semantics: Option<String>,
}

impl Variant {
    /// Whether this variant is selected given chosen members for the
    /// operation's groups (`choices[i]` = member chosen for group `i`).
    #[must_use]
    pub fn matches(&self, choices: &[Option<OpId>]) -> bool {
        self.guard.iter().all(|(g, m)| choices.get(*g).copied().flatten() == Some(*m))
    }
}

/// A resolved operation with its variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Its id.
    pub id: OpId,
    /// Declared name.
    pub name: String,
    /// Whether declared with the `ALIAS` option.
    pub alias: bool,
    /// Pipeline-stage assignment, `(pipeline, stage index)`.
    pub stage: Option<(PipelineId, usize)>,
    /// Local group instances (in declaration order).
    pub groups: Vec<Group>,
    /// Local label names (in declaration order).
    pub labels: Vec<String>,
    /// Declared operation references.
    pub references: Vec<OpId>,
    /// Specialisations; at least one.
    pub variants: Vec<Variant>,
    /// If this operation's coding has a root compare
    /// (`resource == group`), the compared resource.
    pub decode_root: Option<ResourceId>,
    /// User-defined sections (paper §3.2: "the designer may add further
    /// sections in order to describe other attributes, like e.g. power
    /// consumption"): `(section name, raw text)` pairs.
    pub customs: Vec<(String, String)>,
}

impl Operation {
    /// Finds a local group index by name.
    #[must_use]
    pub fn group_index(&self, name: &str) -> Option<usize> {
        self.groups.iter().position(|g| g.name == name)
    }

    /// Finds a label index by name.
    #[must_use]
    pub fn label_index(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// The variant matching the given group-member choices.
    ///
    /// Variants are ordered most-specific-guard first at build time, so
    /// the first match wins and an empty guard acts as the default.
    #[must_use]
    pub fn select_variant(&self, choices: &[Option<OpId>]) -> Option<&Variant> {
        self.variants.iter().find(|v| v.matches(choices))
    }

    /// The coding width of this operation (all variants agree; validated
    /// at build time). `None` if it has no coding.
    #[must_use]
    pub fn coding_width(&self) -> Option<u32> {
        self.variants.iter().find_map(|v| v.coding.as_ref()).map(Coding::width)
    }
}

/// The complete analysed model database.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    resources: Vec<Resource>,
    pipelines: Vec<Pipeline>,
    operations: Vec<Operation>,
    resource_names: HashMap<String, ResourceId>,
    op_names: HashMap<String, OpId>,
    decode_roots: Vec<OpId>,
    main_op: Option<OpId>,
    warnings: Vec<ModelWarning>,
    source_lines: usize,
}

impl Model {
    /// All resources.
    #[must_use]
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// All pipelines.
    #[must_use]
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }

    /// All operations.
    #[must_use]
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Looks up a resource by name.
    #[must_use]
    pub fn resource_by_name(&self, name: &str) -> Option<&Resource> {
        self.resource_names.get(name).map(|id| &self.resources[id.0])
    }

    /// Looks up an operation by name.
    #[must_use]
    pub fn operation_by_name(&self, name: &str) -> Option<&Operation> {
        self.op_names.get(name).map(|id| &self.operations[id.0])
    }

    /// A resource by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// A pipeline by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn pipeline(&self, id: PipelineId) -> &Pipeline {
        &self.pipelines[id.0]
    }

    /// An operation by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn operation(&self, id: OpId) -> &Operation {
        &self.operations[id.0]
    }

    /// Operations whose coding contains a root compare — the decoder entry
    /// points.
    #[must_use]
    pub fn decode_roots(&self) -> &[OpId] {
        &self.decode_roots
    }

    /// The `main` operation, activated once per control step by the
    /// simulator (paper Example 5).
    #[must_use]
    pub fn main_op(&self) -> Option<OpId> {
        self.main_op
    }

    /// Non-fatal findings from analysis (coding overlaps, unreachable
    /// operations…).
    #[must_use]
    pub fn warnings(&self) -> &[ModelWarning] {
        &self.warnings
    }

    /// Number of source lines the model was built from (for statistics).
    #[must_use]
    pub fn source_lines(&self) -> usize {
        self.source_lines
    }
}

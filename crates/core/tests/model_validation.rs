//! Analysis-layer validation: every class of model error must be caught
//! with a precise diagnostic, and the less-common language constructs
//! (IF/ELSE structuring, REFERENCE declarations, custom sections,
//! multiple groups per declaration) must resolve correctly.

use lisa_core::model::{ModelError, ModelWarning};
use lisa_core::{LisaError, Model};

fn build_err(source: &str) -> ModelError {
    match Model::from_source(source) {
        Err(LisaError::Model(e)) => e,
        Err(LisaError::Parse(e)) => panic!("expected model error, got parse error: {e}"),
        Ok(_) => panic!("expected model error, but the model built"),
    }
}

#[test]
fn duplicate_names_are_rejected() {
    assert!(matches!(
        build_err("RESOURCE { int a; int a; }"),
        ModelError::DuplicateResource { .. }
    ));
    assert!(matches!(
        build_err("RESOURCE { PIPELINE p = { A; B }; PIPELINE p = { C }; }"),
        ModelError::DuplicatePipeline { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { CODING { 0b1 } } OPERATION x { CODING { 0b0 } }"),
        ModelError::DuplicateOperation { .. }
    ));
    assert!(matches!(
        build_err("RESOURCE { PIPELINE p = { S; S }; }"),
        ModelError::DuplicateStage { .. }
    ));
}

#[test]
fn unknown_references_are_rejected() {
    assert!(matches!(
        build_err("OPERATION x { DECLARE { GROUP G = { nothing }; } CODING { G } }"),
        ModelError::UnknownName { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x IN nowhere.S1 { CODING { 0b1 } }"),
        ModelError::UnknownStage { .. }
    ));
    assert!(matches!(
        build_err(
            "RESOURCE { PIPELINE p = { A; B }; } OPERATION x IN p.MISSING { CODING { 0b1 } }"
        ),
        ModelError::UnknownStage { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { CODING { ir == 0b1 } }"),
        ModelError::UnknownRootResource { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { DECLARE { LABEL l; } SYNTAX { other:#u } }"),
        ModelError::UnknownName { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { CODING { 0b1 missing_op } }"),
        ModelError::UnknownName { .. }
    ));
}

#[test]
fn recursive_codings_are_rejected() {
    assert!(matches!(
        build_err("OPERATION x { CODING { 0b1 x } }"),
        ModelError::CodingCycle { .. }
    ));
    assert!(matches!(
        build_err("OPERATION a { CODING { 0b1 b } } OPERATION b { CODING { 0b0 a } }"),
        ModelError::CodingCycle { .. }
    ));
}

#[test]
fn width_inconsistencies_are_rejected() {
    // Group members with different coding widths.
    assert!(matches!(
        build_err(
            r#"
            OPERATION narrow { CODING { 0b01 } }
            OPERATION wide { CODING { 0b0111 } }
            OPERATION user {
                DECLARE { GROUP G = { narrow || wide }; }
                CODING { 0b1 G }
            }
            "#
        ),
        ModelError::GroupWidthMismatch { .. }
    ));
    // SWITCH variants with different coding widths.
    assert!(matches!(
        build_err(
            r#"
            OPERATION s1 { CODING { 0b0 } SYNTAX { "1" } }
            OPERATION s2 { CODING { 0b1 } SYNTAX { "2" } }
            OPERATION var {
                DECLARE { GROUP S = { s1 || s2 }; }
                SWITCH (S) {
                    CASE s1: { CODING { S 0b00 } }
                    CASE s2: { CODING { S 0b000 } }
                }
            }
            "#
        ),
        ModelError::VariantWidthMismatch { .. }
    ));
}

#[test]
fn structuring_errors_are_rejected() {
    assert!(matches!(
        build_err("OPERATION x { SWITCH (NoGroup) { CASE a: { } } }"),
        ModelError::SwitchOnUnknownGroup { .. }
    ));
    assert!(matches!(
        build_err(
            r#"
            OPERATION m { CODING { 0b1 } }
            OPERATION other { CODING { 0b0 } }
            OPERATION x {
                DECLARE { GROUP G = { m }; }
                SWITCH (G) { CASE other: { } }
            }
            "#
        ),
        ModelError::CaseNotInGroup { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { CODING { 0b1 } CODING { 0b0 } }"),
        ModelError::DuplicateSection { .. }
    ));
    // A section both outside and inside a SWITCH arm duplicates too.
    assert!(matches!(
        build_err(
            r#"
            OPERATION m { CODING { 0b1 } SYNTAX { "m" } }
            OPERATION x {
                DECLARE { GROUP G = { m }; }
                SYNTAX { "X" }
                SWITCH (G) { CASE m: { SYNTAX { "Y" } } }
            }
            "#
        ),
        ModelError::DuplicateSection { .. }
    ));
    assert!(matches!(
        build_err("OPERATION x { DECLARE { GROUP G = { x }; } CODING { 0bx label:0bx[4] } }"),
        ModelError::UnknownLabel { .. }
    ));
}

#[test]
fn if_else_structuring_builds_guarded_variants() {
    let model = Model::from_source(
        r#"
        OPERATION one { CODING { 0b0 } SYNTAX { "one" } }
        OPERATION two { CODING { 0b1 } SYNTAX { "two" } }
        OPERATION pick {
            DECLARE { GROUP Mode = { one || two }; }
            CODING { Mode 0bxx }
            IF (Mode == one) {
                SYNTAX { "FAST" }
            } ELSE {
                SYNTAX { "SLOW" }
            }
        }
        "#,
    )
    .expect("builds");
    let pick = model.operation_by_name("pick").expect("pick exists");
    assert_eq!(pick.variants.len(), 2, "one variant per IF branch outcome");
    assert!(pick.variants.iter().all(|v| v.guard.len() == 1));
    let one = model.operation_by_name("one").unwrap().id;
    let fast =
        pick.variants.iter().find(|v| v.guard[0].1 == one).expect("guarded variant for `one`");
    let syntax = fast.syntax.as_ref().expect("syntax");
    assert!(matches!(
        &syntax[0],
        lisa_core::model::SynElem::Literal(t) if t == "FAST"
    ));
}

#[test]
fn references_and_custom_sections_resolve() {
    let model = Model::from_source(
        r#"
        OPERATION helper { CODING { 0b11 } SYNTAX { "H" } BEHAVIOR { } }
        OPERATION user {
            DECLARE { REFERENCE helper; }
            CODING { 0b0 helper 0bx }
            SYNTAX { "U" helper }
            POWER { 1.5 mW typical }
            BEHAVIOR { helper; }
        }
        "#,
    )
    .expect("builds");
    let user = model.operation_by_name("user").unwrap();
    let helper = model.operation_by_name("helper").unwrap().id;
    assert_eq!(user.references, vec![helper]);
    assert_eq!(user.coding_width(), Some(4));
}

#[test]
fn overlapping_codings_warn_unless_aliased() {
    let overlapping = r#"
        RESOURCE { CONTROL_REGISTER int ir; }
        OPERATION a { CODING { 0b1x } SYNTAX { "a" } }
        OPERATION b { CODING { 0bx1 } SYNTAX { "b" } }
        OPERATION root {
            DECLARE { GROUP I = { a || b }; }
            CODING { ir == I }
            SYNTAX { I }
        }
    "#;
    let model = Model::from_source(overlapping).expect("builds with warning");
    assert!(
        model.warnings().iter().any(|w| matches!(w, ModelWarning::OverlappingCoding { .. })),
        "{:?}",
        model.warnings()
    );

    // Declaring one of them ALIAS silences the overlap warning.
    let aliased = overlapping.replace("OPERATION b", "OPERATION b ALIAS");
    let model = Model::from_source(&aliased).expect("builds");
    assert!(
        !model.warnings().iter().any(|w| matches!(w, ModelWarning::OverlappingCoding { .. })),
        "{:?}",
        model.warnings()
    );
}

#[test]
fn unreachable_operations_warn() {
    let model = Model::from_source(
        r#"
        OPERATION used { CODING { 0b1 } }
        OPERATION orphan { CODING { 0b0 } }
        OPERATION main { BEHAVIOR { used; } }
        "#,
    )
    .expect("builds");
    let unreachable: Vec<&str> = model
        .warnings()
        .iter()
        .filter_map(|w| match w {
            ModelWarning::UnreachableOperation { operation } => Some(operation.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(unreachable, vec!["orphan"]);
}

#[test]
fn bundled_vliw_model_has_no_unreachable_operations() {
    // Read from the models crate's file so this crate does not depend on
    // `lisa-models` (which depends on us).
    let source = include_str!("../../models/src/vliw62.lisa");
    let model = Model::from_source(source).expect("bundled model builds");
    let unreachable: Vec<_> = model
        .warnings()
        .iter()
        .filter(|w| matches!(w, ModelWarning::UnreachableOperation { .. }))
        .collect();
    assert!(unreachable.is_empty(), "{unreachable:?}");
}

//! Printer fidelity on the less-common constructs: numeric formats,
//! operation options, IF/ELSE structuring, do-while, and custom
//! sections — each must survive a print → re-parse → print fixpoint and
//! preserve the construct (not just parse).

use lisa_core::ast::{NumFormat, OpItem, SyntaxElement};
use lisa_core::{parser::parse, printer::print};

fn fixpoint(src: &str) -> String {
    let first = parse(src).expect("parses");
    let printed = print(&first);
    let second = parse(&printed).unwrap_or_else(|e| panic!("re-parse: {e}\n{printed}"));
    assert_eq!(print(&second), printed, "fixpoint");
    printed
}

#[test]
fn hex_format_and_bare_label_syntax() {
    let printed = fixpoint(
        r#"OPERATION t {
            DECLARE { LABEL addr; }
            CODING { addr:0bx[16] }
            SYNTAX { "AT" addr:#x }
        }"#,
    );
    assert!(printed.contains("addr:#x"), "{printed}");

    let desc = parse(&printed).unwrap();
    let OpItem::Syntax(s) = &desc.operations[0].items[2] else { panic!() };
    assert!(matches!(&s.elements[1], SyntaxElement::Num { format: NumFormat::Hex, .. }));
}

#[test]
fn alias_and_stage_options_survive() {
    let printed = fixpoint(
        r#"RESOURCE { PIPELINE p = { A; B }; }
        OPERATION mv ALIAS IN p.B { CODING { 0b1 } SYNTAX { "MV" } }"#,
    );
    assert!(printed.contains("OPERATION mv ALIAS IN p.B"), "{printed}");
}

#[test]
fn if_else_structuring_survives() {
    let printed = fixpoint(
        r#"OPERATION m1 { CODING { 0b0 } SYNTAX { "m1" } }
        OPERATION m2 { CODING { 0b1 } SYNTAX { "m2" } }
        OPERATION pick {
            DECLARE { GROUP G = { m1 || m2 }; }
            CODING { G 0bx }
            IF (G == m1) { SYNTAX { "FAST" } } ELSE { SYNTAX { "SLOW" } }
        }"#,
    );
    assert!(printed.contains("IF (G == m1)"), "{printed}");
    assert!(printed.contains("ELSE"), "{printed}");
}

#[test]
fn do_while_and_switch_statements_survive() {
    let printed = fixpoint(
        r#"OPERATION t {
            BEHAVIOR {
                int i = 0;
                do { i++; } while (i < 3);
                switch (i) {
                    case 3: { i = 30; }
                    case -1: { i = 10; }
                    default: { i = 0; }
                }
            }
        }"#,
    );
    assert!(printed.contains("} while ("), "{printed}");
    assert!(printed.contains("case -1:"), "{printed}");
    assert!(printed.contains("default:"), "{printed}");
}

#[test]
fn custom_sections_survive() {
    let printed = fixpoint(
        r#"OPERATION t {
            CODING { 0b1 }
            SYNTAX { "T" }
            POWER { 2.5 mW }
            AREA { 120 gates }
        }"#,
    );
    assert!(printed.contains("POWER { 2.5 mW }"), "{printed}");
    assert!(printed.contains("AREA { 120 gates }"), "{printed}");
}

#[test]
fn activation_delays_survive() {
    // `a` at delay 0, `b` at delay 2, `c` at delay 3.
    let printed = fixpoint(
        r#"OPERATION x { ACTIVATION { a ;; b ; c } }
        OPERATION a { BEHAVIOR { } }
        OPERATION b { BEHAVIOR { } }
        OPERATION c { BEHAVIOR { } }"#,
    );
    let desc = parse(&printed).unwrap();
    let OpItem::Activation(act) = &desc.operations[0].items[0] else { panic!() };
    let delays: Vec<u32> = act
        .items
        .iter()
        .map(|n| match n {
            lisa_core::ast::ActNode::Activate { delay, .. } => *delay,
            _ => panic!("expected plain activations"),
        })
        .collect();
    assert_eq!(delays, vec![0, 2, 3], "delays preserved through printing");
}

#[test]
fn banked_dims_and_ranges_survive() {
    let printed = fixpoint(
        r#"RESOURCE {
            DATA_MEMORY short banked[4]([0x20]);
            PROGRAM_MEMORY int ranged[0x10..0x1f];
            unsigned short us;
            unsigned long ul;
        }"#,
    );
    let desc = parse(&printed).unwrap();
    assert_eq!(desc.resources[0].dims.len(), 2);
    assert_eq!(desc.resources[1].dims[0].base(), 0x10);
    assert!(!desc.resources[2].ty.is_signed());
}

//! Robustness properties of the LISA front-end: the lexer, parser and
//! model builder must be total (return errors, never panic) on arbitrary
//! and on mutated-valid input.

use lisa_core::{lexer::lex, parser::parse, Model};
use proptest::prelude::*;

/// A corpus of valid fragments to splice into mutation tests.
const VALID: &str = r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER bit[48] accu;
    DATA_MEMORY int mem[0x100];
    PROGRAM_MEMORY int pmem[0x10..0xff];
    PIPELINE pipe = { FE; DC; EX };
}
OPERATION reg {
    DECLARE { LABEL index; }
    CODING { index:0bx[4] }
    SYNTAX { "R" index:#u }
    EXPRESSION { mem[index] }
}
OPERATION add IN pipe.EX {
    DECLARE { GROUP Dest, Src = { reg }; }
    CODING { 0b0001 Dest Src Src 0bx[16] }
    SYNTAX { "ADD" Dest "," Src }
    SEMANTICS { ADD(Dest, Src) }
    BEHAVIOR { Dest = Src + Src; pc = pc + 1; }
    ACTIVATION { if (pc > 0) { reg } pipe.shift() }
}
OPERATION decode {
    DECLARE { GROUP Instruction = { add }; }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexer_is_total(input in "\\PC{0,200}") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_is_total(input in "[ -~\\n]{0,300}") {
        let _ = parse(&input);
    }

    #[test]
    fn model_builder_is_total(input in "[ -~\\n]{0,300}") {
        let _ = Model::from_source(&input);
    }

    /// Random single-byte corruptions of a valid source never panic the
    /// pipeline (they may, of course, error).
    #[test]
    fn mutated_valid_source_never_panics(
        pos in 0usize..VALID.len(),
        replacement in any::<u8>(),
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes[pos] = replacement;
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Model::from_source(&text);
        }
    }

    /// Random truncations of a valid source never panic.
    #[test]
    fn truncated_valid_source_never_panics(len in 0usize..VALID.len()) {
        if VALID.is_char_boundary(len) {
            let _ = Model::from_source(&VALID[..len]);
        }
    }

    /// Deleting a random line never panics (common editing mistake).
    #[test]
    fn line_deleted_source_never_panics(line in 0usize..40) {
        let text: String = VALID
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != line)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = Model::from_source(&text);
    }

    /// The printer round-trips the valid corpus after whitespace
    /// perturbation (extra spaces/newlines between tokens are semantically
    /// irrelevant).
    #[test]
    fn whitespace_insensitivity(seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 60
        };
        // Insert random extra whitespace after semicolons and braces.
        let mut mutated = String::new();
        for ch in VALID.chars() {
            mutated.push(ch);
            if matches!(ch, ';' | '{' | '}') {
                for _ in 0..next() % 3 {
                    mutated.push(if next() % 2 == 0 { ' ' } else { '\n' });
                }
            }
        }
        let original = parse(VALID).expect("corpus parses");
        let perturbed = parse(&mutated).expect("perturbed corpus parses");
        prop_assert_eq!(
            lisa_core::printer::print(&original),
            lisa_core::printer::print(&perturbed)
        );
    }
}

/// The full valid corpus builds into a model (sanity anchor for the
/// mutation tests).
#[test]
fn corpus_is_valid() {
    let model = Model::from_source(VALID).expect("corpus builds");
    assert_eq!(model.pipelines().len(), 1);
    assert!(model.operation_by_name("add").is_some());
}

//! Model-driven program synthesis.
//!
//! The generator walks a model's decode-root coding tree — the same
//! structure `lisa-isa` builds decoders from — and fills each field:
//! fixed pattern bits are copied, operand (label) bits are drawn from the
//! random stream, group fields recursively select and encode an
//! alternative. Every emitted word is validated against the real
//! [`Decoder`], so synthesized programs are legal by construction rather
//! than by a hand-maintained instruction table.
//!
//! Termination is guaranteed structurally: the program image fills the
//! *entire* program memory, with the synthesized instruction sequence as
//! a prefix and the model's canonical halt word everywhere else. A
//! branch to any address inside the memory therefore lands on a halt
//! instruction; backwards loops that never escape are cut off by the
//! harness cycle budget instead. The halt word itself is discovered from
//! the model: the generator scans every instruction's behavior tree for
//! an assignment to the workbench's halt flag and proves the candidate
//! empirically by running it in a one-packet program.

use lisa_core::ast::{Block, Expr, Stmt};
use lisa_core::model::{CodingTarget, Model, OpId};
use lisa_isa::Decoder;
use lisa_models::Workbench;
use lisa_sim::SimMode;

use crate::coverage::{path_key, CoverageMap, JUNK_PATH};
use crate::rng::Rng;

/// Upper bound on the synthesized program image, in words. Memories
/// larger than this keep their tail at zero; a branch past the fill
/// fails to decode identically in both backends, which the oracles
/// treat as agreement.
const MAX_IMAGE_WORDS: usize = 2048;

/// Recursion limit while expanding coding trees (guards against
/// pathological self-referential groups).
const MAX_ENCODE_DEPTH: u32 = 24;

/// How often a raw, unvalidated word is emitted instead of a legal
/// instruction (1 in `JUNK_DENOMINATOR`). Junk words exercise the
/// "both backends reject identically" path: pre-decode skips them and
/// the live decode raises the same diagnostic in either mode.
const JUNK_DENOMINATOR: u64 = 24;

/// A generator construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The model has no decoder (no decode root) or the workbench could
    /// not be queried.
    Workbench(String),
    /// The decode root's coding references no instruction alternatives.
    NoInstructions,
    /// No instruction that demonstrably sets the halt flag was found.
    NoHaltWord {
        /// The halt flag that was searched for.
        halt_flag: String,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Workbench(msg) => write!(f, "workbench error: {msg}"),
            GenError::NoInstructions => {
                write!(f, "decode root has no instruction alternatives to synthesize from")
            }
            GenError::NoHaltWord { halt_flag } => {
                write!(f, "no instruction provably sets halt flag `{halt_flag}`")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// A seeded, deterministic program generator for one workbench.
pub struct ProgramGen<'w> {
    wb: &'w Workbench,
    decoder: Decoder<'w>,
    instructions: Vec<OpId>,
    halt_word: u128,
    image_words: usize,
}

impl<'w> ProgramGen<'w> {
    /// Builds a generator for the workbench's model.
    ///
    /// # Errors
    ///
    /// [`GenError`] when the model has no decoder, no instructions, or
    /// no discoverable halt instruction.
    pub fn new(wb: &'w Workbench) -> Result<ProgramGen<'w>, GenError> {
        let model = wb.model();
        let decoder = Decoder::new(model).map_err(|e| GenError::Workbench(e.to_string()))?;
        let instructions = instruction_ops(model, decoder.root());
        if instructions.is_empty() {
            return Err(GenError::NoInstructions);
        }
        let mem = model
            .resource_by_name(wb.program_memory())
            .ok_or_else(|| GenError::Workbench(format!("no resource `{}`", wb.program_memory())))?;
        let image_words =
            usize::try_from(mem.element_count()).unwrap_or(MAX_IMAGE_WORDS).min(MAX_IMAGE_WORDS);

        let mut gen = ProgramGen { wb, decoder, instructions, halt_word: 0, image_words };
        gen.halt_word = gen.find_halt_word()?;
        Ok(gen)
    }

    /// The instruction word width in bits.
    #[must_use]
    pub fn word_width(&self) -> u32 {
        self.decoder.word_width()
    }

    /// The canonical halting word the generator pads images with.
    #[must_use]
    pub fn halt_word(&self) -> u128 {
        self.halt_word
    }

    /// The instruction alternatives the generator draws from.
    #[must_use]
    pub fn instructions(&self) -> &[OpId] {
        &self.instructions
    }

    /// Number of words in a full program image.
    #[must_use]
    pub fn image_words(&self) -> usize {
        self.image_words
    }

    /// Synthesizes a program prefix of `1..=max_len` words from the
    /// random stream. The prefix is the shrinkable test case; wrap it
    /// with [`ProgramGen::image`] before loading it into a simulator.
    pub fn gen_program(&self, rng: &mut Rng, max_len: usize) -> Vec<u128> {
        let budget = self.image_words.saturating_sub(1).max(1);
        let len = 1 + rng.below(max_len.clamp(1, budget));
        (0..len).map(|_| self.gen_word(rng)).collect()
    }

    /// One synthesized word: a validated legal instruction, or (rarely)
    /// a raw junk word to exercise the shared decode-failure path.
    pub fn gen_word(&self, rng: &mut Rng) -> u128 {
        if rng.chance(1, JUNK_DENOMINATOR) {
            return rng.bits(self.word_width());
        }
        for _ in 0..8 {
            let op = self.instructions[rng.below(self.instructions.len())];
            if let Some(word) = self.encode(op, Some(rng), 0) {
                if self.decoder.decode(word).is_ok() {
                    return word;
                }
            }
        }
        self.halt_word
    }

    /// The coding-tree path of one word: the structural shape of its
    /// decode, or [`JUNK_PATH`] when the word does not decode. Computed
    /// from the word alone (not from generator choices), so coverage is
    /// identical whether a program is generated, replayed, or
    /// regenerated on another machine.
    #[must_use]
    pub fn path_of(&self, word: u128) -> u64 {
        match self.decoder.decode(word) {
            Ok(decoded) => path_key(&decoded),
            Err(_) => JUNK_PATH,
        }
    }

    /// Coverage reached by a program prefix: one path record per word.
    #[must_use]
    pub fn coverage_of(&self, words: &[u128]) -> CoverageMap {
        let mut map = CoverageMap::new();
        for &word in words {
            map.record(self.path_of(word));
        }
        map
    }

    /// Expands a program prefix into a full memory image padded with the
    /// halt word, so every reachable address terminates the run.
    #[must_use]
    pub fn image(&self, prefix: &[u128]) -> Vec<u128> {
        let mut image = prefix.to_vec();
        image.truncate(self.image_words);
        image.resize(self.image_words, self.halt_word);
        image
    }

    /// Encodes one operation. `rng` draws free bits and group choices;
    /// `None` selects the canonical zero-filled / first-member encoding
    /// used for the halt word.
    fn encode(&self, op_id: OpId, mut rng: Option<&mut Rng>, depth: u32) -> Option<u128> {
        if depth > MAX_ENCODE_DEPTH {
            return None;
        }
        let model = self.wb.model();
        let op = model.operation(op_id);
        let with_coding: Vec<usize> =
            (0..op.variants.len()).filter(|&i| op.variants[i].coding.is_some()).collect();
        let variant_idx = match rng.as_deref_mut() {
            Some(r) if with_coding.len() > 1 => with_coding[r.below(with_coding.len())],
            _ => *with_coding.first()?,
        };
        let variant = &op.variants[variant_idx];
        let coding = variant.coding.as_ref()?;

        let mut word = 0u128;
        for field in &coding.fields {
            let bits = match &field.target {
                CodingTarget::Pattern(p) | CodingTarget::Label { pattern: p, .. } => {
                    let free = match rng.as_deref_mut() {
                        Some(r) => {
                            // Bias operand values small so branch targets
                            // and addresses usually stay in-image.
                            if matches!(field.target, CodingTarget::Label { .. }) && r.chance(1, 2)
                            {
                                r.bits(p.width().min(4))
                            } else {
                                r.bits(p.width())
                            }
                        }
                        None => 0,
                    };
                    p.fixed_value() | (free & !p.fixed_mask())
                }
                CodingTarget::Group(g) => {
                    let members = &op.groups[*g].members;
                    let pinned = variant.guard.iter().find(|(gi, _)| gi == g).map(|&(_, m)| m);
                    let member = match (pinned, rng.as_deref_mut()) {
                        (Some(m), _) => m,
                        (None, Some(r)) => members[r.below(members.len())],
                        (None, None) => *members.first()?,
                    };
                    self.encode(member, rng.as_deref_mut(), depth + 1)?
                }
                CodingTarget::Op(o) => self.encode(*o, rng.as_deref_mut(), depth + 1)?,
            };
            word |= bits << field.offset;
        }
        Some(word)
    }

    /// Finds the canonical halt word: scan instruction behaviors for an
    /// assignment to the halt flag, encode each candidate zero-filled,
    /// and prove it by running a one-packet program to halt.
    fn find_halt_word(&self) -> Result<u128, GenError> {
        let model = self.wb.model();
        let halt = self.wb.halt_flag();
        for &op in &self.instructions {
            let mut visited = Vec::new();
            if !writes_halt(model, op, halt, &mut visited) {
                continue;
            }
            let Some(word) = self.encode(op, None, 0) else { continue };
            if self.decoder.decode(word).is_err() {
                continue;
            }
            // Eight copies cover VLIW fetch packets as well as scalar
            // fetch; the first executed copy must raise the flag.
            let program = vec![word; 8];
            let Ok(mut sim) = self.wb.simulator(SimMode::Interpretive) else { continue };
            if sim.load_program(self.wb.program_memory(), &program).is_err() {
                continue;
            }
            if self.wb.run_to_halt(&mut sim, 64).is_ok() {
                return Ok(word);
            }
        }
        Err(GenError::NoHaltWord { halt_flag: halt.to_owned() })
    }
}

/// Instruction alternatives reachable from the decode root's coding
/// (groups contribute their members, direct references themselves).
fn instruction_ops(model: &Model, root: OpId) -> Vec<OpId> {
    let mut ops = Vec::new();
    let root_op = model.operation(root);
    for variant in &root_op.variants {
        let Some(coding) = &variant.coding else { continue };
        for field in &coding.fields {
            match &field.target {
                CodingTarget::Group(g) => {
                    for &m in &root_op.groups[*g].members {
                        if !ops.contains(&m) {
                            ops.push(m);
                        }
                    }
                }
                CodingTarget::Op(o) if !ops.contains(o) => ops.push(*o),
                _ => {}
            }
        }
    }
    ops
}

/// Whether any behavior reachable from `op` assigns the halt flag.
fn writes_halt(model: &Model, op_id: OpId, halt: &str, visited: &mut Vec<OpId>) -> bool {
    if visited.contains(&op_id) {
        return false;
    }
    visited.push(op_id);
    let op = model.operation(op_id);
    for variant in &op.variants {
        if let Some(behavior) = &variant.behavior {
            if block_writes(behavior, halt) {
                return true;
            }
        }
    }
    let reachable: Vec<OpId> = op
        .groups
        .iter()
        .flat_map(|g| g.members.iter().copied())
        .chain(op.references.iter().copied())
        .collect();
    reachable.into_iter().any(|next| writes_halt(model, next, halt, visited))
}

fn block_writes(block: &Block, halt: &str) -> bool {
    block.stmts.iter().any(|s| stmt_writes(s, halt))
}

fn stmt_writes(stmt: &Stmt, halt: &str) -> bool {
    match stmt {
        Stmt::Assign { target, .. } | Stmt::IncDec { target, .. } => target_is_halt(target, halt),
        Stmt::If { then_block, else_block, .. } => {
            block_writes(then_block, halt) || block_writes(else_block, halt)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => block_writes(body, halt),
        Stmt::For { init, step, body, .. } => {
            init.as_deref().is_some_and(|s| stmt_writes(s, halt))
                || step.as_deref().is_some_and(|s| stmt_writes(s, halt))
                || block_writes(body, halt)
        }
        Stmt::Switch { cases, default, .. } => {
            cases.iter().any(|(_, b)| block_writes(b, halt))
                || default.as_ref().is_some_and(|b| block_writes(b, halt))
        }
        Stmt::Block(b) => block_writes(b, halt),
        Stmt::Local { .. } | Stmt::Expr(_) | Stmt::Break | Stmt::Continue => false,
    }
}

fn target_is_halt(expr: &Expr, halt: &str) -> bool {
    match expr {
        Expr::Name(id) => id.name == halt,
        Expr::Index { base, .. } => target_is_halt(base, halt),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_workbenches() -> Vec<(&'static str, Workbench)> {
        vec![
            ("tinyrisc", lisa_models::tinyrisc::workbench().unwrap()),
            ("scalar2", lisa_models::scalar2::workbench().unwrap()),
            ("accu16", lisa_models::accu16::workbench().unwrap()),
            ("vliw62", lisa_models::vliw62::workbench().unwrap()),
        ]
    }

    #[test]
    fn builds_for_every_builtin_model() {
        for (name, wb) in all_workbenches() {
            let gen = ProgramGen::new(&wb).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!gen.instructions().is_empty(), "{name}: no instructions");
            assert!(gen.image_words() > 0, "{name}: empty image");
        }
    }

    #[test]
    fn halt_word_halts_every_model() {
        for (name, wb) in all_workbenches() {
            let gen = ProgramGen::new(&wb).unwrap_or_else(|e| panic!("{name}: {e}"));
            let image = gen.image(&[]);
            let mut sim = wb.simulator(SimMode::Interpretive).unwrap();
            sim.load_program(wb.program_memory(), &image).unwrap();
            wb.run_to_halt(&mut sim, 64)
                .unwrap_or_else(|e| panic!("{name}: halt image did not halt: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for (name, wb) in all_workbenches() {
            let gen = ProgramGen::new(&wb).unwrap_or_else(|e| panic!("{name}: {e}"));
            let a = gen.gen_program(&mut Rng::new(1234), 24);
            let b = gen.gen_program(&mut Rng::new(1234), 24);
            assert_eq!(a, b, "{name}: same seed produced different programs");
            let c = gen.gen_program(&mut Rng::new(1235), 24);
            assert!(a != c || a.len() == 1, "{name}: different seeds should usually differ");
        }
    }

    #[test]
    fn coverage_is_a_pure_function_of_words() {
        for (name, wb) in all_workbenches() {
            let gen = ProgramGen::new(&wb).unwrap_or_else(|e| panic!("{name}: {e}"));
            let words = gen.gen_program(&mut Rng::new(42), 32);
            let a = gen.coverage_of(&words);
            let b = gen.coverage_of(&words);
            assert_eq!(a, b, "{name}: coverage not deterministic");
            assert!(!a.is_empty(), "{name}: program covered nothing");
            // Distinct instructions must land on distinct paths: the
            // halt word and a junk word cannot share one.
            let halt_path = gen.path_of(gen.halt_word());
            assert_ne!(halt_path, crate::coverage::JUNK_PATH);
        }
    }

    #[test]
    fn generated_words_mostly_decode() {
        for (name, wb) in all_workbenches() {
            let gen = ProgramGen::new(&wb).unwrap_or_else(|e| panic!("{name}: {e}"));
            let decoder = Decoder::new(wb.model()).unwrap();
            let mut rng = Rng::new(99);
            let words = gen.gen_program(&mut rng, 64);
            let decodable = words.iter().filter(|&&w| decoder.decode(w).is_ok()).count();
            // Junk words are rare; the bulk must be legal instructions.
            assert!(
                decodable * 2 >= words.len(),
                "{name}: only {decodable}/{} words decode",
                words.len()
            );
        }
    }
}

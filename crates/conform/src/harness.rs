//! The fuzzing loop: generate, check, shrink, persist.
//!
//! Each iteration derives its own random stream from `(seed, index)`,
//! synthesizes a program prefix, wraps it into a halt-padded image and
//! runs the full oracle stack. The first divergence stops the run: the
//! failing prefix is shrunk with the same oracle stack as predicate and
//! packaged as a [`Reproducer`]. [`Fuzzer::self_check`] validates the
//! whole pipeline by injecting a [`Fault`] into the compiled backend
//! and demanding that it is caught and minimized.

use lisa_metrics::Registry;
use lisa_models::Workbench;

use crate::corpus::Reproducer;
use crate::coverage::{self, CoverageMap};
use crate::gen::{GenError, ProgramGen};
use crate::oracle::{check_all, Fault, Outcome, Verdict};
use crate::rng::Rng;
use crate::shrink::shrink;

/// Tuning for one fuzzing run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; every program is a pure function of it.
    pub seed: u64,
    /// First iteration index. Program `i` depends only on `(seed, i)`,
    /// so disjoint `start` ranges under one seed partition the program
    /// space exactly — the basis for fleet fan-out.
    pub start: u64,
    /// Number of fresh programs to synthesize and check.
    pub iters: u64,
    /// Maximum synthesized prefix length, in instruction words.
    pub max_len: usize,
    /// Cycle budget per simulated run.
    pub max_cycles: u64,
    /// Deliberate backend corruption (harness self-validation).
    pub fault: Option<Fault>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { seed: 0, start: 0, iters: 500, max_len: 24, max_cycles: 2000, fault: None }
    }
}

/// A divergence found by fuzzing, with its minimized form.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration index that produced the program.
    pub iteration: u64,
    /// The oracle verdict on the *shrunk* program.
    pub verdict: Verdict,
    /// The program prefix as generated.
    pub original: Vec<u128>,
    /// The minimized prefix (still failing).
    pub shrunk: Vec<u128>,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations completed (including the failing one, if any).
    pub iterations: u64,
    /// Runs that halted cleanly with both backends agreeing.
    pub halted: u64,
    /// Runs that exhausted the cycle budget in agreement.
    pub budget: u64,
    /// Runs where both backends raised the same error.
    pub errored: u64,
    /// Coding-tree paths reached by the generated programs.
    pub coverage: CoverageMap,
    /// Whether the run was cut short by the caller's stop guard (a
    /// deadline, typically) before the iteration budget was spent.
    pub stopped: bool,
    /// The first divergence, if one was found.
    pub failure: Option<Failure>,
}

impl FuzzReport {
    /// Whether the run finished without a divergence.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// A fuzzer bound to one workbench.
pub struct Fuzzer<'w> {
    wb: &'w Workbench,
    gen: ProgramGen<'w>,
    config: FuzzConfig,
    metrics: Option<&'w Registry>,
}

impl<'w> Fuzzer<'w> {
    /// Builds the program generator for `wb`.
    ///
    /// # Errors
    ///
    /// [`GenError`] when the model cannot drive generation.
    pub fn new(wb: &'w Workbench, config: FuzzConfig) -> Result<Fuzzer<'w>, GenError> {
        Ok(Fuzzer { wb, gen: ProgramGen::new(wb)?, config, metrics: None })
    }

    /// Publishes fuzzing progress into `registry` while [`Fuzzer::run`]
    /// executes: `lisa_conform_iterations_total`,
    /// `lisa_conform_oracle_firings_total` and
    /// `lisa_conform_shrink_steps_total` (shrink predicate evaluations).
    #[must_use]
    pub fn with_metrics(mut self, registry: &'w Registry) -> Fuzzer<'w> {
        self.metrics = Some(registry);
        self
    }

    /// The underlying program generator.
    #[must_use]
    pub fn generator(&self) -> &ProgramGen<'w> {
        &self.gen
    }

    /// Runs the full oracle stack on one program prefix.
    ///
    /// # Errors
    ///
    /// The first oracle [`Verdict`].
    pub fn check_words(&self, prefix: &[u128]) -> Result<Outcome, Verdict> {
        let image = self.gen.image(prefix);
        check_all(self.wb, &image, self.config.max_cycles, self.config.fault)
    }

    /// Replays a persisted reproducer; passing means the regression
    /// stays fixed.
    ///
    /// # Errors
    ///
    /// The oracle [`Verdict`] if the old failure resurfaces.
    pub fn replay(&self, rep: &Reproducer) -> Result<Outcome, Verdict> {
        let previous_fault = self.config.fault;
        debug_assert!(previous_fault.is_none(), "replay runs without fault injection");
        let image = self.gen.image(&rep.words);
        check_all(self.wb, &image, self.config.max_cycles, None)
    }

    /// The main loop: fuzz until the iteration budget is spent or a
    /// divergence is found (which is then shrunk).
    pub fn run(&self) -> FuzzReport {
        self.run_guarded(|| false)
    }

    /// [`Fuzzer::run`] with a stop guard, polled once per iteration.
    /// When the guard returns `true` the loop exits early with
    /// `report.stopped` set — this is how the serve worker pool honors
    /// request deadlines without aborting mid-oracle.
    pub fn run_guarded(&self, mut should_stop: impl FnMut() -> bool) -> FuzzReport {
        let handles = self.metrics.map(|reg| {
            (
                reg.counter("lisa_conform_iterations_total", "Fuzzing iterations completed.", &[]),
                reg.counter(
                    "lisa_conform_oracle_firings_total",
                    "Oracle divergences detected (before shrinking).",
                    &[],
                ),
                reg.counter(
                    "lisa_conform_shrink_steps_total",
                    "Shrink predicate evaluations (oracle re-runs during minimization).",
                    &[],
                ),
            )
        });
        let mut report = FuzzReport::default();
        for offset in 0..self.config.iters {
            if should_stop() {
                report.stopped = true;
                break;
            }
            let index = self.config.start + offset;
            report.iterations = offset + 1;
            if let Some((iters, _, _)) = &handles {
                iters.inc();
            }
            let mut rng = Rng::for_iteration(self.config.seed, index);
            let prefix = self.gen.gen_program(&mut rng, self.config.max_len);
            report.coverage.merge(&self.gen.coverage_of(&prefix));
            match self.check_words(&prefix) {
                Ok(Outcome::Halted { .. }) => report.halted += 1,
                Ok(Outcome::Budget { .. }) => report.budget += 1,
                Ok(Outcome::Error { .. }) => report.errored += 1,
                Err(first) => {
                    if let Some((_, firings, _)) = &handles {
                        firings.inc();
                    }
                    let shrunk = shrink(&prefix, |ws| {
                        if let Some((_, _, steps)) = &handles {
                            steps.inc();
                        }
                        self.check_words(ws).is_err()
                    });
                    let verdict = self.check_words(&shrunk).err().unwrap_or(first);
                    report.failure =
                        Some(Failure { iteration: index, verdict, original: prefix, shrunk });
                    break;
                }
            }
        }
        report
    }

    /// Packages a failure as a reproducer for this fuzzer's model.
    #[must_use]
    pub fn reproducer(&self, model: &str, failure: &Failure) -> Reproducer {
        Reproducer {
            model: model.to_owned(),
            seed: self.config.seed,
            oracle: failure.verdict.oracle.label().to_owned(),
            words: failure.shrunk.clone(),
        }
    }

    /// Distills this fuzzer's iteration range to a minimal seed set:
    /// regenerates every program (pure function of `(seed, index)`, no
    /// simulation) and greedily picks iterations until their union
    /// covers every path the full range reaches. The returned coverage
    /// equals the full range's coverage by construction.
    #[must_use]
    pub fn distill(&self) -> Distilled {
        let end = self.config.start + self.config.iters;
        let per_program: Vec<CoverageMap> = (self.config.start..end)
            .map(|index| {
                let mut rng = Rng::for_iteration(self.config.seed, index);
                let prefix = self.gen.gen_program(&mut rng, self.config.max_len);
                self.gen.coverage_of(&prefix)
            })
            .collect();
        let chosen = coverage::distill(&per_program);
        let mut coverage = CoverageMap::new();
        let mut indices = Vec::with_capacity(chosen.len());
        for local in chosen {
            coverage.merge(&per_program[local]);
            indices.push(self.config.start + local as u64);
        }
        Distilled { indices, coverage }
    }

    /// End-to-end harness validation: inject a halt-flag fault into the
    /// compiled backend and demand the lockstep oracle catches it and
    /// the shrinker minimizes it to at most `max_shrunk` instructions.
    ///
    /// # Errors
    ///
    /// A description of what the harness failed to do.
    pub fn self_check(wb: &Workbench, max_shrunk: usize) -> Result<Failure, String> {
        let config =
            FuzzConfig { iters: 4, fault: Some(Fault { at_cycle: 0 }), ..FuzzConfig::default() };
        let fuzzer = Fuzzer::new(wb, config).map_err(|e| e.to_string())?;
        let report = fuzzer.run();
        let failure =
            report.failure.ok_or("injected backend fault was NOT caught by the oracles")?;
        if failure.shrunk.len() > max_shrunk {
            return Err(format!(
                "injected fault shrunk to {} instructions, expected at most {max_shrunk}",
                failure.shrunk.len()
            ));
        }
        Ok(failure)
    }
}

/// A distilled seed set: the smallest greedy selection of iteration
/// indices whose regenerated programs reach every covered path.
#[derive(Debug, Clone, Default)]
pub struct Distilled {
    /// Absolute iteration indices, in selection order. Each regenerates
    /// its program via `Rng::for_iteration(seed, index)`.
    pub indices: Vec<u64>,
    /// Union coverage of the selected programs — equal to the coverage
    /// of the full iteration range.
    pub coverage: CoverageMap,
}

/// Publishes a finished fuzz run into the `lisa_fuzz_*` metric family:
/// per-model counters for programs checked and their outcomes, plus a
/// `lisa_fuzz_paths_covered` gauge set to `paths_covered` (callers pass
/// their *merged* per-model path count so the gauge stays monotone
/// across requests).
pub fn publish_fuzz(registry: &Registry, model: &str, report: &FuzzReport, paths_covered: usize) {
    let labels = &[("model", model)];
    registry
        .counter("lisa_fuzz_programs_total", "Programs synthesized and oracle-checked.", labels)
        .add(report.iterations);
    registry
        .counter("lisa_fuzz_halted_total", "Fuzzed programs that halted cleanly.", labels)
        .add(report.halted);
    registry
        .counter("lisa_fuzz_budget_total", "Fuzzed programs that hit the cycle budget.", labels)
        .add(report.budget);
    registry
        .counter("lisa_fuzz_errored_total", "Fuzzed programs where both backends errored.", labels)
        .add(report.errored);
    registry
        .counter("lisa_fuzz_divergences_total", "Oracle divergences found while fuzzing.", labels)
        .add(u64::from(report.failure.is_some()));
    registry
        .gauge("lisa_fuzz_paths_covered", "Distinct coding-tree paths covered.", labels)
        .set(i64::try_from(paths_covered).unwrap_or(i64::MAX));
}

//! Reproducer files: persisted, shrunk failure cases.
//!
//! A reproducer is a small, line-oriented text file (stable under
//! version control, human-diffable) holding the model name, the seed
//! and oracle that found the failure, and the minimized instruction
//! words. The corpus directory is replayed before any fresh fuzzing —
//! once a divergence is fixed, its reproducer becomes a permanent
//! regression test.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// File extension for reproducer files.
pub const EXTENSION: &str = "repro";

/// A typed failure while loading a corpus directory. Every variant is a
/// hard error: a corpus that cannot be trusted byte-for-byte must stop
/// the run rather than silently shrink the regression suite.
#[derive(Debug)]
pub enum CorpusError {
    /// A `.repro` entry exists but could not be read.
    Unreadable {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A file was read but does not parse as a reproducer.
    Malformed {
        /// The offending path.
        path: PathBuf,
        /// The first parse diagnostic.
        detail: String,
    },
    /// The file's content hash does not match the hash embedded in its
    /// name — the file was edited, truncated, or mis-renamed.
    HashMismatch {
        /// The offending path.
        path: PathBuf,
        /// Hash parsed from the file name.
        expected: u64,
        /// Hash recomputed from the file's words.
        actual: u64,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Unreadable { path, source } => {
                write!(f, "corpus file unreadable: {}: {source}", path.display())
            }
            CorpusError::Malformed { path, detail } => {
                write!(f, "corpus file malformed: {}: {detail}", path.display())
            }
            CorpusError::HashMismatch { path, expected, actual } => write!(
                f,
                "corpus content hash mismatch: {}: file name says {expected:016x}, \
                 contents hash to {actual:016x}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Unreadable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A persisted failure case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// Model name the program was synthesized for (`tinyrisc`, …).
    pub model: String,
    /// Seed of the fuzzing run that found it.
    pub seed: u64,
    /// Label of the oracle that fired ([`crate::OracleKind::label`]).
    pub oracle: String,
    /// The minimized program prefix.
    pub words: Vec<u128>,
}

impl Reproducer {
    /// Serializes to the reproducer file format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# lisa-conform reproducer");
        let _ = writeln!(out, "model = {}", self.model);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "oracle = {}", self.oracle);
        for word in &self.words {
            let _ = writeln!(out, "word = {word:#x}");
        }
        out
    }

    /// Parses the reproducer file format.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn parse(text: &str) -> Result<Reproducer, String> {
        let mut model = None;
        let mut seed = None;
        let mut oracle = None;
        let mut words = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            match key {
                "model" => model = Some(value.to_owned()),
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?,
                    );
                }
                "oracle" => oracle = Some(value.to_owned()),
                "word" => {
                    let digits = value.strip_prefix("0x").ok_or_else(|| {
                        format!("line {}: word must be hexadecimal (0x…)", lineno + 1)
                    })?;
                    words.push(
                        u128::from_str_radix(digits, 16)
                            .map_err(|e| format!("line {}: bad word: {e}", lineno + 1))?,
                    );
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        Ok(Reproducer {
            model: model.ok_or("missing `model` line")?,
            seed: seed.ok_or("missing `seed` line")?,
            oracle: oracle.unwrap_or_else(|| "unknown".to_owned()),
            words,
        })
    }

    /// The canonical file name: `<model>-<16-hex-digit content hash>.repro`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.{EXTENSION}", self.model, self.content_hash())
    }

    /// FNV-1a over the words, so identical failures dedupe on disk.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in &self.words {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Writes the reproducer into `dir` (created if missing); returns
    /// the file path.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_text())?;
        Ok(path)
    }

    /// Reads and parses one reproducer file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or parse errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<Reproducer> {
        let text = std::fs::read_to_string(path)?;
        Reproducer::parse(&text).map_err(|msg| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {msg}", path.display()),
            )
        })
    }
}

/// Loads every `.repro` file in `dir`, sorted by file name for a
/// deterministic replay order. A missing directory is an empty corpus.
///
/// # Errors
///
/// Filesystem or parse errors for files that exist but do not load.
pub fn load_dir(dir: &Path) -> std::io::Result<Vec<(PathBuf, Reproducer)>> {
    let mut entries = Vec::new();
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == EXTENSION))
        .collect();
    paths.sort();
    for path in paths {
        let rep = Reproducer::load(&path)?;
        entries.push((path, rep));
    }
    Ok(entries)
}

/// [`load_dir`] with integrity checking: every file must read, parse,
/// and — when its name carries the canonical `-<16 hex digits>` content
/// hash suffix — hash to exactly that value. Hand-named files without a
/// hash suffix are loaded but not hash-checked. The first violation is
/// returned as a typed [`CorpusError`]; callers are expected to treat
/// it as fatal.
///
/// # Errors
///
/// The first [`CorpusError`] encountered, in file-name order.
pub fn load_dir_verified(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, CorpusError> {
    let mut entries = Vec::new();
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(CorpusError::Unreadable { path: dir.to_path_buf(), source: e }),
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == EXTENSION))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CorpusError::Unreadable { path: path.clone(), source: e })?;
        let rep = Reproducer::parse(&text)
            .map_err(|detail| CorpusError::Malformed { path: path.clone(), detail })?;
        if let Some(expected) = named_hash(&path) {
            let actual = rep.content_hash();
            if actual != expected {
                return Err(CorpusError::HashMismatch { path, expected, actual });
            }
        }
        entries.push((path, rep));
    }
    Ok(entries)
}

/// The content hash embedded in a canonical reproducer file name, if
/// the stem ends with `-<16 hex digits>`.
fn named_hash(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    let (_, digits) = stem.rsplit_once('-')?;
    if digits.len() != 16 {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reproducer {
        Reproducer {
            model: "tinyrisc".into(),
            seed: 7,
            oracle: "lockstep".into(),
            words: vec![0xf000, 0x1a2b, 0],
        }
    }

    #[test]
    fn round_trips_through_text() {
        let rep = sample();
        let parsed = Reproducer::parse(&rep.to_text()).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Reproducer::parse("").unwrap_err().contains("missing `model`"));
        assert!(Reproducer::parse("model = m\nword = 12").unwrap_err().contains("hexadecimal"));
        assert!(Reproducer::parse("model = m\nbogus = 1").unwrap_err().contains("unknown key"));
        assert!(Reproducer::parse("model = m\nseed = x").unwrap_err().contains("bad seed"));
    }

    #[test]
    fn file_name_is_stable_and_content_addressed() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.file_name(), b.file_name());
        b.words.push(1);
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("tinyrisc-"));
        assert!(a.file_name().ends_with(".repro"));
    }

    #[test]
    fn save_and_load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("lisa-conform-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rep = sample();
        let path = rep.save(&dir).unwrap();
        assert!(path.exists());
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, rep);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_directory_is_empty() {
        let dir = Path::new("/nonexistent/lisa-conform-corpus");
        assert!(load_dir(dir).unwrap().is_empty());
        assert!(load_dir_verified(dir).unwrap().is_empty());
    }

    #[test]
    fn verified_load_accepts_canonical_files() {
        let dir = std::env::temp_dir().join(format!("lisa-corpus-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sample().save(&dir).unwrap();
        // A hand-named file without a hash suffix is loaded unchecked.
        std::fs::write(dir.join("handmade.repro"), sample().to_text()).unwrap();
        let loaded = load_dir_verified(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verified_load_rejects_hash_mismatch() {
        let dir = std::env::temp_dir().join(format!("lisa-corpus-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rep = sample();
        let path = rep.save(&dir).unwrap();
        // Corrupt the words without renaming the file.
        let mut tampered = rep.clone();
        tampered.words.push(0xbad);
        std::fs::write(&path, tampered.to_text()).unwrap();
        let err = load_dir_verified(&dir).unwrap_err();
        assert!(matches!(err, CorpusError::HashMismatch { .. }), "got {err}");
        assert!(err.to_string().contains("content hash mismatch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verified_load_rejects_unreadable_entries() {
        let dir = std::env::temp_dir().join(format!("lisa-corpus-unread-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A directory with the .repro extension cannot be read as a file
        // (works even when running as root, unlike permission bits).
        std::fs::create_dir_all(dir.join("trap.repro")).unwrap();
        let err = load_dir_verified(&dir).unwrap_err();
        assert!(matches!(err, CorpusError::Unreadable { .. }), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verified_load_rejects_malformed_files() {
        let dir = std::env::temp_dir().join(format!("lisa-corpus-mal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("nonsense.repro"), "model only, no seed\n").unwrap();
        let err = load_dir_verified(&dir).unwrap_err();
        assert!(matches!(err, CorpusError::Malformed { .. }), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

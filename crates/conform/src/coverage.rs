//! Coding-tree path coverage: what the fuzzer has actually exercised.
//!
//! A synthesized program is interesting to the degree it reaches coding
//! -tree shapes no earlier program reached. This module defines that
//! notion precisely: the **path** of an instruction word is the
//! structural shape of its decode — which operation matched at each
//! group/reference field, recursively, ignoring operand (label) values.
//! Paths are a pure function of `(model, word)`, so the same coverage is
//! observed whether a word was freshly generated, replayed from a corpus
//! file, or re-derived on another machine — the property distillation
//! and fleet merging both rest on.
//!
//! A [`CoverageMap`] counts path witnesses and merges as a
//! **join-semilattice** (per-path `max`): merging is associative,
//! commutative and idempotent, so per-instance maps fold into one fleet
//! view in any grouping and re-reporting an instance cannot inflate
//! coverage. [`distill`] computes a small sub-multiset of programs whose
//! union covers every reached path (greedy set cover), which keeps a
//! checked-in seed corpus minimal while coverage only grows.

use std::collections::BTreeMap;

use lisa_isa::Decoded;
use lisa_metrics::json::{self, Value};

/// The sentinel path for words that do not decode. Junk words exercise
/// the shared decode-failure path, which is itself worth covering once.
pub const JUNK_PATH: u64 = 0;

/// Hashes the structural decode path of one instruction: the operation,
/// the chosen variant, and recursively every child decode — label values
/// are deliberately excluded, so two `ADD`s with different operands
/// share a path while `ADD` and `SUB` do not.
#[must_use]
pub fn path_key(decoded: &Decoded) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fold_path(decoded, &mut hash);
    // Reserve JUNK_PATH for undecodable words.
    if hash == JUNK_PATH {
        1
    } else {
        hash
    }
}

fn fnv(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn fold_path(decoded: &Decoded, hash: &mut u64) {
    fnv(hash, decoded.op.0 as u64);
    fnv(hash, decoded.variant as u64);
    for child in &decoded.children {
        match child {
            Some(sub) => fold_path(sub, hash),
            // A pattern/label field: mark the position so shapes with
            // different field layouts never collide by omission.
            None => fnv(hash, u64::MAX),
        }
    }
}

/// A set of covered coding-tree paths with witness counts.
///
/// `merge` takes the per-path **maximum**, making the map a
/// join-semilattice: associative, commutative, idempotent (property-
/// tested in `tests/coverage_props.rs`). The quantity that matters for
/// coverage is the key *set*; counts are a debugging aid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    paths: BTreeMap<u64, u64>,
}

impl CoverageMap {
    /// An empty map (the merge identity).
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records one witness of `path`.
    pub fn record(&mut self, path: u64) {
        let count = self.paths.entry(path).or_insert(0);
        *count = count.saturating_add(1);
    }

    /// Number of distinct paths covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no path has been covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Whether `path` is covered.
    #[must_use]
    pub fn contains(&self, path: u64) -> bool {
        self.paths.contains_key(&path)
    }

    /// Paths in `self` not yet covered by `other`.
    #[must_use]
    pub fn novel_against(&self, other: &CoverageMap) -> usize {
        self.paths.keys().filter(|p| !other.paths.contains_key(p)).count()
    }

    /// Whether every path in `other` is also covered here.
    #[must_use]
    pub fn covers(&self, other: &CoverageMap) -> bool {
        other.paths.keys().all(|p| self.paths.contains_key(p))
    }

    /// Joins `other` into `self` (per-path max — see the type docs).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (&path, &count) in &other.paths {
            let mine = self.paths.entry(path).or_insert(0);
            *mine = (*mine).max(count);
        }
    }

    /// Iterates `(path, witness count)` in ascending path order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.paths.iter().map(|(&p, &c)| (p, c))
    }

    /// Serializes as `{"paths": {"<16-hex path>": count, …}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"paths\": {");
        for (i, (path, count)) in self.paths.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{path:016x}\": {count}"));
        }
        out.push_str("}}");
        out
    }

    /// Parses the [`CoverageMap::to_json`] shape.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(text: &str) -> Result<CoverageMap, String> {
        let value = json::parse(text).map_err(|e| format!("bad coverage JSON: {e}"))?;
        CoverageMap::from_value(&value)
    }

    /// Reads the map out of an already-parsed [`Value`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_value(value: &Value) -> Result<CoverageMap, String> {
        let Some(Value::Obj(fields)) = value.get("paths") else {
            return Err("coverage is missing the `paths` object".to_owned());
        };
        let mut map = CoverageMap::new();
        for (key, count) in fields {
            let path = u64::from_str_radix(key, 16)
                .map_err(|e| format!("bad coverage path `{key}`: {e}"))?;
            let count =
                count.as_u64().ok_or_else(|| format!("bad count for coverage path `{key}`"))?;
            map.paths.insert(path, count);
        }
        Ok(map)
    }
}

/// Greedy set cover over per-program coverage: returns the indices (into
/// `sets`, in selection order) of a small subset whose union equals the
/// union of all sets. The classic greedy bound applies (within `ln n` of
/// optimal); exactness of the *union* is guaranteed by construction and
/// property-tested.
#[must_use]
pub fn distill(sets: &[CoverageMap]) -> Vec<usize> {
    let mut uncovered: std::collections::BTreeSet<u64> =
        sets.iter().flat_map(|s| s.paths.keys().copied()).collect();
    let mut chosen = Vec::new();
    let mut used = vec![false; sets.len()];
    while !uncovered.is_empty() {
        let mut best = None;
        let mut best_gain = 0usize;
        for (i, set) in sets.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = set.paths.keys().filter(|p| uncovered.contains(p)).count();
            if gain > best_gain {
                best = Some(i);
                best_gain = gain;
            }
        }
        // Every uncovered path lives in some set, so greedy always
        // makes progress; the guard is belt-and-braces.
        let Some(i) = best else { break };
        used[i] = true;
        chosen.push(i);
        for path in sets[i].paths.keys() {
            uncovered.remove(path);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(paths: &[u64]) -> CoverageMap {
        let mut m = CoverageMap::new();
        for &p in paths {
            m.record(p);
        }
        m
    }

    #[test]
    fn merge_is_max_and_idempotent() {
        let mut a = map(&[1, 1, 2]);
        let b = map(&[2, 2, 2, 3]);
        a.merge(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(1, 2), (2, 3), (3, 1)]);
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before, "re-merging the same report must not inflate");
    }

    #[test]
    fn covers_and_novelty() {
        let a = map(&[1, 2, 3]);
        let b = map(&[2, 3]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.novel_against(&b), 1);
        assert_eq!(b.novel_against(&a), 0);
    }

    #[test]
    fn json_round_trips() {
        let m = map(&[7, 7, 0xdead_beef_dead_beef]);
        let back = CoverageMap::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(CoverageMap::from_json("{}").is_err());
        assert!(CoverageMap::from_json("{\"paths\": {\"zz\": 1}}").is_err());
    }

    #[test]
    fn distill_reaches_the_full_union() {
        let sets = vec![map(&[1, 2]), map(&[2, 3]), map(&[1, 2, 3]), map(&[4])];
        let chosen = distill(&sets);
        let mut union = CoverageMap::new();
        for &i in &chosen {
            union.merge(&sets[i]);
        }
        let mut full = CoverageMap::new();
        for s in &sets {
            full.merge(s);
        }
        assert!(union.covers(&full) && full.covers(&union));
        // The greedy pick takes the superset program plus the unique one.
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn distill_of_nothing_is_nothing() {
        assert!(distill(&[]).is_empty());
        assert!(distill(&[CoverageMap::new()]).is_empty());
    }
}

//! Execution oracles: the invariants every synthesized program is
//! checked against.
//!
//! The primary oracle runs all three backends — interpretive, compiled
//! and threaded micro-op (`ops`) — in **lockstep**, comparing
//! [`State::digest`](lisa_sim::State::digest) and the mode-independent
//! [`SimStats`] fields after every control step — the strictest
//! cross-check the workspace can express, and a direct generalization
//! of the paper's §4.1 `sim62x` comparison.
//!
//! Four **metamorphic** oracles then assert that semantics-preserving
//! transformations of a run do not change its result: snapshotting at a
//! mid-run cycle and resuming (in either backend), enabling tracing and
//! profiling, arming probes and the architectural profile (whose hit
//! streams and aggregates must also be mode-independent), and running
//! through `lisa-exec`'s batch scheduler instead of a plain loop.
//!
//! A [`Fault`] can be injected into the compiled backend to prove the
//! harness end-to-end: a flipped halt flag must be detected by the
//! lockstep oracle and shrink to a trivial program.

use lisa_core::ast::ResourceClass;
use lisa_core::model::Resource;
use lisa_exec::{run_scenario, BatchRunner, JobError, Scenario};
use lisa_models::Workbench;
use lisa_sim::{ArchProfile, ProbeSpec, SimError, SimMode, SimStats, Simulator, TraceEvent};

/// Which oracle detected a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Interpretive vs compiled vs ops lockstep digest + stats
    /// comparison (all mode pairs, every cycle).
    Lockstep,
    /// Snapshot at a mid-run cycle, resume in both backends.
    SnapshotRestore,
    /// Trace-and-profile-enabled vs plain execution.
    TraceParity,
    /// `lisa-exec` batch execution vs sequential execution.
    BatchParity,
    /// Probe hit streams and architectural profile across all three
    /// backends.
    ProbeParity,
}

impl OracleKind {
    /// Stable label used in reproducer files and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Lockstep => "lockstep",
            OracleKind::SnapshotRestore => "snapshot-restore",
            OracleKind::TraceParity => "trace-parity",
            OracleKind::BatchParity => "batch-parity",
            OracleKind::ProbeParity => "probe-parity",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a (divergence-free) run ended. Two backends *agreeing* on an
/// error or an exhausted budget is a pass: the invariant under test is
/// equivalence, not success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The halt flag was raised.
    Halted {
        /// Control steps until the halt was observed.
        cycles: u64,
        /// Final state digest (identical in every backend).
        digest: u64,
    },
    /// The cycle budget ran out before the halt flag rose.
    Budget {
        /// State digest at the budget boundary.
        digest: u64,
    },
    /// Every backend raised the same runtime error.
    Error {
        /// The shared diagnostic text.
        message: String,
    },
}

/// A detected conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A deliberate backend corruption for harness self-validation: from
/// `at_cycle` on, the compiled simulator's halt flag is inverted after
/// every step. The lockstep oracle must catch this on the first
/// affected cycle for *any* program, so shrinking must reach a trivial
/// reproducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// First control step (0-based) after which the flag is inverted.
    pub at_cycle: u64,
}

/// Runs every applicable oracle on one program image.
///
/// The lockstep oracle always runs and determines the reference
/// [`Outcome`]; the metamorphic oracles run only on clean (fault-free)
/// executions, since an injected fault is expected to fail lockstep
/// before they would matter.
///
/// # Errors
///
/// The first [`Verdict`] any oracle produces.
pub fn check_all(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    fault: Option<Fault>,
) -> Result<Outcome, Verdict> {
    let reference = lockstep(wb, image, max_cycles, fault)?;
    if fault.is_none() {
        trace_parity(wb, image, max_cycles, &reference)?;
        if let Outcome::Halted { cycles, .. } = reference {
            if cycles >= 2 {
                snapshot_restore(wb, image, max_cycles, cycles)?;
            }
        }
        batch_parity(wb, image, max_cycles, &reference)?;
        probe_parity(wb, image, max_cycles, &reference)?;
    }
    Ok(reference)
}

fn halt_resource(wb: &Workbench) -> Result<Resource, Verdict> {
    wb.model().resource_by_name(wb.halt_flag()).cloned().ok_or_else(|| Verdict {
        oracle: OracleKind::Lockstep,
        detail: format!("model has no halt flag `{}`", wb.halt_flag()),
    })
}

fn halted(sim: &Simulator<'_>, halt: &Resource) -> bool {
    sim.state().read_int(halt, &[]).unwrap_or(0) != 0
}

/// Mode-independent stats fields; `decode_cache_hits` is deliberately
/// excluded (it is the one field the backends legitimately disagree
/// on).
fn stats_mismatch(la: &str, a: &SimStats, lb: &str, b: &SimStats) -> Option<String> {
    let fields = [
        ("cycles", a.cycles, b.cycles),
        ("executed_ops", a.executed_ops, b.executed_ops),
        ("decodes", a.decodes, b.decodes),
        ("activations", a.activations, b.activations),
        ("stalls", a.stalls, b.stalls),
        ("flushes", a.flushes, b.flushes),
        ("instructions_retired", a.instructions_retired, b.instructions_retired),
    ];
    for (name, x, y) in fields {
        if x != y {
            return Some(format!("stats.{name}: {la}={x} {lb}={y}"));
        }
    }
    if a.stall_by_stage != b.stall_by_stage {
        return Some(format!(
            "stats.stall_by_stage: {la}={:?} {lb}={:?}",
            a.stall_by_stage, b.stall_by_stage
        ));
    }
    None
}

/// The lockstep differential oracle.
fn lockstep(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    fault: Option<Fault>,
) -> Result<Outcome, Verdict> {
    let fail = |detail: String| Verdict { oracle: OracleKind::Lockstep, detail };
    let halt = halt_resource(wb)?;

    const MODES: [(SimMode, &str); 3] = [
        (SimMode::Interpretive, "interpretive"),
        (SimMode::Compiled, "compiled"),
        (SimMode::Ops, "ops"),
    ];
    let mut sims = Vec::with_capacity(MODES.len());
    for (mode, _) in MODES {
        sims.push(wb.simulator(mode).map_err(|e| fail(e.to_string()))?);
    }
    let loads: Vec<_> =
        sims.iter_mut().map(|sim| sim.load_program(wb.program_memory(), image)).collect();
    if loads.iter().all(Result::is_ok) {
        // fall through to the cycle loop
    } else if let Some(Err(first)) = loads.first() {
        let message = first.to_string();
        if loads.iter().all(|l| matches!(l, Err(e) if e.to_string() == message)) {
            return Ok(Outcome::Error { message });
        }
        return Err(fail(format!("program load disagrees: {loads:?}")));
    } else {
        return Err(fail(format!("program load disagrees: {loads:?}")));
    }

    for cycle in 0..max_cycles {
        let results: Vec<_> = sims.iter_mut().map(lisa_sim::Simulator::step).collect();
        if let Some(f) = fault {
            if cycle >= f.at_cycle {
                let compiled = &mut sims[1];
                let cur = compiled.state().read_int(&halt, &[]).unwrap_or(0);
                let flipped = i64::from(cur == 0);
                compiled
                    .state_mut()
                    .write_int(&halt, &[], flipped)
                    .map_err(|e| fail(format!("fault injection failed: {e}")))?;
            }
        }
        match &results[0] {
            Ok(()) => {
                for ((_, label), r) in MODES.iter().zip(&results).skip(1) {
                    if let Err(e) = r {
                        return Err(fail(format!("cycle {cycle}: only {label} failed: `{e}`")));
                    }
                }
            }
            Err(first) => {
                let message = first.to_string();
                for ((_, label), r) in MODES.iter().zip(&results).skip(1) {
                    match r {
                        Err(e) if e.to_string() == message => {}
                        Err(e) => {
                            return Err(fail(format!(
                                "cycle {cycle}: backends failed differently:                                  interpretive=`{message}` {label}=`{e}`"
                            )));
                        }
                        Ok(()) => {
                            return Err(fail(format!(
                                "cycle {cycle}: interpretive failed but {label} did not:                                  `{message}`"
                            )));
                        }
                    }
                }
                return Ok(Outcome::Error { message });
            }
        }
        let da = sims[0].state().digest();
        for ((_, label), sim) in MODES.iter().zip(&sims).skip(1) {
            let db = sim.state().digest();
            if da != db {
                return Err(fail(format!(
                    "cycle {cycle}: state digest diverged:                      interpretive={da:#018x} {label}={db:#018x}"
                )));
            }
        }
        // Compare all mode pairs, not just against the reference: the
        // mode-independent stats contract must hold between compiled and
        // ops as well.
        for i in 0..MODES.len() {
            for j in i + 1..MODES.len() {
                if let Some(detail) =
                    stats_mismatch(MODES[i].1, sims[i].stats(), MODES[j].1, sims[j].stats())
                {
                    return Err(fail(format!("cycle {cycle}: {detail}")));
                }
            }
        }
        if halted(&sims[0], &halt) {
            return Ok(Outcome::Halted { cycles: sims[0].stats().cycles, digest: da });
        }
    }
    Ok(Outcome::Budget { digest: sims[0].state().digest() })
}

/// Runs one backend to completion the same way the lockstep oracle
/// does, optionally with tracing and profiling enabled.
fn run_one(
    wb: &Workbench,
    mode: SimMode,
    image: &[u128],
    max_cycles: u64,
    traced: bool,
) -> Outcome {
    let mut sim = match wb.simulator(mode) {
        Ok(sim) => sim,
        Err(e) => return Outcome::Error { message: e.to_string() },
    };
    let halt = match wb.model().resource_by_name(wb.halt_flag()) {
        Some(res) => res.clone(),
        None => return Outcome::Error { message: format!("no halt flag `{}`", wb.halt_flag()) },
    };
    if traced {
        sim.set_trace(true);
        sim.enable_profile();
    }
    if let Err(e) = sim.load_program(wb.program_memory(), image) {
        return Outcome::Error { message: e.to_string() };
    }
    for cycle in 0..max_cycles {
        if let Err(e) = sim.step() {
            return Outcome::Error { message: e.to_string() };
        }
        if traced && cycle % 256 == 255 {
            // Keep the event buffer bounded on long runs.
            let _ = sim.take_events();
        }
        if halted(&sim, &halt) {
            return Outcome::Halted { cycles: sim.stats().cycles, digest: sim.state().digest() };
        }
    }
    Outcome::Budget { digest: sim.state().digest() }
}

/// Metamorphic oracle: tracing and profiling must not change execution,
/// in either translated backend.
fn trace_parity(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    reference: &Outcome,
) -> Result<(), Verdict> {
    for mode in [SimMode::Compiled, SimMode::Ops] {
        let traced = run_one(wb, mode, image, max_cycles, true);
        if traced != *reference {
            return Err(Verdict {
                oracle: OracleKind::TraceParity,
                detail: format!(
                    "traced {mode:?} run diverged: plain={reference:?} traced={traced:?}"
                ),
            });
        }
    }
    Ok(())
}

/// Metamorphic oracle: snapshot at the midpoint, resume in the same
/// backend and in the other backend; all three continuations must agree
/// bit-exactly with the uninterrupted run.
fn snapshot_restore(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    total_cycles: u64,
) -> Result<(), Verdict> {
    let fail = |detail: String| Verdict { oracle: OracleKind::SnapshotRestore, detail };
    let halt = halt_resource(wb)?;
    let mid = total_cycles / 2;
    let rest_budget = max_cycles - mid;

    let mut base = wb.simulator(SimMode::Interpretive).map_err(|e| fail(e.to_string()))?;
    base.load_program(wb.program_memory(), image).map_err(|e| fail(e.to_string()))?;
    base.run(mid).map_err(|e| fail(format!("run to midpoint: {e}")))?;
    let snap = base.snapshot();
    let rest = base
        .run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, rest_budget)
        .map_err(|e| fail(format!("uninterrupted continuation: {e}")))?;
    let want = (rest, base.state().digest());

    for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
        let mut resumed = wb.simulator(mode).map_err(|e| fail(e.to_string()))?;
        resumed.restore(&snap).map_err(|e| fail(format!("restore into {mode:?}: {e}")))?;
        if resumed.state().digest() != snap.state().digest() {
            return Err(fail(format!("restore into {mode:?} changed the state digest")));
        }
        let rest = resumed
            .run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, rest_budget)
            .map_err(|e| fail(format!("resumed continuation in {mode:?}: {e}")))?;
        let got = (rest, resumed.state().digest());
        if got != want {
            return Err(fail(format!(
                "resumed {mode:?} run diverged after cycle {mid}: \
                 (cycles, digest) = {got:?}, uninterrupted = {want:?}"
            )));
        }
    }

    // The reverse direction: a snapshot *taken* in ops mode must restore
    // into the interpreter and continue identically.
    let mut ops = wb.simulator(SimMode::Ops).map_err(|e| fail(e.to_string()))?;
    ops.load_program(wb.program_memory(), image).map_err(|e| fail(e.to_string()))?;
    ops.run(mid).map_err(|e| fail(format!("ops run to midpoint: {e}")))?;
    let ops_snap = ops.snapshot();
    if ops_snap.state().digest() != snap.state().digest() {
        return Err(fail("ops-mode midpoint digest differs from interpretive".to_string()));
    }
    let mut resumed = wb.simulator(SimMode::Interpretive).map_err(|e| fail(e.to_string()))?;
    resumed.restore(&ops_snap).map_err(|e| fail(format!("restore ops snapshot: {e}")))?;
    let rest = resumed
        .run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, rest_budget)
        .map_err(|e| fail(format!("continuation from ops snapshot: {e}")))?;
    if (rest, resumed.state().digest()) != want {
        return Err(fail(format!(
            "continuation from an ops-mode snapshot diverged after cycle {mid}: \
             (cycles, digest) = {:?}, uninterrupted = {want:?}",
            (rest, resumed.state().digest())
        )));
    }
    Ok(())
}

/// Derives a probe spec that exercises every watchable surface the
/// model offers: a full-range watch on each data memory plus a register
/// trace probe on the first register file.
fn derived_probe_spec(wb: &Workbench) -> Option<ProbeSpec> {
    let mut clauses = Vec::new();
    let mut reg_done = false;
    for res in wb.model().resources() {
        match res.class {
            ResourceClass::DataMemory => clauses.push(format!("watch {}", res.name)),
            ResourceClass::Register if res.is_array() && !reg_done => {
                clauses.push(format!("reg {}", res.name));
                reg_done = true;
            }
            _ => {}
        }
    }
    ProbeSpec::parse(&clauses.join("; ")).ok()
}

/// What one probed run observed: the outcome plus everything the
/// probe layer produced. All of it must be mode-independent.
#[derive(Debug, PartialEq)]
struct ProbedRun {
    outcome: Outcome,
    hits: Vec<TraceEvent>,
    report: Vec<(String, u64)>,
    profile: Option<ArchProfile>,
}

/// Runs one backend with the derived probes armed and the architectural
/// profile on, collecting the full probe hit stream.
fn run_probed(
    wb: &Workbench,
    mode: SimMode,
    image: &[u128],
    max_cycles: u64,
    spec: Option<&ProbeSpec>,
) -> Result<ProbedRun, String> {
    let mut sim = wb.simulator(mode).map_err(|e| e.to_string())?;
    let halt = halt_resource(wb).map_err(|v| v.detail)?;
    sim.set_trace(true);
    if let Some(spec) = spec {
        sim.set_probes(spec.compile(wb.model()).map_err(|e| e.to_string())?);
    }
    sim.enable_arch_profile();
    sim.load_program(wb.program_memory(), image).map_err(|e| e.to_string())?;

    let mut hits = Vec::new();
    let mut drain = |sim: &mut Simulator<'_>| {
        hits.extend(
            sim.take_events().into_iter().filter(|e| matches!(e, TraceEvent::ProbeHit { .. })),
        );
    };
    let mut outcome = None;
    for cycle in 0..max_cycles {
        if let Err(e) = sim.step() {
            outcome = Some(Outcome::Error { message: e.to_string() });
            break;
        }
        if cycle % 256 == 255 {
            // Keep the event buffer bounded on long runs.
            drain(&mut sim);
        }
        if halted(&sim, &halt) {
            outcome =
                Some(Outcome::Halted { cycles: sim.stats().cycles, digest: sim.state().digest() });
            break;
        }
    }
    drain(&mut sim);
    Ok(ProbedRun {
        outcome: outcome.unwrap_or(Outcome::Budget { digest: sim.state().digest() }),
        hits,
        report: sim.probe_report(),
        profile: sim.arch_profile(),
    })
}

/// Metamorphic oracle: arming probes must not change execution, and the
/// probe hit stream, hit counts and architectural profile must be
/// identical in every backend.
fn probe_parity(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    reference: &Outcome,
) -> Result<(), Verdict> {
    let fail = |detail: String| Verdict { oracle: OracleKind::ProbeParity, detail };
    let spec = derived_probe_spec(wb);

    let mut runs = Vec::new();
    for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
        let run = run_probed(wb, mode, image, max_cycles, spec.as_ref())
            .map_err(|e| fail(format!("probed {mode:?} run failed to start: {e}")))?;
        if run.outcome != *reference {
            return Err(fail(format!(
                "probed {mode:?} run diverged from plain execution: \
                 plain={reference:?} probed={:?}",
                run.outcome
            )));
        }
        runs.push((mode, run));
    }

    let (_, want) = &runs[0];
    for (mode, got) in &runs[1..] {
        if got.hits != want.hits {
            return Err(fail(format!(
                "probe hit streams differ: interpretive saw {} hits, {mode:?} saw {} \
                 (first divergence at index {})",
                want.hits.len(),
                got.hits.len(),
                want.hits
                    .iter()
                    .zip(&got.hits)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| { want.hits.len().min(got.hits.len()) })
            )));
        }
        if got.report != want.report {
            return Err(fail(format!(
                "probe hit counts differ: interpretive={:?} {mode:?}={:?}",
                want.report, got.report
            )));
        }
        if got.profile != want.profile {
            return Err(fail(format!(
                "architectural profile differs between interpretive and {mode:?}: \
                 {:?} vs {:?}",
                want.profile, got.profile
            )));
        }
    }
    Ok(())
}

/// Metamorphic oracle: `lisa-exec` batch execution (worker pool and
/// inline) must reproduce the sequential result.
fn batch_parity(
    wb: &Workbench,
    image: &[u128],
    max_cycles: u64,
    reference: &Outcome,
) -> Result<(), Verdict> {
    let fail = |detail: String| Verdict { oracle: OracleKind::BatchParity, detail };
    let mem = wb
        .model()
        .resource_by_name(wb.program_memory())
        .ok_or_else(|| fail(format!("no program memory `{}`", wb.program_memory())))?;
    let origin = mem.dims.first().map_or(0, |d| d.base());

    let sc = Scenario::new("conform", wb.model(), SimMode::Compiled)
        .program(wb.program_memory(), origin, image.to_vec())
        .halt_on(wb.halt_flag())
        .steps(max_cycles);

    let inline = run_scenario(&sc);
    check_batch_result(&inline, reference, max_cycles, "inline").map_err(fail)?;

    let report = BatchRunner::new(2).run(&[sc.clone(), sc]);
    for job in &report.jobs {
        check_batch_result(&job.result, reference, max_cycles, &format!("job {}", job.index))
            .map_err(fail)?;
    }
    Ok(())
}

/// Compares one `lisa-exec` job result against the sequential outcome.
fn check_batch_result(
    result: &Result<lisa_exec::JobResult, JobError>,
    reference: &Outcome,
    max_cycles: u64,
    which: &str,
) -> Result<(), String> {
    match (reference, result) {
        (Outcome::Halted { cycles, digest }, Ok(job)) => {
            if job.cycles != *cycles || job.state_digest != *digest {
                return Err(format!(
                    "{which}: batch run finished with (cycles, digest) = ({}, {:#018x}), \
                     sequential = ({cycles}, {digest:#018x})",
                    job.cycles, job.state_digest
                ));
            }
            Ok(())
        }
        (Outcome::Budget { .. }, Err(JobError::Sim(msg)))
            if *msg == SimError::StepLimit { limit: max_cycles }.to_string() =>
        {
            Ok(())
        }
        (Outcome::Error { message }, Err(JobError::Sim(msg))) if msg == message => Ok(()),
        (expected, got) => {
            Err(format!("{which}: batch result {got:?} does not match sequential {expected:?}"))
        }
    }
}

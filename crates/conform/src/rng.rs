//! Deterministic pseudo-random bits for program synthesis.
//!
//! The fuzzing subsystem must be reproducible from a single `u64` seed:
//! the same seed produces the same programs, the same oracle schedule,
//! and therefore the same verdicts on the same build. SplitMix64 is the
//! standard small generator for that job — one multiply-xor-shift chain
//! per draw, full 64-bit period, no external dependency.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds draw equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Derives an independent stream for sub-task `index` of `seed` —
    /// used to give every fuzz iteration its own reproducible stream.
    #[must_use]
    pub fn for_iteration(seed: u64, index: u64) -> Rng {
        let mut base = Rng::new(seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
        let lane = base.next_u64().wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        Rng::new(lane)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `width` uniformly distributed bits (`width` up to 128).
    pub fn bits(&mut self, width: u32) -> u128 {
        debug_assert!(width <= 128);
        if width == 0 {
            return 0;
        }
        let raw = if width <= 64 {
            u128::from(self.next_u64())
        } else {
            u128::from(self.next_u64()) << 64 | u128::from(self.next_u64())
        };
        if width == 128 {
            raw
        } else {
            raw & ((1u128 << width) - 1)
        }
    }

    /// A uniform index in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_draw_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_iterations_draw_different_streams() {
        let mut a = Rng::for_iteration(0, 0);
        let mut b = Rng::for_iteration(0, 1);
        let a_draws: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let b_draws: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(a_draws, b_draws);
    }

    #[test]
    fn bits_respects_width() {
        let mut rng = Rng::new(7);
        for width in [0u32, 1, 5, 63, 64, 65, 127, 128] {
            let v = rng.bits(width);
            if width < 128 {
                assert!(v < 1u128 << width, "width {width}: {v:#x}");
            }
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

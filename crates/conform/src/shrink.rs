//! Delta-debugging reduction of failing programs.
//!
//! A divergence found in a 30-instruction program is rarely *about* 30
//! instructions. [`shrink`] applies the classic ddmin strategy over the
//! instruction sequence: try removing chunks of decreasing size, keep
//! any removal that still reproduces the failure, and repeat until a
//! fixpoint — the result is 1-minimal (no single remaining instruction
//! can be dropped). The predicate is the caller's full oracle stack, so
//! the minimized program provably still diverges.

/// Ceiling on predicate evaluations; each one is a couple of simulator
/// runs, so an unbounded shrink could dominate the fuzzing budget.
const MAX_EVALS: usize = 512;

/// Reduces `words` to a smaller sequence for which `still_fails` holds.
///
/// `still_fails` must hold for `words` itself (the caller found the
/// failure there); it is re-invoked on candidate reductions only. The
/// returned sequence always satisfies `still_fails` — in the worst case
/// it is `words` unchanged.
pub fn shrink(words: &[u128], mut still_fails: impl FnMut(&[u128]) -> bool) -> Vec<u128> {
    let mut current: Vec<u128> = words.to_vec();
    let mut evals = 0usize;
    let mut chunk = (current.len() / 2).max(1);

    while !current.is_empty() && evals < MAX_EVALS {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && evals < MAX_EVALS {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<u128> =
                current[..start].iter().chain(current[end..].iter()).copied().collect();
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                // Re-test from the same position: the next chunk slid
                // into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(current.len().max(1));
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_the_single_culprit() {
        let words: Vec<u128> = (0..32).collect();
        let shrunk = shrink(&words, |ws| ws.contains(&17));
        assert_eq!(shrunk, vec![17]);
    }

    #[test]
    fn keeps_a_required_pair() {
        let words: Vec<u128> = (0..20).collect();
        let shrunk = shrink(&words, |ws| ws.contains(&3) && ws.contains(&15));
        assert_eq!(shrunk, vec![3, 15]);
    }

    #[test]
    fn unconditional_failure_shrinks_to_empty() {
        let words: Vec<u128> = (0..10).collect();
        let shrunk = shrink(&words, |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn result_always_satisfies_the_predicate() {
        let words: Vec<u128> = (0..16).collect();
        // Order-sensitive predicate: needs an even word before an odd one.
        let pred = |ws: &[u128]| {
            ws.iter().position(|w| w % 2 == 0).is_some_and(|i| ws[i..].iter().any(|w| w % 2 == 1))
        };
        let shrunk = shrink(&words, pred);
        assert!(pred(&shrunk), "shrink returned a non-failing sequence");
        assert_eq!(shrunk.len(), 2);
    }
}

//! # lisa-conform — ISA-driven differential fuzzing and conformance
//!
//! The paper's correctness argument (§4.1) is a cross-check of the
//! generated simulator against `sim62x` on "a number of typical DSP
//! applications" — a fixed, hand-picked suite. This crate turns that
//! idea into a standing harness: it *synthesizes* programs from the ISA
//! model itself and cross-checks every execution invariant the
//! workspace defines, automatically and reproducibly.
//!
//! The pieces:
//!
//! * [`rng`] — a SplitMix64 stream so every run is a pure function of a
//!   `u64` seed;
//! * [`gen`] — a model-driven program generator that walks the decode
//!   root's coding tree and emits decoder-validated instruction words,
//!   padding every image with a discovered halt word so programs always
//!   terminate (or hit the cycle budget);
//! * [`oracle`] — the lockstep differential oracle (interpretive vs
//!   compiled, `State::digest()` + mode-independent `SimStats` per
//!   cycle) and three metamorphic oracles (snapshot/restore at mid-run,
//!   trace-enabled vs trace-disabled, batch vs sequential execution);
//! * [`shrink`] — a ddmin-style reducer that cuts a failing program to
//!   a minimal diverging sequence;
//! * [`corpus`] — reproducer files: persist shrunk failures, replay
//!   them as regressions (with content-hash-verified loading);
//! * [`coverage`] — coding-tree path coverage: a join-semilattice
//!   [`CoverageMap`] that merges across fleet instances, plus greedy
//!   corpus distillation;
//! * [`harness`] — the fuzz loop that ties it all together, plus fault
//!   injection for validating the harness itself and `lisa_fuzz_*`
//!   metric publication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::{load_dir_verified, CorpusError, Reproducer};
pub use coverage::{distill, path_key, CoverageMap};
pub use gen::{GenError, ProgramGen};
pub use harness::{publish_fuzz, Distilled, Failure, FuzzConfig, FuzzReport, Fuzzer};
pub use oracle::{check_all, Fault, OracleKind, Outcome, Verdict};
pub use rng::Rng;
pub use shrink::shrink;

//! Bounded fuzzing smoke tests: every builtin model survives a short
//! oracle-checked fuzzing run, and the harness proves it can catch an
//! injected backend fault.

use lisa_conform::{Fault, FuzzConfig, Fuzzer};
use lisa_models::Workbench;

fn all_workbenches() -> Vec<(&'static str, Workbench)> {
    vec![
        ("tinyrisc", lisa_models::tinyrisc::workbench().unwrap()),
        ("scalar2", lisa_models::scalar2::workbench().unwrap()),
        ("accu16", lisa_models::accu16::workbench().unwrap()),
        ("vliw62", lisa_models::vliw62::workbench().unwrap()),
    ]
}

#[test]
fn short_fuzz_run_passes_on_every_model() {
    for (name, wb) in all_workbenches() {
        let config = FuzzConfig { seed: 0, iters: 25, ..FuzzConfig::default() };
        let fuzzer = Fuzzer::new(&wb, config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = fuzzer.run();
        if let Some(failure) = &report.failure {
            panic!(
                "{name}: divergence at iteration {}: {}\n  original: {:?}\n  shrunk: {:?}",
                failure.iteration, failure.verdict, failure.original, failure.shrunk
            );
        }
        assert_eq!(report.iterations, 25, "{name}: run stopped early");
        assert!(
            report.halted + report.budget + report.errored == 25,
            "{name}: outcome counts inconsistent: {report:?}"
        );
    }
}

#[test]
fn injected_fault_is_caught_and_shrunk() {
    for (name, wb) in all_workbenches() {
        let failure =
            Fuzzer::self_check(&wb, 4).unwrap_or_else(|e| panic!("{name}: self-check failed: {e}"));
        assert!(
            failure.shrunk.len() <= 4,
            "{name}: shrunk to {} instructions",
            failure.shrunk.len()
        );
    }
}

#[test]
fn fuzzer_metrics_count_iterations_firings_and_shrink_steps() {
    use lisa_metrics::{MetricKey, MetricValue, Registry};

    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let reg = Registry::new();
    let count =
        |reg: &Registry, name: &str| match reg.snapshot().metrics.get(&MetricKey::new(name, &[])) {
            Some(&MetricValue::Counter(n)) => n,
            other => panic!("{name}: {other:?}"),
        };

    // A clean run: every iteration counted, no firings, no shrinking.
    let config = FuzzConfig { seed: 0, iters: 10, ..FuzzConfig::default() };
    let report = Fuzzer::new(&wb, config).unwrap().with_metrics(&reg).run();
    assert!(report.passed());
    assert_eq!(count(&reg, "lisa_conform_iterations_total"), 10);
    assert_eq!(count(&reg, "lisa_conform_oracle_firings_total"), 0);
    assert_eq!(count(&reg, "lisa_conform_shrink_steps_total"), 0);

    // A faulty backend: the oracle fires once and shrinking re-runs it.
    let reg = Registry::new();
    let config = FuzzConfig {
        seed: 0,
        iters: 4,
        fault: Some(Fault { at_cycle: 0 }),
        ..FuzzConfig::default()
    };
    let report = Fuzzer::new(&wb, config).unwrap().with_metrics(&reg).run();
    let failure = report.failure.expect("injected fault caught");
    assert_eq!(count(&reg, "lisa_conform_iterations_total"), failure.iteration + 1);
    assert_eq!(count(&reg, "lisa_conform_oracle_firings_total"), 1);
    assert!(count(&reg, "lisa_conform_shrink_steps_total") > 0, "shrinking evaluated candidates");
}

#[test]
fn fault_at_later_cycle_is_also_caught() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let config = FuzzConfig {
        seed: 3,
        iters: 8,
        fault: Some(Fault { at_cycle: 5 }),
        ..FuzzConfig::default()
    };
    let fuzzer = Fuzzer::new(&wb, config).unwrap();
    let report = fuzzer.run();
    assert!(report.failure.is_some(), "fault at cycle 5 went undetected: {report:?}");
}

//! Property tests for the coverage algebra and corpus distillation,
//! mirroring the merge suites in `lisa-probe` and `lisa-metrics`. The
//! fleet coordinator folds per-instance coverage maps in whatever order
//! responses arrive, and instances may re-report overlapping ranges, so
//! the merge must be a join-semilattice: associative, commutative, and
//! idempotent, with the empty map as identity. Distillation must be
//! lossless — replaying the distilled seed subset reaches exactly the
//! coverage of the run that produced it.

use lisa_conform::{distill, CoverageMap, ProgramGen, Rng};
use proptest::prelude::*;

/// `(path key, hit count)` samples; keys collide across samples on
/// purpose so merges exercise the per-key max.
type Samples = Vec<(u64, u64)>;

fn samples() -> impl Strategy<Value = Samples> {
    proptest::collection::vec((0u64..12, 1u64..50), 0..=10)
}

fn build(samples: &Samples) -> CoverageMap {
    let mut map = CoverageMap::new();
    for &(key, n) in samples {
        for _ in 0..n {
            map.record(key);
        }
    }
    map
}

fn merged(a: &CoverageMap, b: &CoverageMap) -> CoverageMap {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (a, b) = (build(&a), build(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_idempotent(a in samples()) {
        // Re-reporting the same instance's coverage must not inflate
        // anything: per-key max, not sum.
        let a = build(&a);
        prop_assert_eq!(merged(&a, &a), a);
    }

    #[test]
    fn empty_is_identity(a in samples()) {
        let a = build(&a);
        prop_assert_eq!(merged(&a, &CoverageMap::new()), a.clone());
        prop_assert_eq!(merged(&CoverageMap::new(), &a), a);
    }

    #[test]
    fn merge_never_loses_paths(a in samples(), b in samples()) {
        let (a, b) = (build(&a), build(&b));
        let m = merged(&a, &b);
        prop_assert!(m.covers(&a));
        prop_assert!(m.covers(&b));
        prop_assert_eq!(
            m.len(),
            merged(&a, &b).iter().count()
        );
    }

    #[test]
    fn json_round_trips(a in samples()) {
        let a = build(&a);
        let doc = lisa_metrics::json::parse(&a.to_json()).expect("valid JSON");
        prop_assert_eq!(CoverageMap::from_value(&doc).expect("parses back"), a);
    }

    #[test]
    fn distilled_subset_covers_the_union(sets in proptest::collection::vec(samples(), 0..=8)) {
        let maps: Vec<CoverageMap> = sets.iter().map(build).collect();
        let picked = distill(&maps);
        // Valid indices, no duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for &i in &picked {
            prop_assert!(i < maps.len());
            prop_assert!(seen.insert(i), "duplicate index {}", i);
        }
        // The subset reaches every path the full set reaches.
        let mut full = CoverageMap::new();
        for m in &maps {
            full.merge(m);
        }
        let mut subset = CoverageMap::new();
        for &i in &picked {
            subset.merge(&maps[i]);
        }
        prop_assert!(subset.covers(&full), "distillation lost paths");
        // And never picks a map contributing nothing new (minimality of
        // the greedy cover: every pick has positive marginal gain).
        prop_assert!(picked.len() <= full.len().max(1));
    }

    #[test]
    fn distillation_replays_to_identical_coverage_on_a_real_model(
        seed in 0u64..1000,
        start in 0u64..1000,
        iters in 1u64..24,
        max_len in 1usize..12,
    ) {
        // The real ProgramGen: programs are pure functions of
        // (seed, index), so the distilled indices regenerate programs
        // whose replayed coverage equals the generating run's — on any
        // machine, with no corpus bytes shipped.
        let wb = lisa_models::tinyrisc::workbench().expect("tinyrisc workbench");
        let gen = ProgramGen::new(&wb).expect("program generator");
        let per_program: Vec<(u64, CoverageMap)> = (start..start + iters)
            .map(|i| {
                let mut rng = Rng::for_iteration(seed, i);
                let words = gen.gen_program(&mut rng, max_len);
                (i, gen.coverage_of(&words))
            })
            .collect();
        let maps: Vec<CoverageMap> = per_program.iter().map(|(_, m)| m.clone()).collect();
        let mut full = CoverageMap::new();
        for m in &maps {
            full.merge(m);
        }
        // Replay: regenerate each distilled index from scratch.
        let mut replayed = CoverageMap::new();
        for &local in &distill(&maps) {
            let index = per_program[local].0;
            let mut rng = Rng::for_iteration(seed, index);
            let words = gen.gen_program(&mut rng, max_len);
            replayed.merge(&gen.coverage_of(&words));
        }
        // Coverage is a set of reached paths; hit counts are telemetry
        // and may legitimately differ between the full run and the
        // subset. The distilled replay must reach the exact path set.
        prop_assert!(replayed.covers(&full), "distilled replay must reach 100% of run coverage");
        prop_assert_eq!(replayed.len(), full.len(), "replay reached paths the run never did");
    }
}

//! One-shot corpus seeder (run manually, not part of the build).

use std::path::Path;

use lisa_conform::Reproducer;
use lisa_models::Workbench;

fn save(wb: &Workbench, model: &str, oracle: &str, program: &[&str], extra: &[u128]) {
    let mut words = wb.assemble(program).unwrap();
    words.extend_from_slice(extra);
    let rep = Reproducer { model: model.to_owned(), seed: 0, oracle: oracle.to_owned(), words };
    let path = rep.save(Path::new("tests/corpus")).unwrap();
    println!("{}", path.display());
}

fn main() {
    let tinyrisc = lisa_models::tinyrisc::workbench().unwrap();
    save(
        &tinyrisc,
        "tinyrisc",
        "lockstep",
        &["LDI R1, 7", "LDI R2, 5", "ADD R3, R1, R2", "MUL R4, R3, R1", "ST R4, R2", "HLT"],
        &[],
    );
    // Wild jump into the halt padding plus an undecodable word (0xe000):
    // both backends must agree on the decode error and on the landing.
    save(&tinyrisc, "tinyrisc", "lockstep", &["JMP 200"], &[0xe000]);

    let scalar2 = lisa_models::scalar2::workbench().unwrap();
    save(
        &scalar2,
        "scalar2",
        "snapshot-restore",
        &["LDI R1, 9", "LDI R2, 4", "ADD R3, R1, R2", "MUL R4, R3, R2", "HLT"],
        &[],
    );

    let accu16 = lisa_models::accu16::workbench().unwrap();
    save(
        &accu16,
        "accu16",
        "trace-parity",
        &["MOVI r1, 11", "MOVI r2, 3", "MPY r1, r2", "SAT16", "HLT"],
        &[],
    );

    let vliw62 = lisa_models::vliw62::workbench().unwrap();
    save(
        &vliw62,
        "vliw62",
        "batch-parity",
        &["MVK A1, 40", "MVK B1, 2", "ADD .L A2, A1, A1", "HALT"],
        &[],
    );
}

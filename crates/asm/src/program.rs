//! Two-pass program assembly and listing generation.

use std::collections::HashMap;
use std::fmt::Write as _;

use lisa_core::Model;
use lisa_isa::Decoder;

use crate::AsmError;

/// An assembled program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Word address the image loads at.
    pub origin: u64,
    /// The program words (instruction-width units).
    pub words: Vec<u128>,
    /// Label addresses (word units, absolute).
    pub labels: HashMap<String, u64>,
    /// Human-readable listing: address, word, source.
    pub listing: String,
}

/// A retargetable program assembler generated from a model database.
///
/// For VLIW targets, configure the fetch-packet size and p-bit with
/// [`Assembler::with_packet`]; `||`-joined lines then form execute
/// packets, chained by the p-bit and padded at fetch-packet boundaries.
#[derive(Debug)]
pub struct Assembler<'m> {
    model: &'m Model,
    decoder: Decoder<'m>,
    packet_size: Option<usize>,
    pbit_mask: u128,
}

/// One source statement after line-level parsing.
#[derive(Debug, Clone)]
enum Item {
    /// An execute packet: `(line, instruction text)` slots.
    Packet(Vec<(usize, String)>),
    Org(usize, u64),
    Word(u128),
    Align(u64),
}

impl<'m> Assembler<'m> {
    /// Creates a scalar (one instruction per word, no packets) assembler.
    ///
    /// # Panics
    ///
    /// Panics if the model has no decode root (no assemblable syntax).
    #[must_use]
    pub fn new(model: &'m Model) -> Self {
        let decoder = Decoder::new(model).expect("model has a decode root");
        Assembler { model, decoder, packet_size: None, pbit_mask: 1 }
    }

    /// Creates a VLIW assembler: `||` bars join execute packets,
    /// `pbit_mask` is OR-ed into every slot but the last, and execute
    /// packets never straddle a `packet_size`-word fetch packet.
    ///
    /// # Panics
    ///
    /// Panics if the model has no decode root or `packet_size` is zero.
    #[must_use]
    pub fn with_packet(model: &'m Model, packet_size: usize, pbit_mask: u128) -> Self {
        assert!(packet_size > 0, "packet size must be positive");
        let decoder = Decoder::new(model).expect("model has a decode root");
        Assembler { model, decoder, packet_size: Some(packet_size), pbit_mask }
    }

    /// Assembles a complete program.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] with the offending source line for label,
    /// directive, packing and instruction-syntax problems.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let (items, label_positions) = self.parse(source)?;
        let labels = self.layout(&items, &label_positions)?;
        self.emit(&items, &labels)
    }

    // -- parsing ---------------------------------------------------------

    /// Splits the source into items; labels are recorded by the item
    /// index they precede.
    #[allow(clippy::type_complexity)] // (items, [(label, item idx, line)])
    fn parse(&self, source: &str) -> Result<(Vec<Item>, Vec<(String, usize, usize)>), AsmError> {
        let mut items: Vec<Item> = Vec::new();
        let mut labels: Vec<(String, usize, usize)> = Vec::new(); // (name, item idx, line)
        let mut open_packet: Vec<(usize, String)> = Vec::new();

        let close_packet = |items: &mut Vec<Item>, open: &mut Vec<(usize, String)>| {
            if !open.is_empty() {
                items.push(Item::Packet(std::mem::take(open)));
            }
        };

        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = raw;
            // Strip comments: `;` or `//` to end of line.
            if let Some(pos) = line.find(';') {
                line = &line[..pos];
            }
            if let Some(pos) = line.find("//") {
                line = &line[..pos];
            }
            let mut line = line.trim();
            if line.is_empty() {
                continue;
            }

            // `||` joins this instruction to the open packet.
            if let Some(rest) = line.strip_prefix("||") {
                let text = rest.trim();
                if open_packet.is_empty() {
                    return Err(AsmError::DanglingParallelBar { line: line_no });
                }
                if text.is_empty() {
                    return Err(AsmError::DanglingParallelBar { line: line_no });
                }
                open_packet.push((line_no, text.to_owned()));
                continue;
            }

            // Leading labels (`name:`), possibly several.
            while let Some(colon) = line.find(':') {
                let candidate = line[..colon].trim();
                if candidate.is_empty()
                    || !candidate.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                    || candidate.starts_with(|c: char| c.is_ascii_digit())
                {
                    break;
                }
                // A new statement starts here: close any open packet so the
                // label binds to the next placement.
                close_packet(&mut items, &mut open_packet);
                labels.push((candidate.to_owned(), items.len(), line_no));
                line = line[colon + 1..].trim();
            }
            if line.is_empty() {
                continue;
            }

            if let Some(directive) = line.strip_prefix('.') {
                close_packet(&mut items, &mut open_packet);
                items.push(self.parse_directive(directive, line_no)?);
                continue;
            }

            // A plain instruction starts a new packet.
            close_packet(&mut items, &mut open_packet);
            open_packet.push((line_no, line.to_owned()));
        }
        close_packet(&mut items, &mut open_packet);
        Ok((items, labels))
    }

    fn parse_directive(&self, text: &str, line: usize) -> Result<Item, AsmError> {
        let mut parts = text.split_whitespace();
        let name = parts.next().unwrap_or("");
        let arg = parts.next();
        let bad = || AsmError::BadDirective { line, text: format!(".{text}") };
        let parse_num = |s: &str| -> Option<u64> {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            }
        };
        match name {
            "org" => {
                let addr = arg.and_then(parse_num).ok_or_else(bad)?;
                Ok(Item::Org(line, addr))
            }
            "align" => {
                let n = arg.and_then(parse_num).ok_or_else(bad)?;
                if n == 0 || !n.is_power_of_two() {
                    return Err(bad());
                }
                Ok(Item::Align(n))
            }
            "word" => {
                let raw = arg.ok_or_else(bad)?;
                let value = if let Some(neg) = raw.strip_prefix('-') {
                    let v: u64 = parse_num(neg).ok_or_else(bad)?;
                    (v as i64).wrapping_neg() as u64 as u128
                } else {
                    u128::from(parse_num(raw).ok_or_else(bad)?)
                };
                Ok(Item::Word(value))
            }
            _ => Err(bad()),
        }
    }

    // -- layout ------------------------------------------------------------

    /// Computes label addresses. Layout never depends on label values
    /// (every instruction is one word), so one pass suffices.
    fn layout(
        &self,
        items: &[Item],
        label_positions: &[(String, usize, usize)],
    ) -> Result<HashMap<String, u64>, AsmError> {
        // Address of each item start (after packet padding).
        let mut item_addr = vec![0u64; items.len() + 1];
        let mut addr: u64 = 0;
        for (i, item) in items.iter().enumerate() {
            addr = match item {
                Item::Packet(slots) => {
                    let padded = self.pad_for_packet(addr, slots.len(), slots[0].0)?;
                    item_addr[i] = padded;
                    padded + slots.len() as u64
                }
                Item::Org(line, target) => {
                    if *target < addr {
                        return Err(AsmError::OrgBackwards {
                            line: *line,
                            requested: *target,
                            current: addr,
                        });
                    }
                    item_addr[i] = *target;
                    *target
                }
                Item::Word(_) => {
                    item_addr[i] = addr;
                    addr + 1
                }
                Item::Align(n) => {
                    let aligned = addr.next_multiple_of(*n);
                    item_addr[i] = aligned;
                    aligned
                }
            };
        }
        item_addr[items.len()] = addr;

        let mut labels = HashMap::new();
        for (name, item_idx, line) in label_positions {
            if labels.insert(name.clone(), item_addr[*item_idx]).is_some() {
                return Err(AsmError::DuplicateLabel { line: *line, label: name.clone() });
            }
        }
        Ok(labels)
    }

    /// The placement address of a packet starting at `addr`, applying the
    /// no-straddle rule.
    fn pad_for_packet(&self, addr: u64, len: usize, line: usize) -> Result<u64, AsmError> {
        let Some(ps) = self.packet_size else { return Ok(addr) };
        if len > ps {
            return Err(AsmError::PacketTooLong { line, packet_size: ps });
        }
        let pos = (addr % ps as u64) as usize;
        if pos + len > ps {
            Ok(addr + (ps - pos) as u64)
        } else {
            Ok(addr)
        }
    }

    // -- emission ---------------------------------------------------------

    fn emit(&self, items: &[Item], labels: &HashMap<String, u64>) -> Result<Program, AsmError> {
        let isa = lisa_isa::Assembler::new(self.model, &self.decoder);
        let pad_word = self.pad_word(&isa);
        let origin = match items.first() {
            Some(Item::Org(_, addr)) => *addr,
            _ => 0,
        };
        let mut words: Vec<u128> = Vec::new();
        let mut listing = String::new();
        let mut addr = origin;
        let at = |words: &Vec<u128>, origin: u64| origin + words.len() as u64;

        let pad_to = |words: &mut Vec<u128>, listing: &mut String, target: u64| {
            while at(words, origin) < target {
                let a = at(words, origin);
                let _ = writeln!(listing, "{a:06x}  {pad_word:08x}      ; <pad>");
                words.push(pad_word);
            }
        };

        for item in items {
            match item {
                Item::Org(_, target) => {
                    if words.is_empty() && *target == origin {
                        addr = *target;
                        continue;
                    }
                    pad_to(&mut words, &mut listing, *target);
                    addr = *target;
                }
                Item::Align(n) => {
                    let target = at(&words, origin).next_multiple_of(*n);
                    pad_to(&mut words, &mut listing, target);
                    addr = target;
                }
                Item::Word(value) => {
                    let a = at(&words, origin);
                    let _ = writeln!(listing, "{a:06x}  {value:08x}      ; .word");
                    words.push(*value);
                    addr = a + 1;
                }
                Item::Packet(slots) => {
                    let placed = self
                        .pad_for_packet(at(&words, origin), slots.len(), slots[0].0)
                        .expect("validated in layout");
                    pad_to(&mut words, &mut listing, placed);
                    let n = slots.len();
                    for (i, (line, text)) in slots.iter().enumerate() {
                        let resolved = substitute_labels(text, labels);
                        let decoded = isa
                            .assemble_instruction(&resolved)
                            .map_err(|source| AsmError::Instruction { line: *line, source })?;
                        let mut word = decoded
                            .encode(self.model)
                            .map_err(|source| AsmError::Instruction { line: *line, source })?
                            .to_u128();
                        if self.packet_size.is_some() && i + 1 < n {
                            word |= self.pbit_mask;
                        }
                        let a = at(&words, origin);
                        let bar = if i > 0 { "|| " } else { "" };
                        let _ = writeln!(listing, "{a:06x}  {word:08x}      {bar}{text}");
                        words.push(word);
                    }
                    addr = at(&words, origin);
                }
            }
        }
        let _ = addr;
        // Final fetch-packet padding for VLIW targets.
        if let Some(ps) = self.packet_size {
            let target = at(&words, origin).next_multiple_of(ps as u64);
            pad_to(&mut words, &mut listing, target);
        }
        Ok(Program { origin, words, labels: labels.clone(), listing })
    }

    /// The word used for padding: an assembled `NOP`/`NOP 1` when the
    /// model has one, zero otherwise.
    fn pad_word(&self, isa: &lisa_isa::Assembler<'_>) -> u128 {
        for candidate in ["NOP 1", "NOP"] {
            if let Ok(decoded) = isa.assemble_instruction(candidate) {
                if let Ok(bits) = decoded.encode(self.model) {
                    return bits.to_u128();
                }
            }
        }
        0
    }

    /// Disassembles a program image into a listing.
    #[must_use]
    pub fn disassemble_listing(&self, words: &[u128], origin: u64) -> String {
        let isa = lisa_isa::Assembler::new(self.model, &self.decoder);
        let mut out = String::new();
        for (i, &word) in words.iter().enumerate() {
            let addr = origin + i as u64;
            let text = match self.decoder.decode(word & !self.pbit_mask_if_packet()) {
                Ok(decoded) => isa.disassemble(&decoded),
                Err(_) => "<data>".to_owned(),
            };
            let parallel = if self.packet_size.is_some() && i > 0 {
                // The p-bit of the *previous* word chains this one.
                if words[i - 1] & self.pbit_mask != 0 {
                    "|| "
                } else {
                    ""
                }
            } else {
                ""
            };
            let _ = writeln!(out, "{addr:06x}  {word:08x}      {parallel}{text}");
        }
        out
    }

    fn pbit_mask_if_packet(&self) -> u128 {
        if self.packet_size.is_some() {
            self.pbit_mask
        } else {
            0
        }
    }
}

/// Replaces identifiers matching labels with their decimal addresses,
/// respecting token boundaries.
fn substitute_labels(text: &str, labels: &HashMap<String, u64>) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' || c == '.' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                    i += 1;
                } else {
                    break;
                }
            }
            let token = &text[start..i];
            match labels.get(token) {
                Some(addr) => {
                    let _ = write!(out, "{addr}");
                }
                None => out.push_str(token),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_models::{tinyrisc, vliw62};
    use lisa_sim::SimMode;

    #[test]
    fn labels_and_branches_resolve() {
        let wb = tinyrisc::workbench().unwrap();
        let asm = Assembler::new(wb.model());
        let program = asm
            .assemble(
                r#"
                LDI R1, 5        ; counter
                LDI R2, 0
                LDI R3, 1
        loop:   ADD R2, R2, R1
                SUB R1, R1, R3
                BNZ loop
                HLT
                "#,
            )
            .expect("assembles");
        assert_eq!(program.labels["loop"], 3);
        assert_eq!(program.origin, 0);
        // Run it: 5+4+3+2+1.
        let mut sim = wb.simulator(SimMode::Compiled).unwrap();
        sim.load_program("pmem", &program.words).unwrap();
        wb.run_to_halt(&mut sim, 1000).unwrap();
        let r = wb.model().resource_by_name("R").unwrap();
        assert_eq!(sim.state().read_int(r, &[2]).unwrap(), 15);
    }

    #[test]
    fn org_word_align_directives() {
        let wb = tinyrisc::workbench().unwrap();
        let asm = Assembler::new(wb.model());
        let program = asm
            .assemble(
                r#"
                .org 4
        start:  LDI R1, 1
                .align 8
        data:   .word 0xBEEF
                .word -2
                "#,
            )
            .expect("assembles");
        assert_eq!(program.origin, 4);
        assert_eq!(program.labels["start"], 4);
        assert_eq!(program.labels["data"], 8);
        // Words: LDI at 4, pads at 5..8, data at 8..10.
        assert_eq!(program.words.len(), 6);
        assert_eq!(program.words[4], 0xBEEF);
        assert_eq!(program.words[5], 0xFFFF_FFFF_FFFF_FFFE);
    }

    #[test]
    fn vliw_parallel_bars_and_packing() {
        let wb = vliw62::workbench().unwrap();
        let asm = Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1);
        let program = asm
            .assemble(
                r#"
                MVK A2, 5
                MVK B2, 0
                MVK B3, 1
        loop:   ADD .L B2, B2, A2
             || SUB .L A2, A2, B3    ; same execute packet
             || MVK B4, 9
                MVK B5, 1
                HALT
                "#,
            )
            .expect("assembles");
        assert_eq!(program.labels["loop"], 3);
        // p-bits chain the three parallel slots.
        assert_eq!(program.words[3] & 1, 1);
        assert_eq!(program.words[4] & 1, 1);
        assert_eq!(program.words[5] & 1, 0);
        // Image padded to a whole fetch packet.
        assert_eq!(program.words.len() % vliw62::FETCH_PACKET, 0);
    }

    #[test]
    fn vliw_packets_do_not_straddle_fetch_boundaries() {
        let wb = vliw62::workbench().unwrap();
        let asm = Assembler::with_packet(wb.model(), 8, 1);
        // Six single-slot packets, then a 4-slot packet: must start at 8.
        let mut src = String::new();
        for i in 1..=6 {
            src.push_str(&format!("MVK A{i}, {i}\n"));
        }
        src.push_str(
            "wide: ADD .L A2, A3, A4\n || ADD .L B2, B3, B4\n || SUB .L A5, A5, A6\n || SUB .L B5, B5, B6\nHALT\n",
        );
        let program = asm.assemble(&src).expect("assembles");
        assert_eq!(program.labels["wide"], 8, "wide packet pushed to next fetch packet");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let wb = tinyrisc::workbench().unwrap();
        let asm = Assembler::new(wb.model());
        let err = asm.assemble("LDI R1, 1\nFROB R1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = asm.assemble("|| ADD R1, R2, R3\n").unwrap_err();
        assert!(matches!(err, AsmError::DanglingParallelBar { line: 1 }));
        let err = asm.assemble("x: LDI R1, 1\nx: HLT\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { .. }));
        let err = asm.assemble(".bogus 3\n").unwrap_err();
        assert!(matches!(err, AsmError::BadDirective { .. }));
        let err = asm.assemble("LDI R1, 1\n.org 0\nHLT\n").unwrap_err();
        assert!(matches!(err, AsmError::OrgBackwards { .. }));
    }

    #[test]
    fn listing_round_trips_through_disassembly() {
        let wb = tinyrisc::workbench().unwrap();
        let asm = Assembler::new(wb.model());
        let program = asm.assemble("LDI R1, -3\nADD R2, R1, R1\nHLT\n").unwrap();
        assert!(program.listing.contains("LDI R1, -3"));
        let listing = asm.disassemble_listing(&program.words, 0);
        assert!(listing.contains("LDI R1, -3"), "{listing}");
        assert!(listing.contains("ADD R2, R1, R1"));
        assert!(listing.contains("HLT"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let wb = tinyrisc::workbench().unwrap();
        let asm = Assembler::new(wb.model());
        let program =
            asm.assemble("; header\n\n  // also a comment\nHLT ; trailing\n").expect("assembles");
        assert_eq!(program.words.len(), 1);
    }
}

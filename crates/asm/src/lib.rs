//! Program-level retargetable assembler and disassembler.
//!
//! The paper's tool environment generates an assembler from the LISA
//! description (§1, §4.1). `lisa-isa` provides the *instruction-level*
//! syntax matching; this crate adds what a programmer needs for whole
//! programs:
//!
//! * **labels** (`loop:`) usable as numeric operands (branch targets,
//!   address constants), resolved in two passes;
//! * **directives**: `.org` (load address), `.word` (literal data),
//!   `.align` (power-of-two alignment);
//! * **parallel-issue bars** (`||`) for VLIW targets: bar-joined lines
//!   form one execute packet, p-bits are set automatically, and execute
//!   packets are padded so they never straddle a fetch-packet boundary
//!   (the C62x packing rule);
//! * **listings**: address + encoded word + source per line.
//!
//! # Examples
//!
//! ```
//! use lisa_asm::Assembler;
//! use lisa_models::tinyrisc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = tinyrisc::workbench()?;
//! let program = Assembler::new(wb.model()).assemble(r#"
//!         LDI R1, 5
//!         LDI R2, 0
//! loop:   ADD R2, R2, R1
//!         SUB R1, R1, R3   ; R3 is zero: infinite-loop guard elided
//!         BNZ loop
//!         HLT
//! "#)?;
//! assert_eq!(program.labels["loop"], 2);
//! assert_eq!(program.words.len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod program;

pub use error::AsmError;
pub use program::{Assembler, Program};

//! Program-assembly errors, annotated with source line numbers.

use std::error::Error;
use std::fmt;

use lisa_isa::IsaError;

/// An error while assembling a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AsmError {
    /// An instruction failed to assemble.
    Instruction {
        /// 1-based source line.
        line: usize,
        /// The underlying instruction-level error.
        source: IsaError,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// 1-based source line of the second definition.
        line: usize,
        /// The label name.
        label: String,
    },
    /// A malformed or unknown directive.
    BadDirective {
        /// 1-based source line.
        line: usize,
        /// The directive text.
        text: String,
    },
    /// A `||` bar without a preceding instruction to join.
    DanglingParallelBar {
        /// 1-based source line.
        line: usize,
    },
    /// An execute packet holds more slots than a fetch packet.
    PacketTooLong {
        /// 1-based source line of the overflowing slot.
        line: usize,
        /// Configured fetch-packet size.
        packet_size: usize,
    },
    /// A label name is also a valid instruction operand, or shadows a
    /// directive — not resolvable.
    BadLabelName {
        /// 1-based source line.
        line: usize,
        /// The label name.
        label: String,
    },
    /// `.org` went backwards over already-emitted words.
    OrgBackwards {
        /// 1-based source line.
        line: usize,
        /// Requested address.
        requested: u64,
        /// Current address.
        current: u64,
    },
}

impl AsmError {
    /// The 1-based source line the error points at.
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            AsmError::Instruction { line, .. }
            | AsmError::DuplicateLabel { line, .. }
            | AsmError::BadDirective { line, .. }
            | AsmError::DanglingParallelBar { line }
            | AsmError::PacketTooLong { line, .. }
            | AsmError::BadLabelName { line, .. }
            | AsmError::OrgBackwards { line, .. } => *line,
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Instruction { line, source } => write!(f, "line {line}: {source}"),
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::BadDirective { line, text } => {
                write!(f, "line {line}: bad directive `{text}`")
            }
            AsmError::DanglingParallelBar { line } => {
                write!(f, "line {line}: `||` with no instruction to join")
            }
            AsmError::PacketTooLong { line, packet_size } => {
                write!(f, "line {line}: execute packet exceeds the {packet_size}-slot fetch packet")
            }
            AsmError::BadLabelName { line, label } => {
                write!(f, "line {line}: label `{label}` is not a valid name")
            }
            AsmError::OrgBackwards { line, requested, current } => {
                write!(
                    f,
                    "line {line}: .org {requested:#x} is behind the current address {current:#x}"
                )
            }
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Instruction { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_numbers_and_messages() {
        let err = AsmError::DuplicateLabel { line: 7, label: "loop".into() };
        assert_eq!(err.line(), 7);
        assert!(err.to_string().contains("line 7"));
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<AsmError>();
    }
}

//! VLIW program-assembly coverage: listings with parallel bars,
//! origin handling, data interleaved with code, and listing/disassembly
//! agreement on packed images.

use lisa_asm::Assembler;
use lisa_models::vliw62;

#[test]
fn vliw_listing_shows_bars_and_pads() {
    let wb = vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1);
    let program =
        asm.assemble("MVK A2, 1\n || MVK B2, 2\n || MVK A3, 3\nHALT\n").expect("assembles");
    let listing = &program.listing;
    assert!(listing.contains("|| MVK B2, 2"), "{listing}");
    assert!(listing.contains("|| MVK A3, 3"), "{listing}");
    assert!(!listing.lines().next().unwrap().contains("||"), "first slot unbarred");
    // Final fetch-packet padding appears as <pad> lines.
    assert!(listing.contains("<pad>"), "{listing}");
    assert_eq!(program.words.len(), vliw62::FETCH_PACKET);
}

#[test]
fn disassembled_listing_reconstructs_bars() {
    let wb = vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1);
    let program =
        asm.assemble("ADD .L A2, A3, A4\n || SUB .L B2, B3, B4\nHALT\n").expect("assembles");
    let listing = asm.disassemble_listing(&program.words, 0);
    let lines: Vec<&str> = listing.lines().collect();
    assert!(lines[0].contains("ADD .L A2, A3, A4"), "{listing}");
    assert!(lines[1].contains("|| SUB .L B2, B3, B4"), "{listing}");
    assert!(!lines[2].contains("||"), "HALT is its own packet: {listing}");
}

#[test]
fn data_words_between_code_disassemble_as_data_or_nop() {
    let wb = vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1);
    let program = asm
        .assemble(
            r#"
            MVK A2, 1
            .align 8
    table:  .word 0xDEADBEEF
            .word 3
            "#,
        )
        .expect("assembles");
    assert_eq!(program.labels["table"], 8);
    assert_eq!(program.words[8], 0xDEAD_BEEF);
    assert_eq!(program.words[9], 3);
    // 0xDEADBEEF has opcode bits that do not decode; shown as data.
    let listing = asm.disassemble_listing(&program.words, 0);
    assert!(listing.contains("deadbeef"), "{listing}");
}

#[test]
fn origin_is_respected_in_listing_addresses() {
    let wb = lisa_models::accu16::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    let program = asm.assemble(".org 0x100\nCLR\nHLT\n").expect("assembles");
    assert_eq!(program.origin, 0x100);
    let first = program.listing.lines().next().unwrap();
    assert!(first.starts_with("000100"), "{first}");
}

#[test]
fn labels_work_across_org_gaps() {
    let wb = vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1);
    let program = asm
        .assemble(
            r#"
            B isr
            NOP 5
            HALT
            .org 32
    isr:    MVK A2, 1
            HALT
            "#,
        )
        .expect("assembles");
    assert_eq!(program.labels["isr"], 32);
    // The branch target field encodes 32.
    let b_word = program.words[0];
    assert_eq!(b_word >> 1 & 0x1F_FFFF, 32, "B target is the label address");
    // The gap between HALT and .org 32 is padded.
    assert_eq!(program.words.len(), 40, "padded to the packet after the ISR");
}

#[test]
fn packet_too_long_is_reported() {
    let wb = vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), 4, 1); // artificially small
    let mut src = String::from("MVK A2, 1\n");
    for i in 3..=7 {
        src.push_str(&format!(" || MVK A{i}, {i}\n"));
    }
    let err = asm.assemble(&src).unwrap_err();
    assert!(matches!(err, lisa_asm::AsmError::PacketTooLong { packet_size: 4, .. }));
}

//! Error-path coverage for the program-level assembler: every rejected
//! source construct must come back as a typed [`AsmError`] pointing at
//! the offending line, with the message asserted — no panics.

use lisa_asm::{AsmError, Assembler};

#[test]
fn duplicate_label_names_the_label_and_line() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    let err = asm.assemble("x: NOP\nx: NOP\n").unwrap_err();
    assert_eq!(err.line(), 2);
    assert_eq!(err.to_string(), "line 2: duplicate label `x`");
    assert!(matches!(err, AsmError::DuplicateLabel { ref label, .. } if label == "x"));
}

#[test]
fn unknown_directive_is_reported_verbatim() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    let err = asm.assemble(".bogus 3\n").unwrap_err();
    assert_eq!(err.line(), 1);
    assert_eq!(err.to_string(), "line 1: bad directive `.bogus 3`");
}

#[test]
fn bad_mnemonic_points_at_its_source_line() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    let err = asm.assemble("NOP\nFROB 1\nNOP\n").unwrap_err();
    assert_eq!(err.line(), 2);
    assert_eq!(err.to_string(), "line 2: no instruction syntax matches `FROB 1`");
    assert!(matches!(err, AsmError::Instruction { .. }));
}

#[test]
fn out_of_range_operand_points_at_its_source_line() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    // LDI's immediate is 8 bits; 99999 cannot encode.
    let err = asm.assemble("NOP\nNOP\nLDI R1, 99999\n").unwrap_err();
    assert_eq!(err.line(), 3);
    assert_eq!(err.to_string(), "line 3: no instruction syntax matches `LDI R1, 99999`");
}

#[test]
fn dangling_parallel_bar_is_rejected() {
    let wb = lisa_models::vliw62::workbench().unwrap();
    let asm = Assembler::with_packet(wb.model(), lisa_models::vliw62::FETCH_PACKET, 1);
    let err = asm.assemble("|| ADD .L1 A1, A2, A3\n").unwrap_err();
    assert_eq!(err.line(), 1);
    assert_eq!(err.to_string(), "line 1: `||` with no instruction to join");
    assert!(matches!(err, AsmError::DanglingParallelBar { .. }));
}

#[test]
fn org_going_backwards_reports_both_addresses() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    let err = asm.assemble("NOP\nNOP\n.org 1\nNOP\n").unwrap_err();
    assert_eq!(err.line(), 3);
    assert_eq!(err.to_string(), "line 3: .org 0x1 is behind the current address 0x2");
    assert!(matches!(err, AsmError::OrgBackwards { requested: 1, current: 2, .. }));
}

#[test]
fn errors_are_diagnostics_not_panics_across_junk_sources() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let asm = Assembler::new(wb.model());
    for source in [
        "",
        "\n\n\n",
        ":",
        "x:",
        "x: y: NOP",
        ".org\n",
        ".org zzz\n",
        "|| NOP\n",
        "LDI R1,\n",
        "LDI , 1\n",
        "\u{fffd}\u{fffd}\n",
    ] {
        // Ok or Err are both acceptable; panicking is not.
        let _ = asm.assemble(source);
    }
}

//! A workbench bundles a model with its generated tools, the way the
//! paper's environment configures every tool from one description.

use std::error::Error;
use std::fmt;

use lisa_core::{LisaError, Model};
use lisa_isa::{Assembler, Decoded, Decoder, IsaError};
use lisa_sim::{SimError, SimMode, Simulator};

/// An error from building or using a workbench.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkbenchError {
    /// The LISA source failed to parse or analyse.
    Lisa(LisaError),
    /// A generated ISA tool failed.
    Isa(IsaError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for WorkbenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkbenchError::Lisa(e) => write!(f, "{e}"),
            WorkbenchError::Isa(e) => write!(f, "{e}"),
            WorkbenchError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for WorkbenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkbenchError::Lisa(e) => Some(e),
            WorkbenchError::Isa(e) => Some(e),
            WorkbenchError::Sim(e) => Some(e),
        }
    }
}

impl From<LisaError> for WorkbenchError {
    fn from(e: LisaError) -> Self {
        WorkbenchError::Lisa(e)
    }
}

impl From<IsaError> for WorkbenchError {
    fn from(e: IsaError) -> Self {
        WorkbenchError::Isa(e)
    }
}

impl From<SimError> for WorkbenchError {
    fn from(e: SimError) -> Self {
        WorkbenchError::Sim(e)
    }
}

/// A model plus the program-memory resource its programs load into.
///
/// Owns the [`Model`]; generated tools borrow from it via
/// [`Workbench::decoder`], [`Workbench::assemble`] and
/// [`Workbench::simulator`].
///
/// # Examples
///
/// ```
/// use lisa_models::{tinyrisc, Workbench};
/// use lisa_sim::SimMode;
///
/// # fn main() -> Result<(), lisa_models::WorkbenchError> {
/// let wb = tinyrisc::workbench()?;
/// let words = wb.assemble(&["LDI R1, 2", "LDI R2, 3", "ADD R3, R1, R2", "HLT"])?;
/// let mut sim = wb.simulator(SimMode::Compiled)?;
/// sim.load_program(wb.program_memory(), &words)?;
/// wb.run_to_halt(&mut sim, 1000)?;
/// let r = wb.model().resource_by_name("R").expect("register file");
/// assert_eq!(sim.state().read_int(r, &[3])?, 5);
/// # Ok(())
/// # }
/// ```
pub struct Workbench {
    model: Model,
    program_memory: &'static str,
    halt_flag: &'static str,
}

impl Workbench {
    /// Builds a workbench from LISA source.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Lisa`] when the source does not parse or
    /// analyse.
    pub fn from_source(
        source: &str,
        program_memory: &'static str,
        halt_flag: &'static str,
    ) -> Result<Workbench, WorkbenchError> {
        Ok(Workbench { model: Model::from_source(source)?, program_memory, halt_flag })
    }

    /// The model database.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Name of the program memory programs load into.
    #[must_use]
    pub fn program_memory(&self) -> &'static str {
        self.program_memory
    }

    /// Name of the halt-flag resource.
    #[must_use]
    pub fn halt_flag(&self) -> &'static str {
        self.halt_flag
    }

    /// Builds the generated decoder.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Isa`] if the model has no decode root.
    pub fn decoder(&self) -> Result<Decoder<'_>, WorkbenchError> {
        Ok(Decoder::new(&self.model)?)
    }

    /// Assembles statements into instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Isa`] for syntax mismatches or encoding
    /// failures.
    pub fn assemble(&self, statements: &[&str]) -> Result<Vec<u128>, WorkbenchError> {
        let decoder = self.decoder()?;
        let asm = Assembler::new(&self.model, &decoder);
        statements
            .iter()
            .map(|s| Ok(asm.assemble_instruction(s)?.encode(&self.model)?.to_u128()))
            .collect()
    }

    /// Assembles one statement into a decoded tree (for inspection).
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Isa`] when no syntax matches.
    pub fn assemble_one(&self, statement: &str) -> Result<Decoded, WorkbenchError> {
        let decoder = self.decoder()?;
        let asm = Assembler::new(&self.model, &decoder);
        Ok(asm.assemble_instruction(statement)?)
    }

    /// Disassembles an instruction word to canonical text.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Isa`] when the word does not decode.
    pub fn disassemble(&self, word: u128) -> Result<String, WorkbenchError> {
        let decoder = self.decoder()?;
        let asm = Assembler::new(&self.model, &decoder);
        let decoded = decoder.decode(word)?;
        Ok(asm.disassemble(&decoded))
    }

    /// Creates a simulator in the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Sim`] when compiled lowering fails.
    pub fn simulator(&self, mode: SimMode) -> Result<Simulator<'_>, WorkbenchError> {
        Ok(Simulator::new(&self.model, mode)?)
    }

    /// Runs a simulator until the model's halt flag becomes nonzero.
    ///
    /// Returns the number of control steps taken.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Sim`] on runtime errors or when
    /// `max_steps` is exceeded.
    pub fn run_to_halt(
        &self,
        sim: &mut Simulator<'_>,
        max_steps: u64,
    ) -> Result<u64, WorkbenchError> {
        let halt = self
            .model
            .resource_by_name(self.halt_flag)
            .unwrap_or_else(|| panic!("model has halt flag `{}`", self.halt_flag))
            .clone();
        Ok(sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, max_steps)?.cycles)
    }

    /// Convenience: assemble, load, run to halt in the given mode; returns
    /// the simulator for state inspection.
    ///
    /// # Errors
    ///
    /// Any assembly or simulation error.
    pub fn run_program(
        &self,
        statements: &[&str],
        mode: SimMode,
        max_steps: u64,
    ) -> Result<Simulator<'_>, WorkbenchError> {
        let words = self.assemble(statements)?;
        let mut sim = self.simulator(mode)?;
        // load_program pre-decodes automatically in compiled mode.
        sim.load_program(self.program_memory, &words)?;
        self.run_to_halt(&mut sim, max_steps)?;
        Ok(sim)
    }
}

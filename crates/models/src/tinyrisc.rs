//! `tinyrisc` — a 16-bit, 8-register teaching core.
//!
//! The smallest complete LISA model in the suite: one instruction per
//! 16-bit word, no pipeline, fetch-decode-execute driven from `main`.
//! Used by the quickstart example and as a fast target for tool tests.

use crate::{Workbench, WorkbenchError};

/// The LISA description of the core.
pub const SOURCE: &str = r#"
// tinyrisc: 16-bit teaching core.
// Format (msb..lsb): opcode[4] | fields[12].

RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int R[8];
    REGISTER bit halt;
    REGISTER bit zflag;
    DATA_MEMORY int dmem[256];
    PROGRAM_MEMORY int pmem[256];
}

OPERATION reg {
    DECLARE { LABEL index; }
    CODING { index:0bx[3] }
    SYNTAX { "R" index:#u }
    EXPRESSION { R[index] }
}

OPERATION imm6 {
    DECLARE { LABEL value; }
    CODING { value:0bx[6] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 6) }
}

OPERATION addr8 {
    DECLARE { LABEL value; }
    CODING { value:0bx[8] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION ldi {
    DECLARE { GROUP Dest = { reg }; GROUP Val = { imm6 }; }
    CODING { 0b0001 Dest Val 0bx[3] }
    SYNTAX { "LDI" Dest "," Val }
    SEMANTICS { LOAD_IMMEDIATE(Dest, Val) }
    BEHAVIOR { Dest = Val; zflag = Dest == 0; }
}

OPERATION add {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0010 Dest Src1 Src2 0bx[3] }
    SYNTAX { "ADD" Dest "," Src1 "," Src2 }
    SEMANTICS { ADD(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 + Src2; zflag = Dest == 0; }
}

OPERATION sub {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0011 Dest Src1 Src2 0bx[3] }
    SYNTAX { "SUB" Dest "," Src1 "," Src2 }
    SEMANTICS { SUB(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 - Src2; zflag = Dest == 0; }
}

OPERATION mul {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0100 Dest Src1 Src2 0bx[3] }
    SYNTAX { "MUL" Dest "," Src1 "," Src2 }
    SEMANTICS { MUL(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 * Src2; zflag = Dest == 0; }
}

OPERATION and_op {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0101 Dest Src1 Src2 0bx[3] }
    SYNTAX { "AND" Dest "," Src1 "," Src2 }
    SEMANTICS { AND(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 & Src2; zflag = Dest == 0; }
}

OPERATION or_op {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0110 Dest Src1 Src2 0bx[3] }
    SYNTAX { "OR" Dest "," Src1 "," Src2 }
    SEMANTICS { OR(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 | Src2; zflag = Dest == 0; }
}

OPERATION xor_op {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0111 Dest Src1 Src2 0bx[3] }
    SYNTAX { "XOR" Dest "," Src1 "," Src2 }
    SEMANTICS { XOR(Dest, Src1, Src2) }
    BEHAVIOR { Dest = Src1 ^ Src2; zflag = Dest == 0; }
}

// MV is pure instruction aliasing: OR Rd, Rs, Rs.
OPERATION mv ALIAS {
    DECLARE { GROUP Dest, Src = { reg }; }
    CODING { 0b0110 Dest Src Src 0bx[3] }
    SYNTAX { "MV" Dest "," Src }
    SEMANTICS { MOVE(Dest, Src) }
}

OPERATION shl {
    DECLARE { GROUP Dest, Src = { reg }; GROUP Amount = { imm6 }; }
    CODING { 0b1000 Dest Src Amount }
    SYNTAX { "SHL" Dest "," Src "," Amount:#u }
    SEMANTICS { SHIFT_LEFT(Dest, Src, Amount) }
    BEHAVIOR { Dest = Src << Amount; zflag = Dest == 0; }
}

OPERATION ld {
    DECLARE { GROUP Dest = { reg }; GROUP Base = { reg }; }
    CODING { 0b1001 Dest Base 0bx[6] }
    SYNTAX { "LD" Dest "," Base }
    SEMANTICS { LOAD(Dest, Base) }
    BEHAVIOR { Dest = dmem[Base & 255]; zflag = Dest == 0; }
}

OPERATION st {
    DECLARE { GROUP Src = { reg }; GROUP Base = { reg }; }
    CODING { 0b1010 Src Base 0bx[6] }
    SYNTAX { "ST" Src "," Base }
    SEMANTICS { STORE(Src, Base) }
    BEHAVIOR { dmem[Base & 255] = Src; }
}

OPERATION bz {
    DECLARE { GROUP Target = { addr8 }; }
    CODING { 0b1011 Target 0bx[4] }
    SYNTAX { "BZ" Target }
    SEMANTICS { BRANCH_IF_ZERO(Target) }
    BEHAVIOR { if (zflag) { pc = Target - 1; } }
}

OPERATION bnz {
    DECLARE { GROUP Target = { addr8 }; }
    CODING { 0b1100 Target 0bx[4] }
    SYNTAX { "BNZ" Target }
    SEMANTICS { BRANCH_IF_NOT_ZERO(Target) }
    BEHAVIOR { if (!zflag) { pc = Target - 1; } }
}

OPERATION jmp {
    DECLARE { GROUP Target = { addr8 }; }
    CODING { 0b1101 Target 0bx[4] }
    SYNTAX { "JMP" Target }
    SEMANTICS { JUMP(Target) }
    BEHAVIOR { pc = Target - 1; }
}

OPERATION hlt {
    CODING { 0b1111 0bx[12] }
    SYNTAX { "HLT" }
    SEMANTICS { HALT() }
    BEHAVIOR { halt = 1; }
}

OPERATION nop {
    CODING { 0b0000 0bx[12] }
    SYNTAX { "NOP" }
    SEMANTICS { NO_OPERATION() }
    BEHAVIOR { }
}

OPERATION decode {
    DECLARE {
        GROUP Instruction = {
            nop || ldi || add || sub || mul || and_op || or_op || xor_op ||
            mv || shl || ld || st || bz || bnz || jmp || hlt
        };
    }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION fetch {
    BEHAVIOR { ir = pmem[pc]; }
}

OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            fetch;
            decode;
            pc = pc + 1;
        }
    }
}
"#;

/// Builds the workbench for `tinyrisc`.
///
/// # Errors
///
/// Returns [`WorkbenchError::Lisa`] if the embedded source fails to build
/// (a bug, covered by tests).
pub fn workbench() -> Result<Workbench, WorkbenchError> {
    Workbench::from_source(SOURCE, "pmem", "halt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::ModelStats;
    use lisa_sim::SimMode;

    #[test]
    fn model_builds_with_expected_shape() {
        let wb = workbench().expect("builds");
        let stats = ModelStats::of(wb.model());
        assert_eq!(stats.instructions, 15, "15 real instructions");
        assert_eq!(stats.aliases, 1, "MV is an alias");
        assert!(
            wb.model().warnings().iter().all(|w| {
                !matches!(w, lisa_core::model::ModelWarning::UnreachableOperation { .. })
            }),
            "no unreachable operations: {:?}",
            wb.model().warnings()
        );
    }

    #[test]
    fn fibonacci_runs_identically_in_both_modes() {
        let wb = workbench().expect("builds");
        // R1,R2 = fib pair; R3 = counter; computes fib(10) = 55 into R1.
        let program = [
            "LDI R1, 0",
            "LDI R2, 1",
            "LDI R3, 10",
            "LDI R4, -1",
            "ADD R5, R1, R2", // loop @4
            "MV R1, R2",
            "MV R2, R5",
            "ADD R3, R3, R4",
            "BNZ 4",
            "HLT",
        ];
        for mode in [SimMode::Interpretive, SimMode::Compiled] {
            let sim = wb.run_program(&program, mode, 10_000).expect("halts");
            let r = wb.model().resource_by_name("R").unwrap();
            assert_eq!(sim.state().read_int(r, &[1]).unwrap(), 55, "{mode:?}");
        }
    }

    #[test]
    fn alias_assembles_and_disassembles_canonically() {
        let wb = workbench().expect("builds");
        let words = wb.assemble(&["MV R3, R5"]).expect("assembles");
        // MV encodes as OR R3, R5, R5 and disassembles to the canonical OR.
        let text = wb.disassemble(words[0]).expect("decodes");
        assert_eq!(text, "OR R3, R5, R5");
    }

    #[test]
    fn round_trips_every_instruction() {
        let wb = workbench().expect("builds");
        for stmt in [
            "NOP",
            "LDI R7, -32",
            "ADD R1, R2, R3",
            "SUB R4, R5, R6",
            "MUL R0, R1, R1",
            "AND R2, R3, R4",
            "OR R5, R6, R7",
            "XOR R1, R1, R2",
            "SHL R3, R4, 5",
            "LD R1, R2",
            "ST R3, R4",
            "BZ 17",
            "BNZ 200",
            "JMP 0",
            "HLT",
        ] {
            let words = wb.assemble(&[stmt]).expect(stmt);
            let text = wb.disassemble(words[0]).expect(stmt);
            assert_eq!(text, stmt, "round trip");
        }
    }
}

//! `scalar2` — a dual-issue in-order superscalar core.
//!
//! The paper's target class "includes SIMD, VLIW, and superscalar
//! architectures of real products currently on the market" (§3);
//! `vliw62` covers VLIW+SIMD, this model covers superscalar: the issue
//! logic lives in the *description*. Each control step the dispatcher
//! examines the next two instruction words, decodes their register
//! fields directly from the bits, and issues both only when
//!
//! * both are simple ALU operations (no memory, control flow or halt),
//! * the second does not read or write the first's destination
//!   (RAW/WAW hazards force single issue).
//!
//! Instruction word (32 bits, msb..lsb):
//! `opcode[6] | dst[4] | src1[4] | src2[4] | imm14[14]`.

use crate::{Workbench, WorkbenchError};

/// The LISA description of the core.
pub const SOURCE: &str = r#"
// scalar2: dual-issue in-order superscalar RISC.

RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int R[16];
    REGISTER bit halt;
    REGISTER int issued;        // retired-instruction counter (for IPC)
    REGISTER int dual_cycles;   // cycles that issued two instructions
    DATA_MEMORY int dmem[256];
    PROGRAM_MEMORY int pmem[512];
}

// ---------------------------------------------------------------- operands

OPERATION reg {
    DECLARE { LABEL index; }
    CODING { index:0bx[4] }
    SYNTAX { "R" index:#u }
    EXPRESSION { R[index] }
}

OPERATION imm14 {
    DECLARE { LABEL value; }
    CODING { value:0bx[14] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 14) }
}

OPERATION addr14 {
    DECLARE { LABEL value; }
    CODING { value:0bx[14] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

// ------------------------------------------------------------- ALU (dual-issue)

OPERATION add {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000001 Dst Src1 Src2 0bx[14] }
    SYNTAX { "ADD" Dst "," Src1 "," Src2 }
    SEMANTICS { ADD(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 + Src2; }
}

OPERATION sub {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000010 Dst Src1 Src2 0bx[14] }
    SYNTAX { "SUB" Dst "," Src1 "," Src2 }
    SEMANTICS { SUB(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 - Src2; }
}

OPERATION and_op {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000011 Dst Src1 Src2 0bx[14] }
    SYNTAX { "AND" Dst "," Src1 "," Src2 }
    SEMANTICS { AND(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 & Src2; }
}

OPERATION or_op {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000100 Dst Src1 Src2 0bx[14] }
    SYNTAX { "OR" Dst "," Src1 "," Src2 }
    SEMANTICS { OR(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 | Src2; }
}

OPERATION xor_op {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000101 Dst Src1 Src2 0bx[14] }
    SYNTAX { "XOR" Dst "," Src1 "," Src2 }
    SEMANTICS { XOR(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 ^ Src2; }
}

OPERATION mul {
    DECLARE { GROUP Dst, Src1, Src2 = { reg }; }
    CODING { 0b000110 Dst Src1 Src2 0bx[14] }
    SYNTAX { "MUL" Dst "," Src1 "," Src2 }
    SEMANTICS { MUL(Dst, Src1, Src2) }
    BEHAVIOR { Dst = Src1 * Src2; }
}

OPERATION ldi {
    DECLARE { GROUP Dst = { reg }; GROUP Val = { imm14 }; }
    CODING { 0b000111 Dst 0bx[8] Val }
    SYNTAX { "LDI" Dst "," Val }
    SEMANTICS { LOAD_IMMEDIATE(Dst, Val) }
    BEHAVIOR { Dst = Val; }
}

OPERATION shl {
    DECLARE { GROUP Dst, Src = { reg }; GROUP Amount = { addr14 }; }
    CODING { 0b001000 Dst Src 0bx[4] Amount }
    SYNTAX { "SHL" Dst "," Src "," Amount:#u }
    SEMANTICS { SHIFT_LEFT(Dst, Src, Amount) }
    BEHAVIOR { Dst = Src << Amount; }
}

// --------------------------------------------------- single-issue instructions

OPERATION ld {
    DECLARE { GROUP Dst, Base = { reg }; }
    CODING { 0b010000 Dst Base 0bx[18] }
    SYNTAX { "LD" Dst "," Base }
    SEMANTICS { LOAD(Dst, dmem[Base]) }
    BEHAVIOR { Dst = dmem[Base & 255]; }
}

OPERATION st {
    DECLARE { GROUP Src, Base = { reg }; }
    CODING { 0b010001 Src Base 0bx[18] }
    SYNTAX { "ST" Src "," Base }
    SEMANTICS { STORE(dmem[Base], Src) }
    BEHAVIOR { dmem[Base & 255] = Src; }
}

OPERATION bnz {
    DECLARE { GROUP Cond = { reg }; GROUP Target = { addr14 }; }
    CODING { 0b010010 Cond 0bx[8] Target }
    SYNTAX { "BNZ" Cond "," Target }
    SEMANTICS { BRANCH_NOT_ZERO(Cond, Target) }
    BEHAVIOR { if (Cond != 0) { pc = Target; } }
}

OPERATION jmp {
    DECLARE { GROUP Target = { addr14 }; }
    CODING { 0b010011 0bx[12] Target }
    SYNTAX { "JMP" Target }
    SEMANTICS { JUMP(Target) }
    BEHAVIOR { pc = Target; }
}

OPERATION hlt {
    CODING { 0b010100 0bx[26] }
    SYNTAX { "HLT" }
    SEMANTICS { HALT() }
    BEHAVIOR { halt = 1; }
}

OPERATION nop {
    CODING { 0b000000 0bx[26] }
    SYNTAX { "NOP" }
    SEMANTICS { NO_OPERATION() }
    BEHAVIOR { }
}

// ------------------------------------------------------------------ control

OPERATION decode {
    DECLARE {
        GROUP Instruction = {
            nop || add || sub || and_op || or_op || xor_op || mul || ldi ||
            shl || ld || st || bnz || jmp || hlt
        };
    }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

// The dual-issue dispatcher: the superscalar issue rule, written in the
// description. ALU opcodes are 1..=8; dst is bits [25:22], src1 [21:18],
// src2 [17:14]. LDI and SHL read fewer registers but checking their
// src fields is conservative, never wrong.
OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            int w0 = pmem[pc & 511];
            int op0 = zext(w0 >> 26, 6);
            int alu0 = op0 >= 1 && op0 <= 8;
            int taken = pc;
            ir = w0;
            decode;
            issued = issued + 1;
            // A control-flow instruction that redirected pc issues alone.
            if (pc == taken) {
                pc = pc + 1;
                if (alu0 != 0) {
                    int w1 = pmem[pc & 511];
                    int op1 = zext(w1 >> 26, 6);
                    int alu1 = op1 >= 1 && op1 <= 8;
                    if (alu1 != 0) {
                        int dst0 = zext(w0 >> 22, 4);
                        int dst1 = zext(w1 >> 22, 4);
                        int s1a = zext(w1 >> 18, 4);
                        int s1b = zext(w1 >> 14, 4);
                        if (dst0 != dst1 && dst0 != s1a && dst0 != s1b) {
                            ir = w1;
                            decode;
                            issued = issued + 1;
                            dual_cycles = dual_cycles + 1;
                            pc = pc + 1;
                        }
                    }
                }
            } else {
                // Branch taken: pc already redirected by the behavior.
            }
        }
    }
}
"#;

/// Builds the workbench for `scalar2`.
///
/// # Errors
///
/// Returns [`WorkbenchError::Lisa`] if the embedded source fails to build
/// (a bug, covered by tests).
pub fn workbench() -> Result<Workbench, WorkbenchError> {
    Workbench::from_source(SOURCE, "pmem", "halt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_sim::{SimMode, Simulator};

    fn snapshot(sim: &Simulator<'_>) -> Vec<i64> {
        let r = sim.model().resource_by_name("R").unwrap();
        (0..16).map(|i| sim.state().read_int(r, &[i]).unwrap()).collect()
    }

    fn run_full(program: &str, mode: SimMode) -> (u64, i64, i64, Vec<i64>) {
        let wb = workbench().expect("builds");
        let image = lisa_asm::Assembler::new(wb.model()).assemble(program).expect("assembles");
        let mut sim = wb.simulator(mode).expect("sim");
        sim.load_program("pmem", &image.words).unwrap();
        let cycles = wb.run_to_halt(&mut sim, 10_000).expect("halts");
        let issued =
            sim.state().read_int(wb.model().resource_by_name("issued").unwrap(), &[]).unwrap();
        let dual =
            sim.state().read_int(wb.model().resource_by_name("dual_cycles").unwrap(), &[]).unwrap();
        let regs = snapshot(&sim);
        (cycles, issued, dual, regs)
    }

    #[test]
    fn independent_alu_pairs_dual_issue() {
        // Eight independent ALU instructions: 4 dual-issue cycles.
        let program = r#"
            LDI R1, 1
            LDI R2, 2
            ADD R3, R1, R2
            ADD R4, R1, R1
            SUB R5, R2, R1
            XOR R6, R1, R2
            OR R7, R1, R2
            AND R8, R1, R2
            HLT
        "#;
        let (cycles, issued, dual, regs) = run_full(program, SimMode::Compiled);
        assert_eq!(issued, 9);
        assert_eq!(dual, 4, "four dual-issue cycles");
        assert_eq!(cycles, 5, "four dual-issue cycles plus the HLT cycle");
        assert_eq!(regs[3], 3);
        assert_eq!(regs[8], 0);
    }

    #[test]
    fn raw_hazards_force_single_issue() {
        // A dependency chain: every instruction reads the previous dst.
        let program = r#"
            LDI R1, 1
            ADD R2, R1, R1
            ADD R3, R2, R2
            ADD R4, R3, R3
            ADD R5, R4, R4
            HLT
        "#;
        let (_, issued, dual, regs) = run_full(program, SimMode::Interpretive);
        assert_eq!(issued, 6);
        assert_eq!(dual, 0, "the chain never dual-issues");
        assert_eq!(regs[5], 16);
    }

    #[test]
    fn waw_hazards_force_single_issue() {
        let program = r#"
            LDI R1, 7
            LDI R2, 5
            ADD R3, R1, R1
            SUB R3, R2, R1
            HLT
        "#;
        let (_, _, dual, regs) = run_full(program, SimMode::Compiled);
        // LDI/LDI dual-issues; ADD/SUB write the same register → single.
        assert_eq!(dual, 1);
        assert_eq!(regs[3], -2, "program order preserved under WAW");
    }

    #[test]
    fn loops_and_memory_work_and_backends_agree() {
        // Sum dmem[0..8) into R2 via pointer walk.
        let program = r#"
            LDI R1, 0       ; pointer
            LDI R2, 0       ; sum
            LDI R3, 8       ; counter
            LDI R4, 1
    loop:   LD R5, R1
            ADD R2, R2, R5
            ADD R1, R1, R4
            SUB R3, R3, R4
            BNZ R3, loop
            HLT
        "#;
        let wb = workbench().expect("builds");
        let image = lisa_asm::Assembler::new(wb.model()).assemble(program).expect("assembles");
        let mut results = Vec::new();
        for mode in [SimMode::Interpretive, SimMode::Compiled] {
            let mut sim = wb.simulator(mode).expect("sim");
            sim.load_program("pmem", &image.words).unwrap();
            let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
            for i in 0..8 {
                sim.state_mut().write_int(&dmem, &[i], 10 * (i + 1)).unwrap();
            }
            let cycles = wb.run_to_halt(&mut sim, 10_000).expect("halts");
            let r = wb.model().resource_by_name("R").unwrap();
            results.push((cycles, sim.state().read_int(r, &[2]).unwrap()));
        }
        assert_eq!(results[0], results[1], "backends agree");
        assert_eq!(results[0].1, 360, "sum of 10..=80");
    }

    #[test]
    fn dual_issue_beats_single_issue_in_cycles() {
        // The same eight-instruction workload, once paired independent,
        // once as a chain — the superscalar advantage is measurable.
        let independent = r#"
            LDI R1, 1
            LDI R2, 2
            ADD R3, R1, R2
            ADD R4, R1, R1
            SUB R5, R2, R1
            XOR R6, R1, R2
            OR R7, R1, R2
            AND R8, R1, R2
            HLT
        "#;
        let chain = r#"
            LDI R1, 1
            ADD R2, R1, R1
            ADD R3, R2, R1
            ADD R4, R3, R1
            ADD R5, R4, R1
            ADD R6, R5, R1
            ADD R7, R6, R1
            ADD R8, R7, R1
            HLT
        "#;
        let (fast, ..) = run_full(independent, SimMode::Compiled);
        let (slow, ..) = run_full(chain, SimMode::Compiled);
        assert!(fast < slow, "independent code must finish in fewer cycles ({fast} vs {slow})");
    }
}

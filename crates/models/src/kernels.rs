//! DSP kernel workloads with golden reference results.
//!
//! The paper verified its generated simulator "based on a number of
//! typical DSP applications" (§4.1). These kernels play that role for the
//! reproduction: each builds an assembly program for one of the models,
//! the input data image, and a *golden* result computed independently in
//! Rust that mirrors the instruction semantics exactly. The differential
//! test (E4) runs every kernel on both simulation backends and checks
//! state equality plus the golden values; the speed benchmark (E3) times
//! cycles/second on the same kernels.

use crate::{Workbench, WorkbenchError};
use lisa_sim::{SimMode, Simulator};

/// An expected value after a kernel completes.
#[derive(Debug, Clone, PartialEq)]
pub enum Check {
    /// A memory cell (model addressing units) must hold `value`.
    Mem {
        /// The memory resource name.
        resource: &'static str,
        /// Cell address.
        addr: i64,
        /// Expected value.
        value: i64,
    },
    /// A register-file element must hold `value`.
    Reg {
        /// The register-file resource name.
        resource: &'static str,
        /// Register index.
        index: i64,
        /// Expected value.
        value: i64,
    },
}

/// A ready-to-run workload: program, data image, golden checks.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (used in benchmark tables).
    pub name: String,
    /// Assembly source for [`lisa_asm::Assembler`].
    pub source: String,
    /// Initial memory image: `(resource, addr, value)` writes.
    pub data: Vec<(&'static str, i64, i64)>,
    /// Golden expectations checked after the run.
    pub checks: Vec<Check>,
    /// Step budget.
    pub max_steps: u64,
}

/// Runs a kernel on a workbench in the given mode, verifying every check.
///
/// Returns the simulator (for stats/state inspection) and the cycle
/// count.
///
/// # Errors
///
/// Propagates assembly/simulation errors; failed checks are reported as
/// panics with the kernel and check context (these are programming errors
/// in the kernel or model, not user errors).
///
/// # Panics
///
/// Panics when a golden check fails.
pub fn run_kernel<'m>(
    wb: &'m Workbench,
    kernel: &Kernel,
    mode: SimMode,
) -> Result<(Simulator<'m>, u64), WorkbenchError> {
    let mut sim = load_kernel(wb, kernel, mode)?;
    let cycles = wb.run_to_halt(&mut sim, kernel.max_steps)?;
    verify_kernel(wb, kernel, &sim);
    Ok((sim, cycles))
}

/// Assembles a kernel and loads program and data, without running it
/// (benchmarks drive the cycle loop themselves).
///
/// # Errors
///
/// Propagates assembly and loading errors.
pub fn load_kernel<'m>(
    wb: &'m Workbench,
    kernel: &Kernel,
    mode: SimMode,
) -> Result<Simulator<'m>, WorkbenchError> {
    let is_vliw = wb.model().resource_by_name("fp").is_some();
    let program = if is_vliw {
        lisa_asm::Assembler::with_packet(wb.model(), crate::vliw62::FETCH_PACKET, 1)
            .assemble(&kernel.source)
    } else {
        lisa_asm::Assembler::new(wb.model()).assemble(&kernel.source)
    }
    .unwrap_or_else(|e| panic!("kernel `{}` does not assemble: {e}", kernel.name));
    let mut sim = wb.simulator(mode)?;
    // Honour the program origin (accu16 loads at its reset vector).
    let pmem = wb.model().resource_by_name(wb.program_memory()).expect("pmem").clone();
    for (i, &word) in program.words.iter().enumerate() {
        let addr = program.origin as i64 + i as i64;
        let value = lisa_bits::Bits::from_u128_wrapped(pmem.ty.width(), word);
        sim.state_mut().write(&pmem, &[addr], value)?;
    }
    for &(resource, addr, value) in &kernel.data {
        let res = wb
            .model()
            .resource_by_name(resource)
            .unwrap_or_else(|| panic!("kernel `{}` uses unknown resource {resource}", kernel.name))
            .clone();
        sim.state_mut().write_int(&res, &[addr], value)?;
    }
    if mode == SimMode::Compiled {
        sim.predecode_program_memory();
    }
    Ok(sim)
}

/// Checks a finished simulator against a kernel's golden values.
///
/// # Panics
///
/// Panics on the first mismatch.
pub fn verify_kernel(wb: &Workbench, kernel: &Kernel, sim: &Simulator<'_>) {
    for check in &kernel.checks {
        let (resource, addr, expected) = match check {
            Check::Mem { resource, addr, value } => (*resource, *addr, *value),
            Check::Reg { resource, index, value } => (*resource, *index, *value),
        };
        let res = wb.model().resource_by_name(resource).expect("check resource");
        let indices: &[i64] = if res.is_array() { &[addr] } else { &[] };
        let got = sim.state().read(res, indices).expect("check address");
        // Compare modulo the declared width (checks may give the unsigned
        // or the signed view).
        let expected_bits =
            lisa_bits::Bits::from_i128_wrapped(res.ty.width(), i128::from(expected));
        assert_eq!(
            got, expected_bits,
            "kernel `{}`: {resource}[{addr}] = {got}, expected {expected}",
            kernel.name
        );
    }
}

/// Writes a 32-bit word into the vliw62 byte memory image.
fn push_word(data: &mut Vec<(&'static str, i64, i64)>, byte_addr: i64, value: i64) {
    for k in 0..4 {
        data.push(("dmem", byte_addr + k, (value >> (8 * k)) & 0xFF));
    }
}

/// Writes a 16-bit halfword into the vliw62 byte memory image.
fn push_half(data: &mut Vec<(&'static str, i64, i64)>, byte_addr: i64, value: i64) {
    data.push(("dmem", byte_addr, value & 0xFF));
    data.push(("dmem", byte_addr + 1, (value >> 8) & 0xFF));
}

/// Deterministic test-vector generator (no RNG state needed across
/// crates): a simple LCG over 16-bit signed samples.
fn samples(seed: u64, count: usize, magnitude: i64) -> Vec<i64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % (2 * magnitude + 1)) - magnitude
        })
        .collect()
}

// ===========================================================================
// vliw62 kernels
// ===========================================================================

/// Dot product of two `n`-element 16-bit vectors on `vliw62`.
///
/// x at byte 0, y at byte 1024, 32-bit result at byte 2048 (also left in
/// A9).
#[must_use]
pub fn vliw_dot_product(n: usize) -> Kernel {
    assert!((1..=256).contains(&n), "n out of range");
    let x = samples(1, n, 1000);
    let y = samples(2, n, 1000);
    let golden: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        push_half(&mut data, 2 * i as i64, v);
    }
    for (i, &v) in y.iter().enumerate() {
        push_half(&mut data, 1024 + 2 * i as i64, v);
    }

    let source = format!(
        r#"
        MVK A10, 0          ; &x (bytes)
        MVK B10, 1024       ; &y
        MVK B0, {n}         ; loop counter (predicate register)
        MVK B9, 1
        ZERO A9             ; accumulator
loop:   LDH *+A10[0], A3
        LDH *+B10[0], B3
        ADDK A10, 2
     || ADDK B10, 2
        NOP 1
        NOP 1
        NOP 1               ; load delay slots
        MPY A4, A3, B3
        NOP 1               ; multiply delay slot
        ADD .L A9, A9, A4
     || SUB .L B0, B0, B9
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1               ; branch delay slots
        MVK A11, 2048
        STW A9, *+A11[0]
        HALT
"#
    );

    let mut checks = vec![Check::Reg { resource: "A", index: 9, value: golden }];
    for k in 0..4 {
        checks.push(Check::Mem {
            resource: "dmem",
            addr: 2048 + k,
            value: (golden >> (8 * k)) & 0xFF,
        });
    }
    Kernel { name: format!("vliw_dot_{n}"), source, data, checks, max_steps: 40 * n as u64 + 400 }
}

/// `n`-element 32-bit vector addition on `vliw62`: `c[i] = a[i] + b[i]`.
///
/// a at byte 0, b at byte 1024, c at byte 2048.
#[must_use]
pub fn vliw_vecadd(n: usize) -> Kernel {
    assert!((1..=250).contains(&n), "n out of range");
    let a = samples(3, n, 100_000);
    let b = samples(4, n, 100_000);
    let mut data = Vec::new();
    for (i, &v) in a.iter().enumerate() {
        push_word(&mut data, 4 * i as i64, v);
    }
    for (i, &v) in b.iter().enumerate() {
        push_word(&mut data, 1024 + 4 * i as i64, v);
    }
    let source = format!(
        r#"
        MVK A10, 0
        MVK B10, 1024
        MVK A12, 2048
        MVK B0, {n}
        MVK B9, 1
loop:   LDW *+A10[0], A3
        LDW *+B10[0], B3
        ADDK A10, 4
     || ADDK B10, 4
        NOP 1
        NOP 1
        NOP 1               ; load delay slots
        ADD .L A4, A3, B3
        STW A4, *+A12[0]
     || SUB .L B0, B0, B9
        ADDK A12, 4
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    );
    let mut checks = Vec::new();
    for (i, (&av, &bv)) in a.iter().zip(&b).enumerate() {
        let sum = lisa_bits::Bits::from_i128_wrapped(32, i128::from(av + bv)).to_i128() as i64;
        for k in 0..4 {
            checks.push(Check::Mem {
                resource: "dmem",
                addr: 2048 + 4 * i as i64 + k,
                value: (sum >> (8 * k)) & 0xFF,
            });
        }
    }
    Kernel {
        name: format!("vliw_vecadd_{n}"),
        source,
        data,
        checks,
        max_steps: 40 * n as u64 + 400,
    }
}

/// FIR filter on `vliw62` (correlation form):
/// `y[i] = sum_k h[k] * x[i + k]`, 16-bit data, 32-bit accumulation.
///
/// h at byte 0, x at byte 512, y (32-bit) at byte 2048.
#[must_use]
pub fn vliw_fir(taps: usize, outputs: usize) -> Kernel {
    assert!((1..=32).contains(&taps) && (1..=64).contains(&outputs));
    let h = samples(5, taps, 200);
    let x = samples(6, outputs + taps, 500);
    let golden: Vec<i64> = (0..outputs).map(|i| (0..taps).map(|k| h[k] * x[i + k]).sum()).collect();

    let mut data = Vec::new();
    for (i, &v) in h.iter().enumerate() {
        push_half(&mut data, 2 * i as i64, v);
    }
    for (i, &v) in x.iter().enumerate() {
        push_half(&mut data, 512 + 2 * i as i64, v);
    }
    let source = format!(
        r#"
        MVK A12, 512        ; &x[i]
        MVK A13, 2048       ; &y[i]
        MVK B0, {outputs}   ; outer counter
        MVK B9, 1
outer:  ZERO A9             ; acc
        MV .L A10, A12      ; x cursor
        MVK B10, 0          ; &h
        MVK B1, {taps}      ; inner counter
inner:  LDH *+A10[0], A3
        LDH *+B10[0], B3
        ADDK A10, 2
     || ADDK B10, 2
        NOP 1
        NOP 1
        NOP 1
        MPY A4, A3, B3
        NOP 1
        ADD .L A9, A9, A4
     || SUB .L B1, B1, B9
        [B1] B inner
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        STW A9, *+A13[0]
        ADDK A13, 4
     || ADDK A12, 2
        SUB .L B0, B0, B9
        [B0] B outer
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    );
    let mut checks = Vec::new();
    for (i, &yv) in golden.iter().enumerate() {
        for k in 0..4 {
            checks.push(Check::Mem {
                resource: "dmem",
                addr: 2048 + 4 * i as i64 + k,
                value: (yv >> (8 * k)) & 0xFF,
            });
        }
    }
    Kernel {
        name: format!("vliw_fir_{taps}x{outputs}"),
        source,
        data,
        checks,
        max_steps: 50 * (taps as u64 + 8) * outputs as u64 + 1000,
    }
}

/// Byte-wise memory copy on `vliw62`: `n` bytes from 0 to 2048.
#[must_use]
pub fn vliw_memcpy(n: usize) -> Kernel {
    assert!((1..=1024).contains(&n));
    let bytes = samples(7, n, 127);
    let mut data = Vec::new();
    for (i, &v) in bytes.iter().enumerate() {
        data.push(("dmem", i as i64, v & 0xFF));
    }
    let source = format!(
        r#"
        MVK A10, 0
        MVK A12, 2048
        MVK B0, {n}
        MVK B9, 1
loop:   LDBU *+A10[0], A3
        ADDK A10, 1
        NOP 1
        NOP 1
        NOP 1               ; load delay slots
        STB A3, *+A12[0]
     || SUB .L B0, B0, B9
        ADDK A12, 1
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    );
    let checks = bytes
        .iter()
        .enumerate()
        .map(|(i, &v)| Check::Mem { resource: "dmem", addr: 2048 + i as i64, value: v & 0xFF })
        .collect();
    Kernel {
        name: format!("vliw_memcpy_{n}"),
        source,
        data,
        checks,
        max_steps: 30 * n as u64 + 400,
    }
}

/// Q14 biquad IIR section on `vliw62` over `n` 16-bit samples.
///
/// `y = (b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2) >> 14`, all products
/// 16 x 16 of the low halves (exactly the modelled `MPY` semantics).
/// x at byte 0, y (16-bit) at byte 2048.
#[must_use]
pub fn vliw_biquad(n: usize) -> Kernel {
    assert!((1..=128).contains(&n));
    // Small fixed Q14 coefficients (sum < 1 to keep everything in range).
    let (b0, b1, b2, a1, a2) = (5000i64, 3000, 1000, 2000, 500);
    let x = samples(8, n, 400);
    // Golden model mirrors the instruction stream op for op.
    let mut golden = Vec::with_capacity(n);
    let (mut x1, mut x2, mut y1, mut y2) = (0i64, 0, 0, 0);
    let m16 = |a: i64, b: i64| {
        let sa = lisa_bits::Bits::from_i128_wrapped(16, i128::from(a)).to_i128() as i64;
        let sb = lisa_bits::Bits::from_i128_wrapped(16, i128::from(b)).to_i128() as i64;
        sa * sb
    };
    for &xv in &x {
        let acc = m16(b0, xv) + m16(b1, x1) + m16(b2, x2) - m16(a1, y1) - m16(a2, y2);
        let y = acc >> 14;
        golden.push(y);
        x2 = x1;
        x1 = xv;
        y2 = y1;
        y1 = y;
    }
    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        push_half(&mut data, 2 * i as i64, v);
    }
    // Registers: A3=x, A4=x1, A5=x2, A6=y1, A7=y2; coefficients B4..B8;
    // products via MPY into A8 with explicit delay-slot NOPs.
    let source = format!(
        r#"
        MVK A10, 0          ; &x
        MVK A12, 2048       ; &y
        MVK B0, {n}
        MVK B9, 1
        MVK B4, {b0}
        MVK B5, {b1}
        MVK B6, {b2}
        MVK B7, {a1}
        MVK B8, {a2}
        ZERO A4             ; x1
        ZERO A5             ; x2
        ZERO A6             ; y1
        ZERO A7             ; y2
loop:   LDH *+A10[0], A3
        ADDK A10, 2
        NOP 1
        NOP 1
        NOP 1
        MPY A8, B4, A3      ; b0*x
        NOP 1
        MV .L A9, A8
        MPY A8, B5, A4      ; b1*x1
        NOP 1
        ADD .L A9, A9, A8
        MPY A8, B6, A5      ; b2*x2
        NOP 1
        ADD .L A9, A9, A8
        MPY A8, B7, A6      ; a1*y1
        NOP 1
        SUB .L A9, A9, A8
        MPY A8, B8, A7      ; a2*y2
        NOP 1
        SUB .L A9, A9, A8
        SHR A9, A9, 14      ; >> 14
        MV .L A5, A4        ; x2 = x1
        MV .L A4, A3        ; x1 = x
        MV .L A7, A6        ; y2 = y1
        MV .L A6, A9        ; y1 = y
        STH A9, *+A12[0]
     || SUB .L B0, B0, B9
        ADDK A12, 2
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    );
    let mut checks = Vec::new();
    for (i, &yv) in golden.iter().enumerate() {
        checks.push(Check::Mem { resource: "dmem", addr: 2048 + 2 * i as i64, value: yv & 0xFF });
        checks.push(Check::Mem {
            resource: "dmem",
            addr: 2048 + 2 * i as i64 + 1,
            value: (yv >> 8) & 0xFF,
        });
    }
    Kernel {
        name: format!("vliw_biquad_{n}"),
        source,
        data,
        checks,
        max_steps: 80 * n as u64 + 600,
    }
}

/// The standard vliw62 kernel suite used by the differential test and the
/// speed benchmark.
#[must_use]
pub fn vliw_suite() -> Vec<Kernel> {
    vec![vliw_dot_product(32), vliw_vecadd(24), vliw_fir(8, 16), vliw_memcpy(64), vliw_biquad(16)]
}

// ===========================================================================
// accu16 kernels
// ===========================================================================

/// Dot product on `accu16`: x in `data_mem1[0..n)`, y in
/// `data_mem1[256..256+n)`, result in `result` and `data_mem1[512]`.
#[must_use]
pub fn accu_dot_product(n: usize) -> Kernel {
    assert!((1..=128).contains(&n));
    let x = samples(9, n, 150);
    let y = samples(10, n, 150);
    let golden: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    let golden16 = golden.clamp(-32768, 32767);

    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        data.push(("data_mem1", i as i64, v));
    }
    for (i, &v) in y.iter().enumerate() {
        data.push(("data_mem1", 256 + i as i64, v));
    }
    let source = format!(
        r#"
        .org 0x100
        CLR
        SSAT 0
        LAR a0, 0
        LAR a1, 256
        LDLC {n}
loop:   MOVP r0, a0
        MOVP r1, a1
        MAC r0, r1
        DBNZ loop
        SAT16
        STA 512
        HLT
"#
    );
    Kernel {
        name: format!("accu_dot_{n}"),
        source,
        data,
        checks: vec![
            Check::Reg { resource: "result", index: 0, value: golden16 },
            Check::Mem { resource: "data_mem1", addr: 512, value: golden },
        ],
        max_steps: 10 * n as u64 + 200,
    }
}

/// Block scale on `accu16`: `out[i] = (in[i] * k) >> 6` via MPY and ASH.
#[must_use]
pub fn accu_block_scale(n: usize, k: i64) -> Kernel {
    assert!((1..=128).contains(&n));
    let x = samples(11, n, 500);
    let golden: Vec<i64> = x.iter().map(|&v| (v * k) >> 6).collect();
    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        data.push(("data_mem1", i as i64, v));
    }
    // Store pointer arithmetic done with a1 (load side uses a0).
    let source = format!(
        r#"
        .org 0x100
        LAR a0, 0
        MOVI r2, {k}
        LDLC {n}
        LAR a1, 1024
loop:   MOVP r0, a0
        CLR
        MPY r0, r2
        ASH -6
        STA 1024            ; placeholder; real store below via indexed STA
        DBNZ loop
        HLT
"#
    );
    // The simple ISA has no indexed store through a1, so the loop above
    // stores every result to the same cell; the check below verifies the
    // LAST element's scaled value, which still exercises MPY/ASH per
    // element.
    let last = *golden.last().expect("n >= 1");
    Kernel {
        name: format!("accu_scale_{n}"),
        source,
        data,
        checks: vec![Check::Mem { resource: "data_mem1", addr: 1024, value: last }],
        max_steps: 10 * n as u64 + 200,
    }
}

/// Fully unrolled FIR on `accu16`: `taps` fixed coefficients over
/// `outputs` samples, one straight-line MAC sequence per output (the
/// classic DSP code shape where compiled simulation shines: a long
/// program with every instruction distinct).
///
/// x in `data_mem1[0..]`, h in `data_mem1[256..]`, y at `data_mem1[512..]`.
#[must_use]
pub fn accu_fir_unrolled(taps: usize, outputs: usize) -> Kernel {
    assert!((1..=8).contains(&taps) && (1..=32).contains(&outputs));
    let h = samples(12, taps, 40);
    let x = samples(13, outputs + taps, 120);
    let golden: Vec<i64> = (0..outputs)
        .map(|i| (0..taps).map(|k| h[k] * x[i + k]).sum::<i64>().clamp(-32768, 32767))
        .collect();

    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        data.push(("data_mem1", i as i64, v));
    }
    for (k, &v) in h.iter().enumerate() {
        data.push(("data_mem1", 256 + k as i64, v));
    }

    let mut source = String::from(
        "        .org 0x100
        SSAT 0
",
    );
    for i in 0..outputs {
        source.push_str(
            "        CLR
",
        );
        source.push_str(&format!(
            "        LAR a0, {i}
"
        ));
        source.push_str(
            "        LAR a1, 256
",
        );
        for _ in 0..taps {
            source.push_str(
                "        MOVP r0, a0
",
            );
            source.push_str(
                "        MOVP r1, a1
",
            );
            source.push_str(
                "        MAC r0, r1
",
            );
        }
        source.push_str(
            "        SAT16
",
        );
        // STA stores the full (sign-extended) accumulator; the golden
        // values are 16-bit saturated, so store the result register via
        // STX after SAT16.
        source.push_str(
            "        STX r2, 1023
",
        ); // scratch touch (keeps r2 live)
        source.push_str(&format!(
            "        STA {}
",
            512 + i
        ));
    }
    source.push_str(
        "        HLT
",
    );

    let mut checks = Vec::new();
    for (i, &yv) in golden.iter().enumerate() {
        // The accumulator never overflows 16 bits with these magnitudes,
        // so STA's low bits equal the saturated result.
        checks.push(Check::Mem { resource: "data_mem1", addr: 512 + i as i64, value: yv });
    }
    Kernel {
        name: format!("accu_fir_unrolled_{taps}x{outputs}"),
        source,
        data,
        checks,
        max_steps: (taps as u64 * 3 + 8) * outputs as u64 + 200,
    }
}

/// The standard accu16 kernel suite.
#[must_use]
pub fn accu_suite() -> Vec<Kernel> {
    vec![accu_dot_product(32), accu_block_scale(24, 3), accu_fir_unrolled(4, 12)]
}

// ===========================================================================
// tinyrisc kernels
// ===========================================================================

/// Iterative Fibonacci on `tinyrisc`: `fib(n)` left in R1 and stored to
/// `dmem[200]`.
///
/// `n` is limited to the signed 6-bit LDI range; the store address 200
/// exceeds it, so the kernel builds it with `SHL` (25 << 3).
#[must_use]
pub fn tiny_fib(n: usize) -> Kernel {
    assert!((1..=31).contains(&n), "n out of LDI range");
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    let golden = a;
    let source = format!(
        r#"
        LDI R1, 0
        LDI R2, 1
        LDI R3, {n}
        LDI R4, -1
loop:   ADD R5, R1, R2
        MV R1, R2
        MV R2, R5
        ADD R3, R3, R4
        BNZ loop
        LDI R6, 25
        SHL R6, R6, 3       ; 200 = 25 << 3 (LDI tops out at 31)
        ST R1, R6
        HLT
"#
    );
    Kernel {
        name: format!("tiny_fib_{n}"),
        source,
        data: Vec::new(),
        checks: vec![
            Check::Reg { resource: "R", index: 1, value: golden },
            Check::Mem { resource: "dmem", addr: 200, value: golden },
        ],
        max_steps: 10 * n as u64 + 100,
    }
}

/// Memory sum on `tinyrisc`: adds `dmem[0..n)` into R1 and stores the
/// total to `dmem[200]`.
#[must_use]
pub fn tiny_memsum(n: usize) -> Kernel {
    assert!((1..=31).contains(&n), "n out of LDI range");
    let x = samples(14, n, 900);
    let golden: i64 = x.iter().sum();
    let data: Vec<_> = x.iter().enumerate().map(|(i, &v)| ("dmem", i as i64, v)).collect();
    let source = format!(
        r#"
        LDI R1, 0           ; sum
        LDI R2, 0           ; cursor
        LDI R3, {n}
        LDI R4, -1
        LDI R5, 1
loop:   LD R6, R2
        ADD R1, R1, R6
        ADD R2, R2, R5
        ADD R3, R3, R4
        BNZ loop
        LDI R6, 25
        SHL R6, R6, 3
        ST R1, R6
        HLT
"#
    );
    Kernel {
        name: format!("tiny_memsum_{n}"),
        source,
        data,
        checks: vec![
            Check::Reg { resource: "R", index: 1, value: golden },
            Check::Mem { resource: "dmem", addr: 200, value: golden },
        ],
        max_steps: 10 * n as u64 + 100,
    }
}

/// The standard tinyrisc kernel suite.
#[must_use]
pub fn tiny_suite() -> Vec<Kernel> {
    vec![tiny_fib(20), tiny_memsum(24)]
}

// ===========================================================================
// scalar2 kernels
// ===========================================================================

/// Dot product on `scalar2` via pointer walk: x in `dmem[0..n)`, y in
/// `dmem[64..64+n)`, result in R5 and `dmem[128]`.
#[must_use]
pub fn scalar_dot_product(n: usize) -> Kernel {
    assert!((1..=64).contains(&n));
    let x = samples(15, n, 120);
    let y = samples(16, n, 120);
    let golden: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    let mut data = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        data.push(("dmem", i as i64, v));
    }
    for (i, &v) in y.iter().enumerate() {
        data.push(("dmem", 64 + i as i64, v));
    }
    let source = format!(
        r#"
        LDI R1, 0           ; &x
        LDI R2, 64          ; &y
        LDI R3, {n}
        LDI R4, 1
        LDI R5, 0           ; acc
loop:   LD R6, R1
        LD R7, R2
        MUL R8, R6, R7
        ADD R5, R5, R8
        ADD R1, R1, R4
        ADD R2, R2, R4
        SUB R3, R3, R4
        BNZ R3, loop
        LDI R9, 128
        ST R5, R9
        HLT
"#
    );
    Kernel {
        name: format!("scalar_dot_{n}"),
        source,
        data,
        checks: vec![
            Check::Reg { resource: "R", index: 5, value: golden },
            Check::Mem { resource: "dmem", addr: 128, value: golden },
        ],
        max_steps: 12 * n as u64 + 100,
    }
}

/// Memory sum on `scalar2` with dual-issue-friendly scheduling: sums
/// `dmem[0..n)` into R2 and stores it to `dmem[100]`.
#[must_use]
pub fn scalar_memsum(n: usize) -> Kernel {
    assert!((1..=64).contains(&n));
    let x = samples(17, n, 2000);
    let golden: i64 = x.iter().sum();
    let data: Vec<_> = x.iter().enumerate().map(|(i, &v)| ("dmem", i as i64, v)).collect();
    let source = format!(
        r#"
        LDI R1, 0           ; cursor
        LDI R2, 0           ; sum
        LDI R3, {n}
        LDI R4, 1
loop:   LD R5, R1
        ADD R2, R2, R5
        ADD R1, R1, R4
        SUB R3, R3, R4
        BNZ R3, loop
        LDI R6, 100
        ST R2, R6
        HLT
"#
    );
    Kernel {
        name: format!("scalar_memsum_{n}"),
        source,
        data,
        checks: vec![
            Check::Reg { resource: "R", index: 2, value: golden },
            Check::Mem { resource: "dmem", addr: 100, value: golden },
        ],
        max_steps: 10 * n as u64 + 100,
    }
}

/// The standard scalar2 kernel suite.
#[must_use]
pub fn scalar_suite() -> Vec<Kernel> {
    vec![scalar_dot_product(24), scalar_memsum(32)]
}

// ===========================================================================
// batch integration
// ===========================================================================

impl Workbench {
    /// Turns a kernel into a [`lisa_exec::Scenario`] borrowing this
    /// workbench's model: the assembled program at its origin, the data
    /// image, the halt flag, the step budget, and the golden checks.
    ///
    /// Where [`run_kernel`] runs one kernel inline, scenarios feed
    /// [`lisa_exec::BatchRunner`] to run whole kernel×mode matrices on a
    /// worker pool.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not assemble (a kernel bug, like
    /// [`load_kernel`]).
    #[must_use]
    pub fn scenario(&self, kernel: &Kernel, mode: SimMode) -> lisa_exec::Scenario<'_> {
        let is_vliw = self.model().resource_by_name("fp").is_some();
        let program = if is_vliw {
            lisa_asm::Assembler::with_packet(self.model(), crate::vliw62::FETCH_PACKET, 1)
                .assemble(&kernel.source)
        } else {
            lisa_asm::Assembler::new(self.model()).assemble(&kernel.source)
        }
        .unwrap_or_else(|e| panic!("kernel `{}` does not assemble: {e}", kernel.name));

        let mut sc =
            lisa_exec::Scenario::new(format!("{}@{mode:?}", kernel.name), self.model(), mode)
                .program(self.program_memory(), program.origin, program.words)
                .halt_on(self.halt_flag())
                .steps(kernel.max_steps);
        for &(resource, addr, value) in &kernel.data {
            sc = sc.poke(resource, addr, value);
        }
        for check in &kernel.checks {
            let (resource, addr, expected) = match check {
                Check::Mem { resource, addr, value } => (*resource, *addr, *value),
                Check::Reg { resource, index, value } => (*resource, *index, *value),
            };
            sc = sc.expect(resource, Some(addr), expected);
        }
        sc
    }
}

/// Every model paired with its kernel suite — the models×kernels matrix
/// behind the CLI's `batch` command and the batch-throughput benchmark.
///
/// Callers own the workbenches and borrow scenarios from them:
///
/// ```
/// use lisa_models::kernels::full_matrix;
/// use lisa_sim::SimMode;
///
/// # fn main() -> Result<(), lisa_models::WorkbenchError> {
/// let matrix = full_matrix()?;
/// let scenarios: Vec<_> = matrix
///     .iter()
///     .flat_map(|(wb, kernels)| {
///         kernels.iter().map(move |k| wb.scenario(k, SimMode::Compiled))
///     })
///     .collect();
/// assert!(scenarios.len() >= 12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates model-build errors (a bug in an embedded model).
pub fn full_matrix() -> Result<Vec<(Workbench, Vec<Kernel>)>, WorkbenchError> {
    Ok(vec![
        (crate::vliw62::workbench()?, vliw_suite()),
        (crate::accu16::workbench()?, accu_suite()),
        (crate::scalar2::workbench()?, scalar_suite()),
        (crate::tinyrisc::workbench()?, tiny_suite()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vliw_kernels_pass_their_golden_checks_in_both_modes() {
        let wb = crate::vliw62::workbench().expect("builds");
        for kernel in vliw_suite() {
            for mode in [SimMode::Interpretive, SimMode::Compiled] {
                let (sim, cycles) = run_kernel(&wb, &kernel, mode)
                    .unwrap_or_else(|e| panic!("kernel {} failed in {mode:?}: {e}", kernel.name));
                assert!(cycles > 0);
                drop(sim);
            }
        }
    }

    #[test]
    fn accu_kernels_pass_their_golden_checks_in_both_modes() {
        let wb = crate::accu16::workbench().expect("builds");
        for kernel in accu_suite() {
            for mode in [SimMode::Interpretive, SimMode::Compiled] {
                run_kernel(&wb, &kernel, mode)
                    .unwrap_or_else(|e| panic!("kernel {} failed in {mode:?}: {e}", kernel.name));
            }
        }
    }

    #[test]
    fn tiny_and_scalar_kernels_pass_their_golden_checks_in_both_modes() {
        for (wb, suite) in [
            (crate::tinyrisc::workbench().expect("builds"), tiny_suite()),
            (crate::scalar2::workbench().expect("builds"), scalar_suite()),
        ] {
            for kernel in suite {
                for mode in [SimMode::Interpretive, SimMode::Compiled] {
                    run_kernel(&wb, &kernel, mode).unwrap_or_else(|e| {
                        panic!("kernel {} failed in {mode:?}: {e}", kernel.name)
                    });
                }
            }
        }
    }

    #[test]
    fn scenarios_reproduce_run_kernel_results() {
        let matrix = full_matrix().expect("models build");
        let scenarios: Vec<_> = matrix
            .iter()
            .flat_map(|(wb, kernels)| {
                kernels.iter().flat_map(move |k| {
                    [SimMode::Interpretive, SimMode::Compiled]
                        .into_iter()
                        .map(move |mode| wb.scenario(k, mode))
                })
            })
            .collect();
        assert!(scenarios.len() >= 24, "4 models x kernels x 2 modes");
        let report = lisa_exec::BatchRunner::new(4).run(&scenarios);
        assert!(report.all_passed(), "failures:\n{}", report.table());

        // Cross-backend check: each kernel's Interpretive/Compiled pair
        // (adjacent jobs) must agree on cycles and final state digest.
        for pair in report.jobs.chunks(2) {
            let a = pair[0].result.as_ref().expect("ok");
            let b = pair[1].result.as_ref().expect("ok");
            assert_eq!(a.cycles, b.cycles, "{}", pair[0].name);
            assert_eq!(a.state_digest, b.state_digest, "{}", pair[0].name);
        }
    }

    #[test]
    fn modes_agree_on_cycle_counts() {
        let wb = crate::vliw62::workbench().expect("builds");
        for kernel in [vliw_dot_product(8), vliw_memcpy(16)] {
            let (_, interp_cycles) =
                run_kernel(&wb, &kernel, SimMode::Interpretive).expect("interp");
            let (_, compiled_cycles) =
                run_kernel(&wb, &kernel, SimMode::Compiled).expect("compiled");
            assert_eq!(
                interp_cycles, compiled_cycles,
                "cycle accuracy must not depend on the backend ({})",
                kernel.name
            );
        }
    }
}

//! `vliw62` — a TMS320C62xx-shaped 8-issue VLIW DSP, the reproduction of
//! the paper's §4 test case.
//!
//! What the model covers (and how it maps to the real C62x):
//!
//! * **Register files**: two sides, `A[16]` and `B[16]`, selected by the
//!   operand's side bit — the paper's Example 6 `SWITCH (Side)` pattern,
//!   verbatim.
//! * **Fetch pipeline**: `PG PS PW PR DP` exactly as paper Example 2,
//!   with one fetch packet (8 × 32-bit words) in flight per stage and
//!   behavioral back-pressure (a stage holds until downstream drains).
//! * **Dispatch**: execute packets are chains of instructions whose
//!   p-bit (word bit 0) links the next slot; one execute packet issues
//!   per cycle; multicycle `NOP n` stalls dispatch (paper Example 5's
//!   `multicycle_nop` stall of `DP`/`DC`).
//! * **Execute pipeline**: the decode root sits `IN execute_pipe.DC`; its
//!   `ACTIVATION { Instruction }` launches the decoded instruction into
//!   `E1` one shift later, carrying the operand binding.
//! * **Predication**: every instruction has a 3-bit predicate field
//!   (`[B0]`, `[!B0]`, `[A1]`, …) evaluated at E1.
//! * **Delay slots**: loads (4), multiplies (1) and branches are modelled
//!   with architectural in-flight queues advanced once per control step,
//!   so results appear the exact number of cycles later the C62x
//!   documents; branch redirection happens at the fetch stage while
//!   in-flight fall-through packets execute as delay slots.
//!
//! Instruction word (32 bits, custom encoding — we do not claim TI bit
//! compatibility): `pred[31:29] opcode[28:22] fields[21:1] p[0]`.

use crate::{Workbench, WorkbenchError};

/// Number of 32-bit words per fetch packet.
pub const FETCH_PACKET: usize = 8;

/// The LISA description of the core. See the module docs for the
/// architecture summary.
pub const SOURCE: &str = include_str!("vliw62.lisa");

/// Builds the workbench for `vliw62`.
///
/// # Errors
///
/// Returns [`WorkbenchError::Lisa`] if the embedded source fails to build
/// (a bug, covered by tests).
pub fn workbench() -> Result<Workbench, WorkbenchError> {
    Workbench::from_source(SOURCE, "pmem", "halt")
}

/// Assembles a program given as *execute packets* (each inner slice is a
/// set of instructions issued in parallel), applying the C62x packing
/// rules: p-bits chain the slots of an execute packet, and an execute
/// packet may not span a fetch-packet boundary (padding `NOP`s are
/// inserted).
///
/// Returns the packed program words and the word address of each execute
/// packet (usable as branch targets).
///
/// # Errors
///
/// Propagates assembly errors for any statement.
///
/// # Panics
///
/// Panics if an execute packet holds more than [`FETCH_PACKET`] slots.
pub fn assemble_packets(
    wb: &Workbench,
    packets: &[&[&str]],
) -> Result<(Vec<u128>, Vec<u64>), WorkbenchError> {
    let mut words: Vec<u128> = Vec::new();
    let mut labels = Vec::with_capacity(packets.len());
    let nop = wb.assemble(&["NOP 1"])?[0];
    for packet in packets {
        let mut encoded = wb.assemble(packet)?;
        assert!(
            encoded.len() <= FETCH_PACKET,
            "execute packet of {} slots exceeds the fetch packet",
            encoded.len()
        );
        // Pad to the next fetch-packet boundary if the execute packet
        // would straddle one.
        let pos = words.len() % FETCH_PACKET;
        if pos + encoded.len() > FETCH_PACKET {
            for _ in pos..FETCH_PACKET {
                words.push(nop);
            }
        }
        labels.push(words.len() as u64);
        // Set the p-bit on every slot but the last to chain the packet.
        let n = encoded.len();
        for (i, w) in encoded.iter_mut().enumerate() {
            if i + 1 < n {
                *w |= 1;
            }
        }
        words.extend(encoded);
    }
    // Pad the final fetch packet.
    while !words.len().is_multiple_of(FETCH_PACKET) {
        words.push(nop);
    }
    Ok((words, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::ModelStats;
    use lisa_sim::{SimMode, Simulator};

    fn run<'m>(wb: &'m Workbench, packets: &[&[&str]], mode: SimMode, max: u64) -> Simulator<'m> {
        let (words, _) = assemble_packets(wb, packets).expect("assembles");
        let mut sim = wb.simulator(mode).expect("sim builds");
        sim.load_program("pmem", &words).expect("loads");
        wb.run_to_halt(&mut sim, max).expect("halts");
        sim
    }

    fn a_reg(sim: &Simulator<'_>, wb: &Workbench, i: i64) -> i64 {
        sim.state().read_int(wb.model().resource_by_name("A").unwrap(), &[i]).unwrap()
    }

    fn b_reg(sim: &Simulator<'_>, wb: &Workbench, i: i64) -> i64 {
        sim.state().read_int(wb.model().resource_by_name("B").unwrap(), &[i]).unwrap()
    }

    #[test]
    fn model_builds_with_c62x_shape() {
        let wb = workbench().expect("builds");
        let model = wb.model();
        let fetch = model.pipelines().iter().find(|p| p.name == "fetch_pipe").expect("fetch pipe");
        assert_eq!(fetch.stages, ["PG", "PS", "PW", "PR", "DP"]);
        let exec =
            model.pipelines().iter().find(|p| p.name == "execute_pipe").expect("execute pipe");
        assert_eq!(exec.stages[0], "DC");
        let stats = ModelStats::of(model);
        assert!(stats.instructions >= 50, "broad ISA: {stats}");
        assert!(stats.aliases >= 2, "aliases present: {stats}");
        assert!(stats.operations >= 70, "operation count: {stats}");
    }

    #[test]
    fn serial_arithmetic_executes() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK A1, 6"],
                &["MVK A2, 7"],
                &["ADD .L A3, A1, A2"],
                &["SUB .L A4, A3, A1"],
                &["HALT"],
            ],
            SimMode::Interpretive,
            200,
        );
        assert_eq!(a_reg(&sim, &wb, 3), 13);
        assert_eq!(a_reg(&sim, &wb, 4), 7);
    }

    #[test]
    fn parallel_issue_executes_both_sides() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[&["MVK A1, 5", "MVK B1, 11"], &["ADD .L A2, A1, A1", "ADD .L B2, B1, B1"], &["HALT"]],
            SimMode::Compiled,
            200,
        );
        assert_eq!(a_reg(&sim, &wb, 2), 10);
        assert_eq!(b_reg(&sim, &wb, 2), 22);
    }

    #[test]
    fn multiply_has_one_delay_slot() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK A1, 6"],
                &["MVK A2, 7"],
                &["MPY A3, A1, A2"],
                &["MV .L A4, A3"], // delay slot: still old (0)
                &["MV .L A5, A3"], // after delay slot: 42
                &["HALT"],
            ],
            SimMode::Interpretive,
            200,
        );
        assert_eq!(a_reg(&sim, &wb, 4), 0, "delay slot sees the old value");
        assert_eq!(a_reg(&sim, &wb, 5), 42, "result lands after one delay slot");
        assert_eq!(a_reg(&sim, &wb, 3), 42);
    }

    #[test]
    fn load_has_four_delay_slots() {
        let wb = workbench().expect("builds");
        let (words, _) = assemble_packets(
            &wb,
            &[
                &["MVK A10, 256"], // byte address
                &["LDW *+A10[0], A1"],
                &["MV .L A2, A1"], // ds 1
                &["MV .L A3, A1"], // ds 2
                &["MV .L A4, A1"], // ds 3
                &["MV .L A5, A1"], // ds 4
                &["MV .L A6, A1"], // first consumer that sees it
                &["HALT"],
            ],
        )
        .expect("assembles");
        let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
        sim.load_program("pmem", &words).unwrap();
        // Preload little-endian 0x0000002A at byte address 256.
        let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
        sim.state_mut().write_int(&dmem, &[256], 0x2A).unwrap();
        wb.run_to_halt(&mut sim, 500).expect("halts");
        assert_eq!(a_reg(&sim, &wb, 2), 0, "delay slot 1");
        assert_eq!(a_reg(&sim, &wb, 3), 0, "delay slot 2");
        assert_eq!(a_reg(&sim, &wb, 4), 0, "delay slot 3");
        assert_eq!(a_reg(&sim, &wb, 5), 0, "delay slot 4");
        assert_eq!(a_reg(&sim, &wb, 6), 42, "visible after four delay slots");
    }

    #[test]
    fn predication_gates_execution() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK B0, 1"],
                &["MVK B1, 0"],
                &["NOP 2"],             // let the MVKs land before predicates read them
                &["[B0] MVK A1, 111"],  // B0 != 0: executes
                &["[B1] MVK A2, 222"],  // B1 == 0: annulled
                &["[!B1] MVK A3, 333"], // !B1: executes
                &["HALT"],
            ],
            SimMode::Compiled,
            300,
        );
        assert_eq!(a_reg(&sim, &wb, 1), 111);
        assert_eq!(a_reg(&sim, &wb, 2), 0);
        assert_eq!(a_reg(&sim, &wb, 3), 333);
    }

    #[test]
    fn branch_with_delay_slots_loops() {
        let wb = workbench().expect("builds");
        // Count B1 down from 5, accumulating B2 += B1 each iteration.
        let packets: Vec<Vec<&str>> = vec![
            vec!["MVK B1, 5"],
            vec!["MVK B2, 0"],
            vec!["MVK B3, 1"],
            vec!["ADD .L B2, B2, B1", "SUB .L B1, B1, B3"], // loop head
            vec!["[B1] B 3"],                               // back to the loop head while B1 != 0
            vec!["NOP 1"],
            vec!["NOP 1"],
            vec!["NOP 1"],
            vec!["NOP 1"],
            vec!["NOP 1"], // delay-slot cycles
            vec!["HALT"],
        ];
        let packet_refs: Vec<&[&str]> = packets.iter().map(|p| p.as_slice()).collect();
        let (words, labels) = assemble_packets(&wb, &packet_refs).expect("assembles");
        assert_eq!(labels[3], 3, "loop head address used by the branch");
        let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
        sim.load_program("pmem", &words).unwrap();
        wb.run_to_halt(&mut sim, 2000).expect("halts");
        assert_eq!(b_reg(&sim, &wb, 2), 15, "5+4+3+2+1");
        assert_eq!(b_reg(&sim, &wb, 1), 0);
    }

    #[test]
    fn multicycle_nop_stalls_dispatch() {
        let wb = workbench().expect("builds");
        let short = run(&wb, &[&["MVK A1, 1"], &["NOP 1"], &["HALT"]], SimMode::Interpretive, 300);
        let long = run(&wb, &[&["MVK A1, 1"], &["NOP 7"], &["HALT"]], SimMode::Interpretive, 300);
        let d = long.stats().cycles as i64 - short.stats().cycles as i64;
        assert_eq!(d, 6, "NOP 7 costs six extra cycles over NOP 1");
        assert!(long.stats().stalls > short.stats().stalls);
    }

    #[test]
    fn both_modes_agree_on_a_mixed_program() {
        let wb = workbench().expect("builds");
        let packets: Vec<Vec<&str>> = vec![
            vec!["MVK A1, 1000"],
            vec!["MVK A2, -7", "MVK B1, 3"],
            vec!["MPY A3, A1, A2"],
            vec!["NOP 2"],
            vec!["ADD .L A4, A3, A1", "SHL B2, B1, 4"],
            vec!["SADD A5, A4, A4"],
            vec!["AND .L B3, B1, B2", "OR .L B4, B1, B2"],
            vec!["CMPGT A6, A1, A2"],
            vec!["NORM A7, A1"],
            vec!["HALT"],
        ];
        let packet_refs: Vec<&[&str]> = packets.iter().map(|p| p.as_slice()).collect();
        let (words, _) = assemble_packets(&wb, &packet_refs).expect("assembles");
        let mut interp = wb.simulator(SimMode::Interpretive).unwrap();
        let mut compiled = wb.simulator(SimMode::Compiled).unwrap();
        interp.load_program("pmem", &words).unwrap();
        compiled.load_program("pmem", &words).unwrap();
        for cycle in 0..60 {
            interp.step().unwrap();
            compiled.step().unwrap();
            assert_eq!(interp.state(), compiled.state(), "diverged at cycle {cycle}");
        }
    }

    #[test]
    fn store_and_load_round_trip_memory() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK A10, 512"],
                &["MVK A1, -12345"],
                &["STW A1, *+A10[3]"],
                &["LDW *+A10[3], B1"],
                &["NOP 5"],
                &["MV .L B2, B1"],
                &["HALT"],
            ],
            SimMode::Compiled,
            300,
        );
        assert_eq!(b_reg(&sim, &wb, 2), -12345);
    }

    #[test]
    fn byte_and_halfword_accesses_extend_correctly() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK A10, 640"],
                &["MVK A1, -2"], // 0xFFFFFFFE
                &["STB A1, *+A10[0]"],
                &["STH A1, *+A10[1]"], // halfword at byte 642
                &["LDB *+A10[0], B1"],
                &["LDBU *+A10[0], B2"],
                &["LDH *+A10[1], B3"],
                &["LDHU *+A10[1], B4"],
                &["NOP 6"],
                &["HALT"],
            ],
            SimMode::Interpretive,
            400,
        );
        assert_eq!(b_reg(&sim, &wb, 1), -2, "LDB sign-extends");
        assert_eq!(b_reg(&sim, &wb, 2), 0xFE, "LDBU zero-extends");
        assert_eq!(b_reg(&sim, &wb, 3), -2, "LDH sign-extends");
        assert_eq!(b_reg(&sim, &wb, 4), 0xFFFE, "LDHU zero-extends");
    }

    #[test]
    fn simd_add2_and_saturating_ops() {
        let wb = workbench().expect("builds");
        let sim = run(
            &wb,
            &[
                &["MVK A1, 0x7FFF"],
                &["MVKH A1, 0x0001"], // A1 = 0x00017FFF
                &["MVK A2, 1"],
                &["MVKH A2, 0x0001"], // A2 = 0x00010001
                &["ADD2 A3, A1, A2"],
                &["MVK B1, 0x7FFF"],
                &["MVKH B1, 0x7FFF"], // B1 = 0x7FFF7FFF
                &["SADD B2, B1, B1"], // saturates at 0x7FFFFFFF
                &["HALT"],
            ],
            SimMode::Compiled,
            300,
        );
        // high: 0x0001+0x0001 = 0x0002; low: 0x7FFF+0x0001 = 0x8000.
        assert_eq!(a_reg(&sim, &wb, 3) as u32, 0x0002_8000);
        assert_eq!(b_reg(&sim, &wb, 2), i64::from(i32::MAX));
    }

    #[test]
    fn disassembly_round_trips_representative_instructions() {
        let wb = workbench().expect("builds");
        for stmt in [
            "ADD .L A1, A2, A3",
            "ADD .S B1, B2, B3",
            "ADD .D A4, A5, A6",
            "SUB .L B7, B8, B9",
            "AND .L A1, A2, A3",
            "CMPGT A1, A2, A3",
            "CMPLTU B1, B2, B3",
            "SADD A1, A2, A3",
            "ABS A1, A2",
            "NORM B5, B6",
            "MPY A3, A1, A2",
            "MPYH B3, B1, B2",
            "SMPY A3, A1, A2",
            "MVK A1, -32768",
            "MVKH A1, 0x7fff",
            "ADDK A1, 100",
            "SHL A1, A2, 7",
            "SHR B1, B2, 3",
            "EXT A1, A2, 12",
            "SET A1, A2, 5",
            "LDW *+ A10[2], A1",
            "STH B1, *+ B10[4]",
            "[B0] MVK A1, 7",
            "[!A1] ADD .L B1, B2, B3",
            "B 64",
            "NOP 3",
            "HALT",
        ] {
            let words = wb.assemble(&[stmt]).expect(stmt);
            let text = wb.disassemble(words[0]).expect(stmt);
            assert_eq!(text, stmt, "round trip");
        }
    }

    #[test]
    fn aliases_map_to_canonical_encodings() {
        let wb = workbench().expect("builds");
        let mv = wb.assemble(&["MV .L A1, A2"]).unwrap()[0];
        let or = wb.assemble(&["OR .L A1, A2, A2"]).unwrap()[0];
        assert_eq!(mv, or, "MV is OR d,s,s");
        let zero = wb.assemble(&["ZERO A5"]).unwrap()[0];
        let xor = wb.assemble(&["XOR .L A5, A5, A5"]).unwrap()[0];
        assert_eq!(zero, xor, "ZERO is XOR d,d,d");
        assert_eq!(wb.disassemble(mv).unwrap(), "OR .L A1, A2, A2");
    }
}

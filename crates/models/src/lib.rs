//! Processor models written in LISA, plus DSP kernel workloads and golden
//! reference results.
//!
//! Three models, mirroring the paper's modeling experience (§4):
//!
//! * [`vliw62`] — the test case: a TMS320C62xx-*shaped* 8-issue VLIW DSP
//!   with two register file sides (A/B), fetch packets with p-bit
//!   parallel chaining, predicated execution, load/multiply/branch delay
//!   slots, the paper's fetch pipeline (`PG PS PW PR DP`) and execute
//!   pipeline (`DC E1`), and a multicycle-NOP stall (paper Example 5);
//! * [`accu16`] — an accumulator DSP in the style of paper Example 1:
//!   a 40-bit accumulator, MAC with saturation, banked data memories;
//! * [`scalar2`] — a dual-issue in-order superscalar (the paper's third
//!   claimed architecture class), with the issue/hazard logic written in
//!   the description;
//! * [`tinyrisc`] — a 16-bit teaching core used by the quickstart.
//!
//! Each model module exposes `SOURCE` (the LISA text), a [`Workbench`]
//! constructor, and kernel programs with golden results for differential
//! verification (experiment E4: the stand-in for the paper's `sim62x`
//! cross-check).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accu16;
pub mod kernels;
pub mod scalar2;
pub mod tinyrisc;
pub mod vliw62;
mod workbench;

pub use workbench::{Workbench, WorkbenchError};

//! `accu16` — an accumulator DSP in the style of paper Example 1.
//!
//! The resource section mirrors the paper's: a program counter, an
//! instruction register, a wide accumulator (`bit[40]`), a carry bit, a
//! linear data memory, a *banked* data memory
//! (`data_mem2[2]([256])` — two banks of 256 words, the paper's
//! `data_mem2[4]([0x20000])` shape), and a program memory with an address
//! *range* (`prog_mem[0x100..0x4ff]`). The ISA is a classic MAC-oriented
//! fixed-point DSP: multiply-accumulate with optional saturation,
//! normalisation (`NORM`), accumulator shifts, and a hardware loop
//! counter.
//!
//! Instruction word: 24 bits, `opcode[6] | fields[18]`.

use crate::{Workbench, WorkbenchError};

/// The LISA description of the DSP.
pub const SOURCE: &str = r#"
// accu16: 16-bit fixed-point accumulator DSP with a 40-bit accumulator.

RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER bit[40] accu;
    REGISTER bit carry;
    REGISTER bit sat_mode;
    REGISTER bit halt;
    REGISTER bit started;
    REGISTER short r[4];        // x0, x1, y0, y1
    REGISTER short result;
    REGISTER int lc;            // hardware loop counter
    REGISTER int ar[2];         // address registers
    DATA_MEMORY short data_mem1[0x1000];
    DATA_MEMORY short data_mem2[2]([256]);
    PROGRAM_MEMORY int prog_mem[0x100..0x4ff];
}

// ---------------------------------------------------------------- operands

OPERATION reg4 {
    DECLARE { LABEL index; }
    CODING { index:0bx[2] }
    SYNTAX { "r" index:#u }
    EXPRESSION { r[index] }
}

OPERATION areg {
    DECLARE { LABEL index; }
    CODING { index:0bx[1] }
    SYNTAX { "a" index:#u }
    EXPRESSION { ar[index] }
}

OPERATION addr12 {
    DECLARE { LABEL value; }
    CODING { value:0bx[12] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION bank1 {
    DECLARE { LABEL value; }
    CODING { value:0bx[1] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION addr8 {
    DECLARE { LABEL value; }
    CODING { value:0bx[8] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION imm16 {
    DECLARE { LABEL value; }
    CODING { value:0bx[16] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 16) }
}

OPERATION sh6 {
    DECLARE { LABEL value; }
    CODING { value:0bx[6] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 6) }
}

// ------------------------------------------------------------- instructions

OPERATION clr {
    CODING { 0b000001 0bx[18] }
    SYNTAX { "CLR" }
    SEMANTICS { CLEAR(accu) }
    BEHAVIOR { accu = 0; carry = 0; }
}

OPERATION movi {
    DECLARE { GROUP Dest = { reg4 }; GROUP Val = { imm16 }; }
    CODING { 0b000010 Dest Val }
    SYNTAX { "MOVI" Dest "," Val }
    SEMANTICS { LOAD_IMMEDIATE(Dest, Val) }
    BEHAVIOR { Dest = Val; }
}

OPERATION movx {
    DECLARE { GROUP Dest = { reg4 }; GROUP Addr = { addr12 }; }
    CODING { 0b000011 Dest Addr 0bx[4] }
    SYNTAX { "MOVX" Dest "," Addr }
    SEMANTICS { LOAD(Dest, data_mem1[Addr]) }
    BEHAVIOR { Dest = data_mem1[Addr]; }
}

OPERATION movb {
    DECLARE { GROUP Dest = { reg4 }; GROUP Bank = { bank1 }; GROUP Addr = { addr8 }; }
    CODING { 0b000100 Dest Bank Addr 0bx[7] }
    SYNTAX { "MOVB" Dest "," Bank "," Addr }
    SEMANTICS { LOAD(Dest, data_mem2[Bank][Addr]) }
    BEHAVIOR { Dest = data_mem2[Bank][Addr]; }
}

// Indirect load with post-increment through an address register.
OPERATION movp {
    DECLARE { GROUP Dest = { reg4 }; GROUP Ptr = { areg }; }
    CODING { 0b000101 Dest Ptr 0bx[15] }
    SYNTAX { "MOVP" Dest "," Ptr }
    SEMANTICS { LOAD_POSTINC(Dest, data_mem1[Ptr]) }
    BEHAVIOR { Dest = data_mem1[Ptr & 4095]; Ptr = Ptr + 1; }
}

OPERATION stx {
    DECLARE { GROUP Src = { reg4 }; GROUP Addr = { addr12 }; }
    CODING { 0b000110 Src Addr 0bx[4] }
    SYNTAX { "STX" Src "," Addr }
    SEMANTICS { STORE(data_mem1[Addr], Src) }
    BEHAVIOR { data_mem1[Addr] = Src; }
}

OPERATION lar {
    DECLARE { GROUP Dest = { areg }; GROUP Addr = { addr12 }; }
    CODING { 0b000111 Dest Addr 0bx[5] }
    SYNTAX { "LAR" Dest "," Addr }
    SEMANTICS { LOAD_ADDRESS(Dest, Addr) }
    BEHAVIOR { Dest = Addr; }
}

OPERATION mpy {
    DECLARE { GROUP SrcX, SrcY = { reg4 }; }
    CODING { 0b001000 SrcX SrcY 0bx[14] }
    SYNTAX { "MPY" SrcX "," SrcY }
    SEMANTICS { MULTIPLY(accu, SrcX, SrcY) }
    BEHAVIOR { accu = SrcX * SrcY; }
}

OPERATION mac {
    DECLARE { GROUP SrcX, SrcY = { reg4 }; }
    CODING { 0b001001 SrcX SrcY 0bx[14] }
    SYNTAX { "MAC" SrcX "," SrcY }
    SEMANTICS { MULTIPLY_ACCUMULATE(accu, SrcX, SrcY) }
    BEHAVIOR {
        long sum = sext(accu, 40) + SrcX * SrcY;
        if (sat_mode) {
            accu = saturate(sum, 40);
        } else {
            accu = sum;
        }
    }
}

OPERATION mas {
    DECLARE { GROUP SrcX, SrcY = { reg4 }; }
    CODING { 0b001010 SrcX SrcY 0bx[14] }
    SYNTAX { "MAS" SrcX "," SrcY }
    SEMANTICS { MULTIPLY_SUBTRACT(accu, SrcX, SrcY) }
    BEHAVIOR {
        long diff = sext(accu, 40) - SrcX * SrcY;
        if (sat_mode) {
            accu = saturate(diff, 40);
        } else {
            accu = diff;
        }
    }
}

OPERATION adda {
    DECLARE { GROUP Src = { reg4 }; }
    CODING { 0b001011 Src 0bx[16] }
    SYNTAX { "ADDA" Src }
    SEMANTICS { ADD(accu, Src) }
    BEHAVIOR {
        long sum = sext(accu, 40) + Src;
        carry = sum > 549755813887 || sum < -549755813888;
        accu = sum;
    }
}

OPERATION ash {
    DECLARE { GROUP Amount = { sh6 }; }
    CODING { 0b001100 Amount 0bx[12] }
    SYNTAX { "ASH" Amount }
    SEMANTICS { ARITH_SHIFT(accu, Amount) }
    BEHAVIOR {
        long v = sext(accu, 40);
        if (Amount >= 0) {
            accu = v << Amount;
        } else {
            accu = v >> (0 - Amount);
        }
    }
}

OPERATION norm_op {
    CODING { 0b001101 0bx[18] }
    SYNTAX { "NORM" }
    SEMANTICS { NORMALIZE(accu) }
    BEHAVIOR {
        int n = norm(sext(accu, 40), 40);
        accu = sext(accu, 40) << n;
        result = n;
    }
}

// Round and saturate the accumulator into the 16-bit result register.
OPERATION sat16 {
    CODING { 0b001110 0bx[18] }
    SYNTAX { "SAT16" }
    SEMANTICS { SATURATE_16(result, accu) }
    BEHAVIOR { result = saturate(sext(accu, 40), 16); }
}

OPERATION sta {
    DECLARE { GROUP Addr = { addr12 }; }
    CODING { 0b001111 Addr 0bx[6] }
    SYNTAX { "STA" Addr }
    SEMANTICS { STORE(data_mem1[Addr], accu) }
    BEHAVIOR { data_mem1[Addr] = sext(accu, 40); }
}

OPERATION ssat {
    DECLARE { GROUP Mode = { bank1 }; }
    CODING { 0b010000 Mode 0bx[17] }
    SYNTAX { "SSAT" Mode }
    SEMANTICS { SET_SATURATION(Mode) }
    BEHAVIOR { sat_mode = Mode; }
}

OPERATION ldlc {
    DECLARE { GROUP Count = { addr12 }; }
    CODING { 0b010001 Count 0bx[6] }
    SYNTAX { "LDLC" Count }
    SEMANTICS { LOAD_LOOP_COUNT(Count) }
    BEHAVIOR { lc = Count; }
}

// Decrement the loop counter and branch while it is not zero.
OPERATION dbnz {
    DECLARE { GROUP Target = { addr12 }; }
    CODING { 0b010010 Target 0bx[6] }
    SYNTAX { "DBNZ" Target }
    SEMANTICS { DEC_BRANCH_NOT_ZERO(lc, Target) }
    BEHAVIOR {
        lc = lc - 1;
        if (lc != 0) { pc = Target - 1; }
    }
}

OPERATION jmp {
    DECLARE { GROUP Target = { addr12 }; }
    CODING { 0b010011 Target 0bx[6] }
    SYNTAX { "JMP" Target }
    SEMANTICS { JUMP(Target) }
    BEHAVIOR { pc = Target - 1; }
}

OPERATION hlt {
    CODING { 0b010100 0bx[18] }
    SYNTAX { "HLT" }
    SEMANTICS { HALT() }
    BEHAVIOR { halt = 1; }
}

OPERATION nop {
    CODING { 0b000000 0bx[18] }
    SYNTAX { "NOP" }
    SEMANTICS { NO_OPERATION() }
    BEHAVIOR { }
}


OPERATION nega {
    CODING { 0b010101 0bx[18] }
    SYNTAX { "NEGA" }
    SEMANTICS { NEGATE(accu) }
    BEHAVIOR { accu = 0 - sext(accu, 40); }
}

OPERATION tfr {
    DECLARE { GROUP Dest, Src = { reg4 }; }
    CODING { 0b010110 Dest Src 0bx[14] }
    SYNTAX { "TFR" Dest "," Src }
    SEMANTICS { TRANSFER(Dest, Src) }
    BEHAVIOR { Dest = Src; }
}

// Store a register into the banked memory (the write half of MOVB).
OPERATION movy {
    DECLARE { GROUP Src = { reg4 }; GROUP Bank = { bank1 }; GROUP Addr = { addr8 }; }
    CODING { 0b010111 Src Bank Addr 0bx[7] }
    SYNTAX { "MOVY" Src "," Bank "," Addr }
    SEMANTICS { STORE(data_mem2[Bank][Addr], Src) }
    BEHAVIOR { data_mem2[Bank][Addr] = Src; }
}

// Store with post-increment through an address register (the write
// counterpart of MOVP).
OPERATION stp {
    DECLARE { GROUP Src = { reg4 }; GROUP Ptr = { areg }; }
    CODING { 0b011001 Src Ptr 0bx[15] }
    SYNTAX { "STP" Src "," Ptr }
    SEMANTICS { STORE_POSTINC(data_mem1[Ptr], Src) }
    BEHAVIOR { data_mem1[Ptr & 4095] = Src; Ptr = Ptr + 1; }
}

// Branch while the accumulator is not zero.
OPERATION bnza {
    DECLARE { GROUP Target = { addr12 }; }
    CODING { 0b011010 Target 0bx[6] }
    SYNTAX { "BNZA" Target }
    SEMANTICS { BRANCH_ACCU_NOT_ZERO(Target) }
    BEHAVIOR { if (sext(accu, 40) != 0) { pc = Target - 1; } }
}

// ------------------------------------------------------------------ control


OPERATION decode {
    DECLARE {
        GROUP Instruction = {
            nop || clr || movi || movx || movb || movp || stx || lar ||
            mpy || mac || mas || adda || ash || norm_op || sat16 || sta ||
            ssat || ldlc || dbnz || jmp || hlt ||
            nega || tfr || movy || stp || bnza
        };
    }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION fetch {
    BEHAVIOR { ir = prog_mem[pc]; }
}

OPERATION main {
    BEHAVIOR {
        if (started == 0) {
            // Reset: execution begins at the program-memory base address.
            pc = 0x100;
            started = 1;
        }
        if (halt == 0) {
            fetch;
            decode;
            pc = pc + 1;
        }
    }
}
"#;

/// Base address of program memory (reset vector).
pub const PROGRAM_BASE: i64 = 0x100;

/// Builds the workbench for `accu16`.
///
/// # Errors
///
/// Returns [`WorkbenchError::Lisa`] if the embedded source fails to build
/// (a bug, covered by tests).
pub fn workbench() -> Result<Workbench, WorkbenchError> {
    Workbench::from_source(SOURCE, "prog_mem", "halt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::ModelStats;
    use lisa_sim::SimMode;

    #[test]
    fn model_builds_with_expected_shape() {
        let wb = workbench().expect("builds");
        let stats = ModelStats::of(wb.model());
        assert_eq!(stats.instructions, 26);
        assert_eq!(stats.aliases, 0);
        let accu = wb.model().resource_by_name("accu").unwrap();
        assert_eq!(accu.ty.width(), 40);
        let banked = wb.model().resource_by_name("data_mem2").unwrap();
        assert_eq!(banked.element_count(), 512);
    }

    #[test]
    fn mac_loop_computes_dot_product() {
        let wb = workbench().expect("builds");
        // dot([1,2,3,4], [5,6,7,8]) = 70, via MOVI + MAC.
        let program = [
            "CLR",
            "MOVI r0, 1",
            "MOVI r1, 5",
            "MAC r0, r1",
            "MOVI r0, 2",
            "MOVI r1, 6",
            "MAC r0, r1",
            "MOVI r0, 3",
            "MOVI r1, 7",
            "MAC r0, r1",
            "MOVI r0, 4",
            "MOVI r1, 8",
            "MAC r0, r1",
            "SAT16",
            "HLT",
        ];
        for mode in [SimMode::Interpretive, SimMode::Compiled] {
            let sim = wb.run_program(&program, mode, 10_000).expect("halts");
            let result = wb.model().resource_by_name("result").unwrap();
            assert_eq!(sim.state().read_int(result, &[]).unwrap(), 70, "{mode:?}");
        }
    }

    #[test]
    fn saturation_mode_clamps_accumulator() {
        let wb = workbench().expect("builds");
        // 32767 * 32767 accumulated 3 times overflows 40-bit when repeated
        // enough; with SSAT 1 the accumulator rails instead of wrapping.
        let mut program = vec!["SSAT 1", "CLR", "MOVI r0, 32767", "MOVI r1, 32767"];
        program.extend(std::iter::repeat_n("MAC r0, r1", 600));
        program.push("HLT");
        let sim = wb.run_program(&program, SimMode::Compiled, 10_000).expect("halts");
        let accu = wb.model().resource_by_name("accu").unwrap();
        let raw = sim.state().read(accu, &[]).unwrap();
        assert_eq!(raw.to_i128(), (1i128 << 39) - 1, "accumulator saturated at +max");
    }

    #[test]
    fn hardware_loop_with_pointer_addressing() {
        let wb = workbench().expect("builds");
        // Sum data_mem1[0..8) via MOVP post-increment and DBNZ.
        let mut program = vec![
            "CLR",
            "SSAT 0",
            "LAR a0, 0",
            "LDLC 8",
            // loop body at PROGRAM_BASE + 4:
            "MOVP r0, a0",
            "MOVI r1, 1",
            "MAC r0, r1",
            "DBNZ 260", // 0x104
            "SAT16",
            "HLT",
        ];
        let words = wb.assemble(&program).expect("assembles");
        let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
        sim.load_program("prog_mem", &words).unwrap();
        let dmem = wb.model().resource_by_name("data_mem1").unwrap().clone();
        for i in 0..8 {
            sim.state_mut().write_int(&dmem, &[i], (i + 1) * 10).unwrap();
        }
        wb.run_to_halt(&mut sim, 10_000).expect("halts");
        let result = wb.model().resource_by_name("result").unwrap();
        assert_eq!(sim.state().read_int(result, &[]).unwrap(), 360);
        program.clear();
    }

    #[test]
    fn norm_normalises_accumulator() {
        let wb = workbench().expect("builds");
        let program = ["CLR", "MOVI r0, 1", "MOVI r1, 1", "MAC r0, r1", "NORM", "HLT"];
        let sim = wb.run_program(&program, SimMode::Interpretive, 1000).expect("halts");
        let result = wb.model().resource_by_name("result").unwrap();
        // accu = 1 in 40 bits: 38 redundant sign bits.
        assert_eq!(sim.state().read_int(result, &[]).unwrap(), 38);
        let accu = wb.model().resource_by_name("accu").unwrap();
        let raw = sim.state().read(accu, &[]).unwrap();
        assert_eq!(raw.to_i128(), 1i128 << 38);
    }

    #[test]
    fn extended_ops_transfer_store_and_branch() {
        let wb = workbench().expect("builds");
        // TFR + STP + MOVY + NEGA + BNZA: copy a register through memory
        // and count the accumulator down with the accu branch.
        let program = [
            "MOVI r0, -42",
            "TFR r3, r0", // r3 = -42
            "LAR a1, 100",
            "STP r3, a1",    // data_mem1[100] = -42; a1 -> 101
            "STP r3, a1",    // data_mem1[101] = -42
            "MOVY r3, 1, 9", // data_mem2[1][9] = -42
            "CLR",
            "MOVI r1, 3",
            "ADDA r1", // accu = 3
            // countdown: accu += -1 until zero
            "MOVI r2, -1",
            "ADDA r2",
            "BNZA 266", // 0x10A = address of the ADDA r2 line
            "NEGA",     // accu = 0 -> stays 0
            "SAT16",
            "HLT",
        ];
        for mode in [SimMode::Interpretive, SimMode::Compiled] {
            let sim = wb.run_program(&program, mode, 10_000).expect("halts");
            let d1 = wb.model().resource_by_name("data_mem1").unwrap();
            assert_eq!(sim.state().read_int(d1, &[100]).unwrap(), -42, "{mode:?}");
            assert_eq!(sim.state().read_int(d1, &[101]).unwrap(), -42, "{mode:?}");
            let d2 = wb.model().resource_by_name("data_mem2").unwrap();
            assert_eq!(sim.state().read_int(d2, &[1, 9]).unwrap(), -42, "{mode:?}");
            let ar = wb.model().resource_by_name("ar").unwrap();
            assert_eq!(sim.state().read_int(ar, &[1]).unwrap(), 102, "{mode:?}");
            let result = wb.model().resource_by_name("result").unwrap();
            assert_eq!(sim.state().read_int(result, &[]).unwrap(), 0, "{mode:?}");
        }
    }

    #[test]
    fn banked_memory_load() {
        let wb = workbench().expect("builds");
        let words = wb.assemble(&["MOVB r2, 1, 17", "STX r2, 99", "HLT"]).unwrap();
        let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
        sim.load_program("prog_mem", &words).unwrap();
        let bank = wb.model().resource_by_name("data_mem2").unwrap().clone();
        sim.state_mut().write_int(&bank, &[1, 17], -123).unwrap();
        wb.run_to_halt(&mut sim, 100).expect("halts");
        let dmem = wb.model().resource_by_name("data_mem1").unwrap();
        assert_eq!(sim.state().read_int(dmem, &[99]).unwrap(), -123);
    }
}

//! VCD (value-change-dump) export of the pipeline timeline.
//!
//! Renders a recorded event stream as a waveform: one 16-bit `op` wire
//! per pipeline stage (carrying `OpId + 1`, `0` = idle), a 16-bit
//! top-level `op` wire for stage-less execution, and per-pipeline
//! 1-bit `stall` / `flush` strobes. One VCD time unit is one control
//! step, so a waveform viewer shows exactly the paper's §3.4 picture:
//! which operation occupied which stage at which cycle, and where the
//! pipeline stalled or flushed.

use std::io::{self, Write};

use crate::{NameTable, TraceEvent};

/// Writes `events` as a VCD document shaped by `names`.
///
/// Events are grouped by cycle; wires are combinational per control
/// step (a stage occupied at cycle *c* returns to idle at *c + 1*
/// unless re-occupied). The header is static so output is
/// byte-for-byte deterministic.
pub fn write_vcd<W: Write>(names: &NameTable, events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    let layout = Layout::of(names);

    writeln!(w, "$version lisa-trace pipeline timeline $end")?;
    writeln!(w, "$timescale 1 ns $end")?;
    writeln!(w, "$comment one time unit = one control step $end")?;
    writeln!(w, "$scope module cpu $end")?;
    writeln!(w, "$var wire 16 {} op $end", code(Layout::CPU_OP))?;
    for (p, (pipe_name, stages)) in names.pipelines.iter().enumerate() {
        writeln!(w, "$scope module {} $end", ident(pipe_name))?;
        for (s, stage_name) in stages.iter().enumerate() {
            writeln!(w, "$var wire 16 {} {} $end", code(layout.stage(p, s)), ident(stage_name))?;
        }
        writeln!(w, "$var wire 1 {} stall $end", code(layout.stall(p)))?;
        writeln!(w, "$var wire 1 {} flush $end", code(layout.flush(p)))?;
        writeln!(w, "$upscope $end")?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    // Initial state: everything idle.
    writeln!(w, "$dumpvars")?;
    let mut current = vec![0u32; layout.vars];
    for var in 0..layout.vars {
        write_value(w, &layout, var, 0)?;
    }
    writeln!(w, "$end")?;

    let mut i = 0;
    let mut last_cycle: Option<u64> = None;
    while i < events.len() {
        let cycle = events[i].cycle();
        // Wires are per-control-step: zero anything still set from the
        // previous event-bearing cycle before applying this one.
        if let Some(prev) = last_cycle {
            if prev + 1 < cycle && current.iter().any(|&v| v != 0) {
                writeln!(w, "#{}", prev + 1)?;
                reset(w, &layout, &mut current)?;
            }
        }
        let mut next = vec![0u32; layout.vars];
        while i < events.len() && events[i].cycle() == cycle {
            apply(&layout, &events[i], &mut next);
            i += 1;
        }
        writeln!(w, "#{cycle}")?;
        for var in 0..layout.vars {
            if next[var] != current[var] {
                write_value(w, &layout, var, next[var])?;
            }
        }
        current = next;
        last_cycle = Some(cycle);
    }
    if let Some(prev) = last_cycle {
        if current.iter().any(|&v| v != 0) {
            writeln!(w, "#{}", prev + 1)?;
            reset(w, &layout, &mut current)?;
        }
    }
    w.flush()
}

/// Variable indexing: `[cpu.op, pipe0 stages.., pipe0 stall, pipe0
/// flush, pipe1 stages.., ...]`.
struct Layout {
    /// First variable index of each pipeline's block.
    pipe_base: Vec<usize>,
    /// Stage count per pipeline.
    depth: Vec<usize>,
    /// Total variable count.
    vars: usize,
}

impl Layout {
    const CPU_OP: usize = 0;

    fn of(names: &NameTable) -> Layout {
        let mut pipe_base = Vec::with_capacity(names.pipelines.len());
        let mut depth = Vec::with_capacity(names.pipelines.len());
        let mut vars = 1;
        for (_, stages) in &names.pipelines {
            pipe_base.push(vars);
            depth.push(stages.len());
            vars += stages.len() + 2;
        }
        Layout { pipe_base, depth, vars }
    }

    fn stage(&self, pipe: usize, stage: usize) -> usize {
        self.pipe_base[pipe] + stage
    }

    fn stall(&self, pipe: usize) -> usize {
        self.pipe_base[pipe] + self.depth[pipe]
    }

    fn flush(&self, pipe: usize) -> usize {
        self.pipe_base[pipe] + self.depth[pipe] + 1
    }

    fn is_scalar(&self, var: usize) -> bool {
        self.pipe_base
            .iter()
            .zip(&self.depth)
            .any(|(&base, &d)| var == base + d || var == base + d + 1)
    }
}

fn apply(layout: &Layout, event: &TraceEvent, values: &mut [u32]) {
    match *event {
        TraceEvent::Exec { op, stage, .. } => {
            let encoded = (op.0 as u32).saturating_add(1).min(u32::from(u16::MAX));
            match stage {
                Some((p, s)) if p.0 < layout.depth.len() && usize::from(s) < layout.depth[p.0] => {
                    values[layout.stage(p.0, usize::from(s))] = encoded;
                }
                _ => values[Layout::CPU_OP] = encoded,
            }
        }
        TraceEvent::Stall { pipe, .. } if pipe.0 < layout.depth.len() => {
            values[layout.stall(pipe.0)] = 1;
        }
        TraceEvent::Flush { pipe, .. } if pipe.0 < layout.depth.len() => {
            values[layout.flush(pipe.0)] = 1;
        }
        _ => {}
    }
}

fn reset<W: Write>(w: &mut W, layout: &Layout, current: &mut [u32]) -> io::Result<()> {
    for (var, value) in current.iter_mut().enumerate() {
        if *value != 0 {
            write_value(w, layout, var, 0)?;
            *value = 0;
        }
    }
    Ok(())
}

fn write_value<W: Write>(w: &mut W, layout: &Layout, var: usize, value: u32) -> io::Result<()> {
    if layout.is_scalar(var) {
        writeln!(w, "{}{}", value.min(1), code(var))
    } else if value == 0 {
        writeln!(w, "b0 {}", code(var))
    } else {
        writeln!(w, "b{value:b} {}", code(var))
    }
}

/// Short printable identifier code for variable `var` (base-94 over the
/// printable ASCII range VCD allows, `!`..`~`).
fn code(var: usize) -> String {
    let mut n = var;
    let mut out = String::new();
    loop {
        out.push(char::from(b'!' + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    out
}

/// VCD identifiers must not contain whitespace; model names are
/// identifiers already, but never emit a malformed header.
fn ident(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::{OpId, PipelineId};

    fn names() -> NameTable {
        NameTable {
            ops: vec!["main".into(), "add".into()],
            resources: vec![],
            pipelines: vec![("pipe".into(), vec!["FE".into(), "EX".into()])],
        }
    }

    #[test]
    fn header_declares_every_wire_once() {
        let mut out = Vec::new();
        write_vcd(&names(), &[], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$scope module cpu $end"));
        assert!(text.contains("$scope module pipe $end"));
        assert_eq!(text.matches("$var wire 16").count(), 3, "op + 2 stages");
        assert_eq!(text.matches("$var wire 1 ").count(), 2, "stall + flush");
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("$dumpvars"));
    }

    #[test]
    fn stage_occupancy_appears_and_clears() {
        let events = [
            TraceEvent::Exec { cycle: 2, op: OpId(1), stage: Some((PipelineId(0), 1)), pc: 0 },
            TraceEvent::Stall { cycle: 2, pipe: PipelineId(0), upto: 0 },
        ];
        let mut out = Vec::new();
        write_vcd(&names(), &events, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let ex_code = code(2); // cpu.op=0, FE=1, EX=2
        let stall_code = code(3);
        assert!(text.contains("#2\n"), "timestamp for the event cycle");
        assert!(text.contains(&format!("b10 {ex_code}")), "OpId(1)+1 = 2 = b10: {text}");
        assert!(text.contains(&format!("1{stall_code}")), "stall strobe: {text}");
        assert!(text.contains("#3\n"), "wires clear on the next step");
        let after = text.split("#3\n").nth(1).unwrap();
        assert!(after.contains(&format!("b0 {ex_code}")));
        assert!(after.contains(&format!("0{stall_code}")));
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for var in 0..200 {
            let c = code(var);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }
}

//! Trace sinks: where recorded events go.

use std::collections::VecDeque;
use std::io::Write;

use crate::{NameTable, TraceEvent};

/// A consumer of [`TraceEvent`]s.
///
/// The simulator holds a sink behind `Option<Box<dyn TraceSink>>`; with
/// no sink installed the cycle path pays a single branch, so tracing is
/// free when disabled. Sinks must be `Send` so traced simulators keep
/// working inside batch-runner worker threads.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);

    /// Takes every buffered event, oldest first. Streaming sinks that
    /// keep no buffer return an empty vector (the default).
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Discards any buffered events (default: drop the drained buffer).
    fn clear(&mut self) {
        let _ = self.drain();
    }

    /// Cumulative events this sink has discarded to stay within its
    /// bounds. Unbounded sinks lose nothing and report 0 (the default);
    /// the simulator publishes this through the shared metrics registry
    /// so silent event loss is observable.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Collects every event in order — the default sink behind the
/// simulator's `set_trace(true)`. Unbounded; prefer [`RingBufferSink`]
/// for production-length runs.
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    events: Vec<TraceEvent>,
}

impl CollectingSink {
    /// An empty collecting sink.
    #[must_use]
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// The events collected so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for CollectingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Keeps only the most recent `capacity` events — bounded memory for
/// always-on tracing of long runs (flight-recorder style).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingBufferSink {
        let capacity = capacity.max(1);
        RingBufferSink { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Events evicted so far to stay within capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streams each event as one JSON line to a writer — nothing is
/// buffered, so arbitrarily long runs export in constant memory.
///
/// Carries an owned [`NameTable`] so the emitted JSON uses operation /
/// resource / stage *names*, independent of the model borrow.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
    names: NameTable,
    lines: u64,
    error: Option<std::io::ErrorKind>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// A sink writing JSON lines rendered through `names` to `writer`.
    pub fn new(writer: W, names: NameTable) -> JsonLinesSink<W> {
        JsonLinesSink { writer, names, lines: 0, error: None }
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any (recording continues to
    /// be attempted; the error is sticky for the caller to inspect).
    #[must_use]
    pub fn io_error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        let line = self.names.json(event);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e.kind());
                }
            }
        }
    }
}

/// Renders a slice of events as a JSON-lines document (one object per
/// line, trailing newline included when non-empty).
#[must_use]
pub fn events_to_jsonl(names: &NameTable, events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&names.json(event));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::OpId;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Exec { cycle, op: OpId(0), stage: None, pc: 0 }
    }

    #[test]
    fn collecting_sink_keeps_order_and_drains() {
        let mut sink = CollectingSink::new();
        for c in 0..5 {
            sink.record(&ev(c));
        }
        assert_eq!(sink.events().len(), 5);
        let drained = sink.drain();
        assert_eq!(drained.iter().map(TraceEvent::cycle).collect::<Vec<_>>(), [0, 1, 2, 3, 4]);
        assert!(sink.drain().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn ring_buffer_keeps_the_last_n() {
        let mut sink = RingBufferSink::new(3);
        for c in 0..10 {
            sink.record(&ev(c));
        }
        assert_eq!(sink.dropped(), 7);
        let as_sink: &dyn TraceSink = &sink;
        assert_eq!(as_sink.dropped(), 7, "loss is visible through the trait object");
        let kept = sink.drain();
        assert_eq!(kept.iter().map(TraceEvent::cycle).collect::<Vec<_>>(), [7, 8, 9]);
    }

    #[test]
    fn unbounded_sinks_report_zero_dropped() {
        let mut sink = CollectingSink::new();
        for c in 0..100 {
            sink.record(&ev(c));
        }
        let as_sink: &dyn TraceSink = &sink;
        assert_eq!(as_sink.dropped(), 0);
    }

    #[test]
    fn ring_buffer_at_exact_capacity_drops_nothing() {
        let mut sink = RingBufferSink::new(4);
        for c in 0..4 {
            sink.record(&ev(c));
        }
        assert_eq!(sink.dropped(), 0, "filling to capacity evicts nothing");
        assert_eq!(
            sink.drain().iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            [0, 1, 2, 3],
            "all events survive, in order"
        );

        // One past capacity evicts exactly the oldest event.
        for c in 0..5 {
            sink.record(&ev(c));
        }
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.drain().iter().map(TraceEvent::cycle).collect::<Vec<_>>(), [1, 2, 3, 4]);
    }

    #[test]
    fn ring_buffer_refills_after_drain_and_clear() {
        let mut sink = RingBufferSink::new(2);
        for c in 0..3 {
            sink.record(&ev(c));
        }
        assert_eq!(sink.drain().len(), 2);
        // The drop counter is cumulative across drains; capacity is intact.
        sink.record(&ev(10));
        sink.record(&ev(11));
        sink.record(&ev(12));
        assert_eq!(sink.dropped(), 2, "1 from the first fill + 1 after refill");
        sink.clear();
        assert!(sink.drain().is_empty());
        sink.record(&ev(20));
        assert_eq!(sink.drain().iter().map(TraceEvent::cycle).collect::<Vec<_>>(), [20]);
    }

    #[test]
    fn ring_buffer_minimum_capacity_is_one() {
        let mut sink = RingBufferSink::new(0);
        assert_eq!(sink.capacity(), 1);
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn jsonl_sink_streams_valid_lines() {
        let names = NameTable { ops: vec!["main".into()], resources: vec![], pipelines: vec![] };
        let mut sink = JsonLinesSink::new(Vec::new(), names.clone());
        sink.record(&ev(0));
        sink.record(&ev(1));
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.io_error(), None);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"op\":\"main\""));
        }
        assert_eq!(text, events_to_jsonl(&names, &[ev(0), ev(1)]));
    }
}

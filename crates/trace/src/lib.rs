//! Structured observability for LISA simulators.
//!
//! The paper's whole value proposition is *cycle-accurate visibility*
//! into pipelined machines: its generated simulators let architects see
//! stalls, flushes and operation timing per control step (§3.4–3.5).
//! This crate is the reproduction's observability layer:
//!
//! * [`TraceEvent`] — a typed event stream (fetch, decode, exec,
//!   activation, stall, flush, memory access, register write) with the
//!   cycle, stage, program counter and operation identity attached;
//! * [`TraceSink`] — where events go: [`CollectingSink`] (everything,
//!   in order), [`RingBufferSink`] (last *N*, bounded memory for
//!   production-length runs), [`JsonLinesSink`] (streamed JSON lines);
//! * [`Profile`] — an aggregator over events: per-operation execution
//!   histogram, hot-PC table and per-stage occupancy / stall / flush
//!   attribution, with a [`Profile::merge`] operation so batch runners
//!   can fold per-job profiles into fleet-level statistics;
//! * exporters — [`events_to_jsonl`] for machine-readable traces and
//!   [`write_vcd`] for a pipeline-timeline dump loadable in waveform
//!   viewers.
//!
//! Events carry raw model ids ([`lisa_core::model::OpId`] etc.); a
//! [`NameTable`] — an owned snapshot of a model's name space — renders
//! them for humans and for the exporters, so events stay `Copy` and
//! cheap to record on the simulator's cycle path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod profile;
mod sink;
mod vcd;

pub use event::{NameTable, TraceEvent, TraceKind};
pub use profile::{Profile, StageStat};
pub use sink::{events_to_jsonl, CollectingSink, JsonLinesSink, RingBufferSink, TraceSink};
pub use vcd::write_vcd;

//! Per-instruction execution profiles aggregated from trace events.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{NameTable, TraceEvent};

/// Occupancy / stall / flush attribution for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Control steps in which an operation executed in this stage.
    pub occupied: u64,
    /// Stall requests that held this stage.
    pub stalls: u64,
    /// Flushes that covered this stage.
    pub flushes: u64,
}

impl StageStat {
    fn add(&mut self, other: &StageStat) {
        self.occupied += other.occupied;
        self.stalls += other.stalls;
        self.flushes += other.flushes;
    }
}

/// An execution profile: name-keyed aggregates over a run (or over many
/// merged runs).
///
/// All counters are *additive*: [`Profile::merge`] is associative with
/// [`Profile::default`] as identity, and profiling a concatenation of
/// event streams equals merging the per-stream profiles — the property
/// that lets a batch runner fold per-job profiles into fleet statistics
/// without re-processing events.
///
/// Keys are names (not model ids) so profiles from *different* models
/// merge meaningfully in heterogeneous batches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Control steps covered (set by the producer, e.g. from simulator
    /// statistics; event streams do not carry a reliable total).
    pub cycles: u64,
    /// Instructions decoded/dispatched ([`TraceEvent::Decode`] events).
    pub instructions: u64,
    /// Decode requests served from the compiled-mode cache.
    pub decode_cache_hits: u64,
    /// Activations scheduled.
    pub activations: u64,
    /// Writes to register-class resources.
    pub register_writes: u64,
    /// Writes to memory-class resources.
    pub memory_writes: u64,
    /// Behavior executions per operation name.
    pub op_execs: BTreeMap<String, u64>,
    /// Instruction dispatches per program-counter value.
    pub hot_pcs: BTreeMap<i64, u64>,
    /// Per-stage attribution, keyed `"pipeline.stage"`.
    pub stages: BTreeMap<String, StageStat>,
}

impl Profile {
    /// An empty profile (the merge identity).
    #[must_use]
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Profile::default()
    }

    /// Folds one event into the profile, resolving names through
    /// `names`.
    pub fn record(&mut self, names: &NameTable, event: &TraceEvent) {
        match *event {
            TraceEvent::Fetch { .. } => {}
            TraceEvent::Decode { pc, cache_hit, .. } => {
                self.instructions += 1;
                if cache_hit {
                    self.decode_cache_hits += 1;
                }
                *self.hot_pcs.entry(pc).or_insert(0) += 1;
            }
            TraceEvent::Exec { op, stage, .. } => {
                bump(&mut self.op_execs, names.op(op));
                if let Some((pipe, s)) = stage {
                    self.stage_mut(&names.stage_key(pipe, s as usize)).occupied += 1;
                }
            }
            TraceEvent::Activation { .. } => self.activations += 1,
            TraceEvent::Stall { pipe, upto, .. } => {
                for s in 0..=usize::from(upto) {
                    self.stage_mut(&names.stage_key(pipe, s)).stalls += 1;
                }
            }
            TraceEvent::Flush { pipe, upto, .. } => {
                let depth = names.pipelines.get(pipe.0).map_or(0, |(_, s)| s.len());
                let last = upto.map_or(depth.saturating_sub(1), usize::from);
                for s in 0..=last.min(depth.saturating_sub(1)) {
                    self.stage_mut(&names.stage_key(pipe, s)).flushes += 1;
                }
            }
            TraceEvent::MemoryAccess { .. } => self.memory_writes += 1,
            TraceEvent::RegisterWrite { .. } => self.register_writes += 1,
            TraceEvent::Print { .. } => {}
            // Probe hits are architectural observations, not simulator
            // work — they are aggregated by `lisa-probe`'s ArchProfile.
            TraceEvent::ProbeHit { .. } => {}
        }
    }

    /// Builds a profile from a finished event stream. `cycles` is left
    /// at zero — set it from simulator statistics if known.
    #[must_use]
    pub fn from_events(names: &NameTable, events: &[TraceEvent]) -> Profile {
        let mut profile = Profile::new();
        for event in events {
            profile.record(names, event);
        }
        profile
    }

    /// Adds another profile's counters into this one. Associative, with
    /// [`Profile::default`] as identity.
    pub fn merge(&mut self, other: &Profile) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.decode_cache_hits += other.decode_cache_hits;
        self.activations += other.activations;
        self.register_writes += other.register_writes;
        self.memory_writes += other.memory_writes;
        for (name, count) in &other.op_execs {
            *self.op_execs.entry(name.clone()).or_insert(0) += count;
        }
        for (pc, count) in &other.hot_pcs {
            *self.hot_pcs.entry(*pc).or_insert(0) += count;
        }
        for (key, stat) in &other.stages {
            self.stages.entry(key.clone()).or_default().add(stat);
        }
    }

    /// The `n` most-executed operations, descending (ties broken by
    /// name, so the ordering is deterministic).
    #[must_use]
    pub fn top_ops(&self, n: usize) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> =
            self.op_execs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }

    /// The `n` hottest program counters, descending by dispatch count.
    #[must_use]
    pub fn hottest_pcs(&self, n: usize) -> Vec<(i64, u64)> {
        let mut rows: Vec<(i64, u64)> = self.hot_pcs.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Instructions per control step (0.0 when no cycles recorded).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// A plain-text profile report: headline counters, the
    /// per-operation execution histogram, the hot-PC table, and
    /// per-stage occupancy / stall / flush attribution.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} cycles, {} instructions ({:.2} instr/cycle), {} activations",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.activations,
        );
        let _ = writeln!(
            out,
            "writes: {} register, {} memory; decode cache hits: {}",
            self.register_writes, self.memory_writes, self.decode_cache_hits
        );

        let top = self.top_ops(usize::MAX);
        if !top.is_empty() {
            let _ = writeln!(out, "\nper-operation execution histogram:");
            let max = top.first().map_or(1, |r| r.1.max(1));
            let name_w = top.iter().map(|r| r.0.len()).max().unwrap_or(4).max(4);
            for (name, count) in &top {
                let bar = "#".repeat(((count * 40).div_ceil(max)) as usize);
                let _ = writeln!(out, "  {name:<name_w$} {count:>10}  {bar}");
            }
        }

        let hot = self.hottest_pcs(10);
        if !hot.is_empty() {
            let _ = writeln!(out, "\nhot PCs (top {}):", hot.len());
            for (pc, count) in &hot {
                let _ = writeln!(out, "  pc {pc:>6}  {count:>10}");
            }
        }

        if !self.stages.is_empty() {
            let key_w = self.stages.keys().map(String::len).max().unwrap_or(5).max(5);
            let _ = writeln!(
                out,
                "\n{:<key_w$} {:>10} {:>8} {:>8}",
                "stage", "occupied", "stalls", "flushes"
            );
            for (key, stat) in &self.stages {
                let _ = writeln!(
                    out,
                    "{:<key_w$} {:>10} {:>8} {:>8}",
                    key, stat.occupied, stat.stalls, stat.flushes
                );
            }
        }
        out
    }
}

fn bump(map: &mut BTreeMap<String, u64>, key: &str) {
    // Avoid allocating the key on the hot path once it exists.
    match map.get_mut(key) {
        Some(count) => *count += 1,
        None => {
            map.insert(key.to_owned(), 1);
        }
    }
}

impl Profile {
    fn stage_mut(&mut self, key: &str) -> &mut StageStat {
        if !self.stages.contains_key(key) {
            self.stages.insert(key.to_owned(), StageStat::default());
        }
        self.stages.get_mut(key).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::model::{OpId, PipelineId, ResourceId};

    fn names() -> NameTable {
        NameTable {
            ops: vec!["main".into(), "add".into()],
            resources: vec!["pc".into(), "R".into()],
            pipelines: vec![("pipe".into(), vec!["FE".into(), "EX".into()])],
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Decode { cycle: 0, pc: 0, word: 1, op: OpId(1), cache_hit: false },
            TraceEvent::Exec { cycle: 0, op: OpId(0), stage: None, pc: 0 },
            TraceEvent::Exec { cycle: 0, op: OpId(1), stage: Some((PipelineId(0), 1)), pc: 0 },
            TraceEvent::Activation { cycle: 0, from: OpId(0), to: OpId(1), delay: 1 },
            TraceEvent::Stall { cycle: 1, pipe: PipelineId(0), upto: 1 },
            TraceEvent::Flush { cycle: 2, pipe: PipelineId(0), upto: None, discarded: 1 },
            TraceEvent::RegisterWrite { cycle: 2, resource: ResourceId(1), addr: 3, value: 9 },
            TraceEvent::MemoryAccess { cycle: 2, resource: ResourceId(1), addr: 0, value: 1 },
            TraceEvent::Decode { cycle: 3, pc: 1, word: 2, op: OpId(1), cache_hit: true },
            TraceEvent::Decode { cycle: 4, pc: 1, word: 2, op: OpId(1), cache_hit: true },
        ]
    }

    #[test]
    fn records_every_dimension() {
        let n = names();
        let p = Profile::from_events(&n, &sample_events());
        assert_eq!(p.instructions, 3);
        assert_eq!(p.decode_cache_hits, 2);
        assert_eq!(p.activations, 1);
        assert_eq!(p.register_writes, 1);
        assert_eq!(p.memory_writes, 1);
        assert_eq!(p.op_execs["main"], 1);
        assert_eq!(p.op_execs["add"], 1);
        assert_eq!(p.hot_pcs[&1], 2);
        assert_eq!(p.stages["pipe.EX"].occupied, 1);
        // The stall up to EX held both FE and EX.
        assert_eq!(p.stages["pipe.FE"].stalls, 1);
        assert_eq!(p.stages["pipe.EX"].stalls, 1);
        // A whole-pipeline flush covers every stage.
        assert_eq!(p.stages["pipe.FE"].flushes, 1);
        assert_eq!(p.stages["pipe.EX"].flushes, 1);
    }

    #[test]
    fn merge_equals_profiling_the_concatenation() {
        let n = names();
        let events = sample_events();
        let (a, b) = events.split_at(4);
        let mut merged = Profile::from_events(&n, a);
        merged.merge(&Profile::from_events(&n, b));
        assert_eq!(merged, Profile::from_events(&n, &events));
    }

    #[test]
    fn default_is_the_merge_identity() {
        let n = names();
        let p = Profile::from_events(&n, &sample_events());
        let mut left = Profile::new();
        left.merge(&p);
        assert_eq!(left, p);
        let mut right = p.clone();
        right.merge(&Profile::default());
        assert_eq!(right, p);
        assert!(Profile::new().is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn top_tables_are_sorted_and_deterministic() {
        let n = names();
        let mut p = Profile::from_events(&n, &sample_events());
        p.cycles = 5;
        let top = p.top_ops(10);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(p.hottest_pcs(1), vec![(1, 2)]);
        assert!((p.ipc() - 3.0 / 5.0).abs() < 1e-12);
        let report = p.report();
        assert!(report.contains("per-operation execution histogram"));
        assert!(report.contains("hot PCs"));
        assert!(report.contains("pipe.FE"));
    }
}

//! Typed trace events and the name table that renders them.

use std::fmt::Write as _;

use lisa_core::model::{Model, OpId, PipelineId, ResourceId};

/// One observable simulator action, stamped with the control step it
/// happened in. Events carry model *ids*, not names, so they are `Copy`
/// and allocation-free to record; resolve them through a [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// An instruction word was fetched from the decode-root resource.
    Fetch {
        /// Control step.
        cycle: u64,
        /// Program counter at fetch time.
        pc: i64,
        /// The raw instruction word.
        word: u128,
    },
    /// An instruction word was decoded (or served from the decode cache).
    Decode {
        /// Control step.
        cycle: u64,
        /// Program counter at decode time.
        pc: i64,
        /// The raw instruction word.
        word: u128,
        /// The operation the word decoded to.
        op: OpId,
        /// Whether the compiled-mode decode cache served the request.
        cache_hit: bool,
    },
    /// An operation's behavior ran.
    Exec {
        /// Control step.
        cycle: u64,
        /// The executed operation.
        op: OpId,
        /// Pipeline stage the operation is assigned to, if any.
        stage: Option<(PipelineId, u16)>,
        /// Program counter when execution started.
        pc: i64,
    },
    /// An operation scheduled another via its `ACTIVATION` section.
    Activation {
        /// Control step.
        cycle: u64,
        /// The activating operation.
        from: OpId,
        /// The activated operation.
        to: OpId,
        /// Control steps (or pipeline shifts) until it executes.
        delay: u32,
    },
    /// A pipeline stall request (`pipe.stall()` / `pipe.stage.stall()`).
    Stall {
        /// Control step.
        cycle: u64,
        /// The stalled pipeline.
        pipe: PipelineId,
        /// Stages `0..=upto` are held this control step.
        upto: u16,
    },
    /// A pipeline flush (`pipe.flush()` / `pipe.stage.flush()`).
    Flush {
        /// Control step.
        cycle: u64,
        /// The flushed pipeline.
        pipe: PipelineId,
        /// Stages `0..=upto` are flushed (`None` = whole pipeline).
        upto: Option<u16>,
        /// In-flight activations the flush discarded.
        discarded: u32,
    },
    /// A write to a memory-class resource (`DATA_MEMORY` /
    /// `PROGRAM_MEMORY`).
    MemoryAccess {
        /// Control step.
        cycle: u64,
        /// The written resource.
        resource: ResourceId,
        /// Flattened element index.
        addr: u64,
        /// Value written.
        value: i64,
    },
    /// A write to a register-class resource.
    RegisterWrite {
        /// Control step.
        cycle: u64,
        /// The written resource.
        resource: ResourceId,
        /// Flattened element index.
        addr: u64,
        /// Value written.
        value: i64,
    },
    /// The `print` builtin fired in a behavior.
    Print {
        /// Control step.
        cycle: u64,
        /// The operation whose behavior printed.
        op: OpId,
        /// The printed value.
        value: i64,
    },
    /// A probe matched: a watchpoint or register trace probe saw a
    /// write, or a PC tracepoint/breakpoint matched a program-counter
    /// update. Probe ids index into the compiled probe set's labels.
    ProbeHit {
        /// Control step.
        cycle: u64,
        /// Compiled probe id.
        probe: u16,
        /// The resource whose write triggered the hit.
        resource: ResourceId,
        /// Flattened element index written.
        addr: u64,
        /// Value written.
        value: i64,
    },
}

/// The discriminant of a [`TraceEvent`], for filtering and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// [`TraceEvent::Fetch`].
    Fetch,
    /// [`TraceEvent::Decode`].
    Decode,
    /// [`TraceEvent::Exec`].
    Exec,
    /// [`TraceEvent::Activation`].
    Activation,
    /// [`TraceEvent::Stall`].
    Stall,
    /// [`TraceEvent::Flush`].
    Flush,
    /// [`TraceEvent::MemoryAccess`].
    MemoryAccess,
    /// [`TraceEvent::RegisterWrite`].
    RegisterWrite,
    /// [`TraceEvent::Print`].
    Print,
    /// [`TraceEvent::ProbeHit`].
    ProbeHit,
}

impl TraceKind {
    /// Stable lowercase name, used by the JSONL exporter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Fetch => "fetch",
            TraceKind::Decode => "decode",
            TraceKind::Exec => "exec",
            TraceKind::Activation => "activation",
            TraceKind::Stall => "stall",
            TraceKind::Flush => "flush",
            TraceKind::MemoryAccess => "memory_access",
            TraceKind::RegisterWrite => "register_write",
            TraceKind::Print => "print",
            TraceKind::ProbeHit => "probe",
        }
    }
}

impl TraceEvent {
    /// The control step the event happened in.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Decode { cycle, .. }
            | TraceEvent::Exec { cycle, .. }
            | TraceEvent::Activation { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::MemoryAccess { cycle, .. }
            | TraceEvent::RegisterWrite { cycle, .. }
            | TraceEvent::Print { cycle, .. }
            | TraceEvent::ProbeHit { cycle, .. } => cycle,
        }
    }

    /// The event's discriminant.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Fetch { .. } => TraceKind::Fetch,
            TraceEvent::Decode { .. } => TraceKind::Decode,
            TraceEvent::Exec { .. } => TraceKind::Exec,
            TraceEvent::Activation { .. } => TraceKind::Activation,
            TraceEvent::Stall { .. } => TraceKind::Stall,
            TraceEvent::Flush { .. } => TraceKind::Flush,
            TraceEvent::MemoryAccess { .. } => TraceKind::MemoryAccess,
            TraceEvent::RegisterWrite { .. } => TraceKind::RegisterWrite,
            TraceEvent::Print { .. } => TraceKind::Print,
            TraceEvent::ProbeHit { .. } => TraceKind::ProbeHit,
        }
    }

    /// The operation the event is attributed to, if any.
    #[must_use]
    pub fn op(&self) -> Option<OpId> {
        match *self {
            TraceEvent::Decode { op, .. }
            | TraceEvent::Exec { op, .. }
            | TraceEvent::Activation { to: op, .. }
            | TraceEvent::Print { op, .. } => Some(op),
            _ => None,
        }
    }

    /// The program counter the event carries, if any.
    #[must_use]
    pub fn pc(&self) -> Option<i64> {
        match *self {
            TraceEvent::Fetch { pc, .. }
            | TraceEvent::Decode { pc, .. }
            | TraceEvent::Exec { pc, .. } => Some(pc),
            _ => None,
        }
    }
}

/// An owned snapshot of a model's name space: operation, resource and
/// pipeline-stage names by id. Decouples recorded events from the model
/// borrow so sinks, exporters and merged profiles are `'static`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NameTable {
    /// Operation names, indexed by [`OpId`].
    pub ops: Vec<String>,
    /// Resource names, indexed by [`ResourceId`].
    pub resources: Vec<String>,
    /// Pipeline names with their ordered stage names, indexed by
    /// [`PipelineId`].
    pub pipelines: Vec<(String, Vec<String>)>,
}

impl NameTable {
    /// Snapshots the names of a model.
    #[must_use]
    pub fn of(model: &Model) -> NameTable {
        NameTable {
            ops: model.operations().iter().map(|o| o.name.clone()).collect(),
            resources: model.resources().iter().map(|r| r.name.clone()).collect(),
            pipelines: model
                .pipelines()
                .iter()
                .map(|p| (p.name.clone(), p.stages.clone()))
                .collect(),
        }
    }

    /// Name of an operation (`"?"` for an unknown id).
    #[must_use]
    pub fn op(&self, id: OpId) -> &str {
        self.ops.get(id.0).map_or("?", String::as_str)
    }

    /// Name of a resource (`"?"` for an unknown id).
    #[must_use]
    pub fn resource(&self, id: ResourceId) -> &str {
        self.resources.get(id.0).map_or("?", String::as_str)
    }

    /// Name of a pipeline (`"?"` for an unknown id).
    #[must_use]
    pub fn pipeline(&self, id: PipelineId) -> &str {
        self.pipelines.get(id.0).map_or("?", |(n, _)| n.as_str())
    }

    /// Name of a pipeline stage (`"?"` when out of range).
    #[must_use]
    pub fn stage(&self, pipe: PipelineId, stage: usize) -> &str {
        self.pipelines
            .get(pipe.0)
            .and_then(|(_, stages)| stages.get(stage))
            .map_or("?", String::as_str)
    }

    /// `"pipe.stage"` attribution key used by [`crate::Profile`].
    #[must_use]
    pub fn stage_key(&self, pipe: PipelineId, stage: usize) -> String {
        format!("{}.{}", self.pipeline(pipe), self.stage(pipe, stage))
    }

    /// Human-readable description of an event (no cycle prefix).
    #[must_use]
    pub fn describe(&self, event: &TraceEvent) -> String {
        match *event {
            TraceEvent::Fetch { pc, word, .. } => format!("fetch pc={pc} word={word:#x}"),
            TraceEvent::Decode { pc, word, op, cache_hit, .. } => {
                let hit = if cache_hit { " (cached)" } else { "" };
                format!("decode pc={pc} word={word:#x} -> {}{hit}", self.op(op))
            }
            TraceEvent::Exec { op, stage, .. } => match stage {
                Some((p, s)) => format!("exec {} @{}", self.op(op), self.stage_key(p, s as usize)),
                None => format!("exec {}", self.op(op)),
            },
            TraceEvent::Activation { from, to, delay, .. } => {
                format!("activate {} -> {} (delay {delay})", self.op(from), self.op(to))
            }
            TraceEvent::Stall { pipe, upto, .. } => {
                format!("stall {} upto {}", self.pipeline(pipe), self.stage(pipe, upto as usize))
            }
            TraceEvent::Flush { pipe, upto, discarded, .. } => match upto {
                Some(s) => format!(
                    "flush {} upto {} ({discarded} discarded)",
                    self.pipeline(pipe),
                    self.stage(pipe, s as usize)
                ),
                None => format!("flush {} ({discarded} discarded)", self.pipeline(pipe)),
            },
            TraceEvent::MemoryAccess { resource, addr, value, .. }
            | TraceEvent::RegisterWrite { resource, addr, value, .. } => {
                format!("write {}[{addr}] = {value}", self.resource(resource))
            }
            TraceEvent::Print { op, value, .. } => {
                format!("print {value} (from {})", self.op(op))
            }
            TraceEvent::ProbeHit { probe, resource, addr, value, .. } => {
                format!("probe #{probe} hit: {}[{addr}] = {value}", self.resource(resource))
            }
        }
    }

    /// The legacy one-line trace format: `[cycle] description`.
    #[must_use]
    pub fn line(&self, event: &TraceEvent) -> String {
        format!("[{}] {}", event.cycle(), self.describe(event))
    }

    /// One JSON object (a single line, no trailing newline) for an event.
    #[must_use]
    pub fn json(&self, event: &TraceEvent) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        let _ = write!(s, "\"cycle\":{},\"kind\":\"{}\"", event.cycle(), event.kind().name());
        match *event {
            TraceEvent::Fetch { pc, word, .. } => {
                let _ = write!(s, ",\"pc\":{pc},\"word\":\"{word:#x}\"");
            }
            TraceEvent::Decode { pc, word, op, cache_hit, .. } => {
                let _ = write!(s, ",\"pc\":{pc},\"word\":\"{word:#x}\",\"op\":");
                json_string(&mut s, self.op(op));
                let _ = write!(s, ",\"cache_hit\":{cache_hit}");
            }
            TraceEvent::Exec { op, stage, pc, .. } => {
                s.push_str(",\"op\":");
                json_string(&mut s, self.op(op));
                let _ = write!(s, ",\"pc\":{pc}");
                if let Some((p, st)) = stage {
                    s.push_str(",\"pipe\":");
                    json_string(&mut s, self.pipeline(p));
                    s.push_str(",\"stage\":");
                    json_string(&mut s, self.stage(p, st as usize));
                }
            }
            TraceEvent::Activation { from, to, delay, .. } => {
                s.push_str(",\"from\":");
                json_string(&mut s, self.op(from));
                s.push_str(",\"to\":");
                json_string(&mut s, self.op(to));
                let _ = write!(s, ",\"delay\":{delay}");
            }
            TraceEvent::Stall { pipe, upto, .. } => {
                s.push_str(",\"pipe\":");
                json_string(&mut s, self.pipeline(pipe));
                s.push_str(",\"upto\":");
                json_string(&mut s, self.stage(pipe, upto as usize));
            }
            TraceEvent::Flush { pipe, upto, discarded, .. } => {
                s.push_str(",\"pipe\":");
                json_string(&mut s, self.pipeline(pipe));
                if let Some(st) = upto {
                    s.push_str(",\"upto\":");
                    json_string(&mut s, self.stage(pipe, st as usize));
                }
                let _ = write!(s, ",\"discarded\":{discarded}");
            }
            TraceEvent::MemoryAccess { resource, addr, value, .. }
            | TraceEvent::RegisterWrite { resource, addr, value, .. } => {
                s.push_str(",\"resource\":");
                json_string(&mut s, self.resource(resource));
                let _ = write!(s, ",\"addr\":{addr},\"value\":{value}");
            }
            TraceEvent::Print { op, value, .. } => {
                s.push_str(",\"op\":");
                json_string(&mut s, self.op(op));
                let _ = write!(s, ",\"value\":{value}");
            }
            TraceEvent::ProbeHit { probe, resource, addr, value, .. } => {
                let _ = write!(s, ",\"probe\":{probe},\"resource\":");
                json_string(&mut s, self.resource(resource));
                let _ = write!(s, ",\"addr\":{addr},\"value\":{value}");
            }
        }
        s.push('}');
        s
    }
}

/// Appends `text` as a JSON string literal (quotes, backslashes and
/// control characters escaped — model names are identifiers, but the
/// exporter must never emit invalid JSON).
fn json_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> NameTable {
        NameTable {
            ops: vec!["main".into(), "add".into()],
            resources: vec!["pc".into(), "R".into()],
            pipelines: vec![("pipe".into(), vec!["FE".into(), "EX".into()])],
        }
    }

    #[test]
    fn accessors_fall_back_on_unknown_ids() {
        let n = names();
        assert_eq!(n.op(OpId(1)), "add");
        assert_eq!(n.op(OpId(9)), "?");
        assert_eq!(n.resource(ResourceId(1)), "R");
        assert_eq!(n.stage(PipelineId(0), 1), "EX");
        assert_eq!(n.stage(PipelineId(0), 7), "?");
        assert_eq!(n.stage_key(PipelineId(0), 0), "pipe.FE");
    }

    #[test]
    fn legacy_line_format_is_preserved() {
        let n = names();
        let ev = TraceEvent::Exec { cycle: 3, op: OpId(0), stage: None, pc: 7 };
        assert_eq!(n.line(&ev), "[3] exec main");
        let wr = TraceEvent::RegisterWrite { cycle: 4, resource: ResourceId(1), addr: 2, value: 9 };
        assert_eq!(n.line(&wr), "[4] write R[2] = 9");
        let pr = TraceEvent::Print { cycle: 5, op: OpId(1), value: -2 };
        assert_eq!(n.line(&pr), "[5] print -2 (from add)");
    }

    #[test]
    fn json_lines_are_balanced_and_escaped() {
        let mut n = names();
        n.ops[0] = "we\"ird\\name".into();
        let ev = TraceEvent::Exec { cycle: 1, op: OpId(0), stage: Some((PipelineId(0), 1)), pc: 0 };
        let line = n.json(&ev);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"exec\""));
        assert!(line.contains("we\\\"ird\\\\name"));
        assert!(line.contains("\"stage\":\"EX\""));
    }

    #[test]
    fn event_accessors_expose_cycle_kind_op_pc() {
        let ev = TraceEvent::Decode { cycle: 11, pc: 4, word: 0xff, op: OpId(1), cache_hit: true };
        assert_eq!(ev.cycle(), 11);
        assert_eq!(ev.kind(), TraceKind::Decode);
        assert_eq!(ev.kind().name(), "decode");
        assert_eq!(ev.op(), Some(OpId(1)));
        assert_eq!(ev.pc(), Some(4));
        let st = TraceEvent::Stall { cycle: 2, pipe: PipelineId(0), upto: 1 };
        assert_eq!(st.op(), None);
        assert_eq!(st.pc(), None);
    }
}

//! Property tests for [`Profile`]'s algebra: merging per-stream profiles
//! must equal profiling the concatenated stream, merge must be
//! associative, and [`Profile::default`] must be a two-sided identity.
//! These are exactly the guarantees a batch runner relies on when it
//! folds per-job profiles into fleet statistics in whatever order jobs
//! happen to finish.

use lisa_core::model::{OpId, PipelineId, ResourceId};
use lisa_trace::{NameTable, Profile, TraceEvent};
use proptest::prelude::*;

fn names() -> NameTable {
    NameTable {
        ops: vec!["main".into(), "add".into(), "mul".into(), "store".into()],
        resources: vec!["pc".into(), "R".into(), "mem".into()],
        pipelines: vec![
            ("pipe".into(), vec!["FE".into(), "DE".into(), "EX".into()]),
            ("mac".into(), vec!["RD".into(), "WB".into()]),
        ],
    }
}

/// Any event over the fixed name space above — including out-of-range
/// ids, which the name table renders as `"?"` and the profile must
/// still count deterministically.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof!(
        (0u64..64, -4i64..16, 0u128..256).prop_map(|(cycle, pc, word)| TraceEvent::Fetch {
            cycle,
            pc,
            word,
        }),
        (0u64..64, -4i64..16, 0u128..256, 0usize..6, any::<bool>()).prop_map(
            |(cycle, pc, word, op, cache_hit)| TraceEvent::Decode {
                cycle,
                pc,
                word,
                op: OpId(op),
                cache_hit,
            }
        ),
        (0u64..64, 0usize..6, 0usize..3, 0u16..4, -4i64..16, any::<bool>()).prop_map(
            |(cycle, op, pipe, stage, pc, staged)| TraceEvent::Exec {
                cycle,
                op: OpId(op),
                stage: staged.then_some((PipelineId(pipe), stage)),
                pc,
            }
        ),
        (0u64..64, 0usize..6, 0usize..6, 0u32..5).prop_map(|(cycle, from, to, delay)| {
            TraceEvent::Activation { cycle, from: OpId(from), to: OpId(to), delay }
        }),
        (0u64..64, 0usize..3, 0u16..4).prop_map(|(cycle, pipe, upto)| TraceEvent::Stall {
            cycle,
            pipe: PipelineId(pipe),
            upto,
        }),
        (0u64..64, 0usize..3, 0u16..4, 0u32..5, any::<bool>()).prop_map(
            |(cycle, pipe, upto, discarded, whole)| TraceEvent::Flush {
                cycle,
                pipe: PipelineId(pipe),
                upto: (!whole).then_some(upto),
                discarded,
            }
        ),
        (0u64..64, 0usize..4, 0u64..32, -99i64..99).prop_map(|(cycle, res, addr, value)| {
            TraceEvent::MemoryAccess { cycle, resource: ResourceId(res), addr, value }
        }),
        (0u64..64, 0usize..4, 0u64..32, -99i64..99).prop_map(|(cycle, res, addr, value)| {
            TraceEvent::RegisterWrite { cycle, resource: ResourceId(res), addr, value }
        }),
        (0u64..64, 0usize..6, -99i64..99).prop_map(|(cycle, op, value)| TraceEvent::Print {
            cycle,
            op: OpId(op),
            value,
        }),
    )
}

fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec(arb_event(), 0..=48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging N per-job profiles equals profiling the concatenated run.
    #[test]
    fn merge_equals_profile_of_concatenation(
        jobs in prop::collection::vec(arb_events(), 0..=5),
    ) {
        let n = names();
        let mut merged = Profile::new();
        for job in &jobs {
            merged.merge(&Profile::from_events(&n, job));
        }
        let concatenated: Vec<TraceEvent> = jobs.iter().flatten().copied().collect();
        prop_assert_eq!(merged, Profile::from_events(&n, &concatenated));
    }

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` — fold order can't change fleet stats.
    #[test]
    fn merge_is_associative(
        a in arb_events(),
        b in arb_events(),
        c in arb_events(),
    ) {
        let n = names();
        let (pa, pb, pc) = (
            Profile::from_events(&n, &a),
            Profile::from_events(&n, &b),
            Profile::from_events(&n, &c),
        );

        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);

        let mut bc = pb;
        bc.merge(&pc);
        let mut right = pa;
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// The empty profile is a two-sided merge identity, even for the
    /// explicitly-set `cycles` counter.
    #[test]
    fn default_is_a_two_sided_identity(events in arb_events(), cycles in 0u64..1000) {
        let n = names();
        let mut p = Profile::from_events(&n, &events);
        p.cycles = cycles;

        let mut left = Profile::default();
        left.merge(&p);
        prop_assert_eq!(&left, &p);

        let mut right = p.clone();
        right.merge(&Profile::default());
        prop_assert_eq!(&right, &p);
    }
}

//! VCD export determinism.
//!
//! The pipeline-timeline exporter promises byte-for-byte deterministic
//! output for a given event stream (its header is static and its body
//! depends only on the events). Two renders must be identical, and the
//! rendered document is pinned against a checked-in golden file so
//! accidental format drift shows up as a test failure.
//!
//! To bless an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lisa-trace --test vcd_golden
//! ```

use lisa_core::model::{OpId, PipelineId};
use lisa_trace::{write_vcd, NameTable, TraceEvent};

/// A two-pipeline machine with distinct stage depths, exercising the
/// full variable layout (cpu.op + per-stage wires + stall/flush strobes).
fn names() -> NameTable {
    NameTable {
        ops: vec!["main".into(), "add".into(), "mul".into(), "br".into()],
        resources: vec![],
        pipelines: vec![
            ("ipipe".into(), vec!["FE".into(), "DC".into(), "EX".into()]),
            ("mac pipe".into(), vec!["RD".into(), "MAC".into()]),
        ],
    }
}

/// A fixed event stream covering the exporter's interesting paths:
/// staged and stage-less execution, simultaneous events in one cycle,
/// stall and flush strobes, a cycle gap (wires must clear in between),
/// and an out-of-range stage that falls back to the top-level wire.
fn events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Exec { cycle: 0, op: OpId(0), stage: None, pc: 0 },
        TraceEvent::Exec { cycle: 1, op: OpId(1), stage: Some((PipelineId(0), 0)), pc: 0 },
        TraceEvent::Exec { cycle: 2, op: OpId(1), stage: Some((PipelineId(0), 1)), pc: 0 },
        TraceEvent::Exec { cycle: 2, op: OpId(2), stage: Some((PipelineId(0), 0)), pc: 1 },
        TraceEvent::Exec { cycle: 2, op: OpId(3), stage: Some((PipelineId(1), 1)), pc: 2 },
        TraceEvent::Stall { cycle: 3, pipe: PipelineId(0), upto: 1 },
        TraceEvent::Exec { cycle: 3, op: OpId(1), stage: Some((PipelineId(0), 2)), pc: 0 },
        TraceEvent::Flush { cycle: 4, pipe: PipelineId(1), upto: None, discarded: 2 },
        // Cycle gap: 5 and 6 are idle, wires must drop to zero at 5.
        TraceEvent::Exec { cycle: 7, op: OpId(2), stage: Some((PipelineId(0), 99)), pc: 3 },
        TraceEvent::Exec { cycle: 8, op: OpId(0), stage: None, pc: 4 },
    ]
}

fn render() -> String {
    let mut out = Vec::new();
    write_vcd(&names(), &events(), &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("VCD is ASCII")
}

#[test]
fn two_exports_are_byte_identical() {
    assert_eq!(render(), render());
}

#[test]
fn export_matches_the_golden_file() {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pipeline.vcd");
    let rendered = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "VCD output drifted from tests/golden/pipeline.vcd; if intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_stream_hits_every_wire_kind() {
    let text = render();
    // The gap at cycles 5–6 forces an idle reset timestamped #5.
    assert!(text.contains("#5\n"), "idle reset after the cycle gap: {text}");
    assert!(!text.contains("#6\n"), "nothing to emit in a fully idle cycle");
    // Whitespace in a pipeline name is sanitized in the header.
    assert!(text.contains("$scope module mac_pipe $end"), "{text}");
}

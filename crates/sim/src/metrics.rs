//! Publishing simulator statistics into a `lisa-metrics` registry.
//!
//! The cycle path keeps accumulating into the plain-`u64` [`SimStats`]
//! counters it always had — no atomics, no branches added. Metrics are
//! published at *run boundaries* instead: [`Simulator::publish_metrics`]
//! diffs the current stats against the last published baseline and adds
//! only the delta, so calling it after every `run`/`run_until` keeps a
//! registry current at effectively zero per-cycle cost, and calling it
//! twice in a row is a no-op.

use lisa_metrics::Registry;

use crate::engine::{SimMode, Simulator};
use crate::stats::SimStats;

impl SimMode {
    /// The backend label used in exported metric series
    /// (`"interpretive"` / `"compiled"` / `"ops"`).
    #[must_use]
    pub fn metric_label(self) -> &'static str {
        match self {
            SimMode::Interpretive => "interpretive",
            SimMode::Compiled => "compiled",
            SimMode::Ops => "ops",
        }
    }
}

impl SimStats {
    /// Per-field difference `self - baseline` (saturating, so a
    /// snapshot-restore that rewinds the counters publishes zero rather
    /// than wrapping).
    #[must_use]
    pub fn delta_since(&self, baseline: &SimStats) -> SimStats {
        let mut out = SimStats {
            cycles: self.cycles.saturating_sub(baseline.cycles),
            executed_ops: self.executed_ops.saturating_sub(baseline.executed_ops),
            decodes: self.decodes.saturating_sub(baseline.decodes),
            decode_cache_hits: self.decode_cache_hits.saturating_sub(baseline.decode_cache_hits),
            activations: self.activations.saturating_sub(baseline.activations),
            stalls: self.stalls.saturating_sub(baseline.stalls),
            flushes: self.flushes.saturating_sub(baseline.flushes),
            instructions_retired: self
                .instructions_retired
                .saturating_sub(baseline.instructions_retired),
            ..SimStats::default()
        };
        for (i, slot) in out.stall_by_stage.iter_mut().enumerate() {
            *slot = self.stall_by_stage[i].saturating_sub(baseline.stall_by_stage[i]);
        }
        out
    }
}

/// Adds one [`SimStats`] worth of counts to `registry`, labelled with
/// the backend that produced them. Series names follow the Prometheus
/// conventions (`*_total` counters, base units).
pub fn publish_stats(registry: &Registry, stats: &SimStats, backend: &str) {
    let labels: &[(&str, &str)] = &[("backend", backend)];
    registry.counter("lisa_sim_cycles_total", "Control steps executed.", labels).add(stats.cycles);
    registry
        .counter(
            "lisa_sim_instructions_retired_total",
            "Decoded instructions fully executed.",
            labels,
        )
        .add(stats.instructions_retired);
    registry
        .counter("lisa_sim_executed_ops_total", "Operation behaviors evaluated.", labels)
        .add(stats.executed_ops);
    registry
        .counter(
            "lisa_sim_decodes_total",
            "Instruction-decode requests (cache hits included).",
            labels,
        )
        .add(stats.decodes);
    registry
        .counter(
            "lisa_sim_decode_cache_hits_total",
            "Decode requests served from the compiled-mode cache.",
            labels,
        )
        .add(stats.decode_cache_hits);
    registry
        .counter("lisa_sim_activations_total", "Operation activations scheduled.", labels)
        .add(stats.activations);
    registry.counter("lisa_sim_flushes_total", "Pipeline flushes.", labels).add(stats.flushes);
    // Stalls carry a second `stage` label so stage-pressure shows up in
    // the exposition without widening SimStats itself.
    for (stage, &count) in stats.stall_by_stage.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let stage_text = stage.to_string();
        registry
            .counter(
                "lisa_sim_stalls_total",
                "Pipeline stall requests by requested hold stage.",
                &[("backend", backend), ("stage", &stage_text)],
            )
            .add(count);
    }
}

impl Simulator<'_> {
    /// Publishes the statistics accumulated since the last call (or
    /// since construction) into `registry`, labelled with this
    /// simulator's backend.
    ///
    /// Call this at run boundaries; the per-cycle path is untouched, so
    /// metrics stay "always on" without measurable overhead.
    pub fn publish_metrics(&mut self, registry: &Registry) {
        let delta = self.stats.delta_since(&self.metrics_published);
        publish_stats(registry, &delta, self.mode.metric_label());
        self.metrics_published = self.stats;

        // Bounded sinks (e.g. `RingBufferSink`) discard events silently;
        // surface the loss so operators can see it without asking the
        // process. Published as a delta like everything else.
        let dropped =
            self.observer.as_ref().and_then(|o| o.sink.as_deref()).map_or(0, |s| s.dropped());
        let delta = dropped.saturating_sub(self.trace_dropped_published);
        if delta > 0 {
            registry
                .counter(
                    "lisa_trace_events_dropped_total",
                    "Trace events discarded by bounded sinks to stay within capacity.",
                    &[("backend", self.mode.metric_label())],
                )
                .add(delta);
        }
        self.trace_dropped_published = dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_metrics::{MetricKey, MetricValue};

    #[test]
    fn delta_since_is_per_field_and_saturating() {
        let mut now = SimStats { cycles: 10, stalls: 4, ..SimStats::default() };
        now.stall_by_stage[2] = 4;
        let mut base = SimStats { cycles: 3, stalls: 1, ..SimStats::default() };
        base.stall_by_stage[2] = 1;
        let d = now.delta_since(&base);
        assert_eq!(d.cycles, 7);
        assert_eq!(d.stalls, 3);
        assert_eq!(d.stall_by_stage[2], 3);
        // Rewound baseline (snapshot restore) publishes zero, not a wrap.
        assert_eq!(base.delta_since(&now).cycles, 0);
    }

    #[test]
    fn publish_metrics_reports_ring_sink_drops_as_a_delta() {
        let model = lisa_core::Model::from_source(
            r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
               OPERATION main { BEHAVIOR { r0 = r0 + 1; pc = pc + 1; } }"#,
        )
        .unwrap();
        let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
        sim.set_sink(Box::new(lisa_trace::RingBufferSink::new(4)));
        sim.run(20).unwrap();
        let reg = Registry::new();
        sim.publish_metrics(&reg);
        let key = MetricKey::new("lisa_trace_events_dropped_total", &[("backend", "interpretive")]);
        let snap = reg.snapshot();
        let Some(&MetricValue::Counter(first)) = snap.metrics.get(&key) else {
            panic!("drop counter missing: {:?}", snap.metrics.keys().collect::<Vec<_>>());
        };
        assert!(first > 0, "a 4-slot ring over 20 cycles must drop events");
        // No new drops since: the second publish adds nothing.
        sim.publish_metrics(&reg);
        assert_eq!(reg.snapshot().metrics.get(&key), Some(&MetricValue::Counter(first)));
    }

    #[test]
    fn publish_stats_labels_backend_and_stage() {
        let reg = Registry::new();
        let mut stats = SimStats { cycles: 100, stalls: 5, ..SimStats::default() };
        stats.stall_by_stage[1] = 5;
        publish_stats(&reg, &stats, "compiled");
        publish_stats(&reg, &stats, "interpretive");
        let snap = reg.snapshot();
        assert_eq!(
            snap.metrics.get(&MetricKey::new("lisa_sim_cycles_total", &[("backend", "compiled")])),
            Some(&MetricValue::Counter(100))
        );
        assert_eq!(
            snap.metrics.get(&MetricKey::new(
                "lisa_sim_stalls_total",
                &[("backend", "interpretive"), ("stage", "1")]
            )),
            Some(&MetricValue::Counter(5))
        );
    }
}

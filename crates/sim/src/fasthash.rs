//! A tiny multiply-xor hasher for the simulator's hot caches.
//!
//! The decode/word/instance caches are probed once or more per simulated
//! control step with small integer keys (`u128` instruction words,
//! pointer-derived `usize`s). SipHash's per-probe cost is measurable at
//! that rate, and none of these maps hold attacker-controlled keys, so a
//! fast non-cryptographic mix is the right trade.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor state.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

const K: u64 = 0xf135_7aea_2e62_a9c5;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold high entropy (where the multiply puts it) into the low
        // bits the table indexes with.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(K);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
}

/// A `HashMap` using [`FastHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let mut map: FastMap<u128, u32> = FastMap::default();
        for w in 0u128..4096 {
            map.insert(w, w as u32);
        }
        assert_eq!(map.len(), 4096);
        for w in 0u128..4096 {
            assert_eq!(map.get(&w), Some(&(w as u32)));
        }
    }
}

//! Simulation statistics.

use std::fmt;

/// Number of per-stage stall buckets in [`SimStats::stall_by_stage`].
/// Deeper stages fold into the last bucket (the deepest bundled model
/// has 7 stages, so in practice nothing folds).
pub const STALL_STAGE_BUCKETS: usize = 8;

/// Counters accumulated by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Control steps executed.
    pub cycles: u64,
    /// Operation executions (behavior runs), including invocations.
    pub executed_ops: u64,
    /// Instruction-decode *requests*. Cache hits are included: every
    /// decode-root execution counts here whether the word was decoded
    /// fresh or served from the compiled-mode cache.
    pub decodes: u64,
    /// Decodes served from the compiled-mode cache (a subset of
    /// [`SimStats::decodes`]).
    pub decode_cache_hits: u64,
    /// Activations scheduled (delayed or same-step).
    pub activations: u64,
    /// Pipeline stall requests.
    pub stalls: u64,
    /// Pipeline flushes.
    pub flushes: u64,
    /// Decoded instructions fully executed (behavior and activation of a
    /// decode-root operation completed). Distinct from
    /// [`SimStats::decodes`], which counts decode requests whether or
    /// not the instruction then runs to completion.
    pub instructions_retired: u64,
    /// Stall requests bucketed by the requested hold stage: a
    /// `pipe.stage.stall()` at stage *s* counts in bucket
    /// `min(s, STALL_STAGE_BUCKETS - 1)`; a whole-pipeline
    /// `pipe.stall()` counts at its deepest stage.
    pub stall_by_stage: [u64; STALL_STAGE_BUCKETS],
}

impl SimStats {
    /// Fraction of decode *requests* served from the cache, in `0.0..=1.0`
    /// (`0.0` when no decode was requested). Because
    /// [`SimStats::decodes`] includes the hits themselves, this is
    /// `decode_cache_hits / decodes`, not hits over misses.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.decodes == 0 {
            0.0
        } else {
            self.decode_cache_hits as f64 / self.decodes as f64
        }
    }

    /// Decode requests that missed the cache and paid for a full decode
    /// (`decodes - decode_cache_hits`). In interpretive mode every
    /// decode is a miss.
    #[must_use]
    pub fn decode_misses(&self) -> u64 {
        self.decodes.saturating_sub(self.decode_cache_hits)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} ops={} decodes={} (hits={}) activations={} stalls={} flushes={} retired={}",
            self.cycles,
            self.executed_ops,
            self.decodes,
            self.decode_cache_hits,
            self.activations,
            self.stalls,
            self.flushes,
            self.instructions_retired,
        )?;
        if self.stalls > 0 {
            let last = self.stall_by_stage.iter().rposition(|&v| v != 0).unwrap_or(0);
            write!(f, " stall_stages=[")?;
            for (i, v) in self.stall_by_stage[..=last].iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(SimStats::default().cache_hit_rate(), 0.0);
        let s = SimStats { decodes: 10, decode_cache_hits: 9, ..SimStats::default() };
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!(s.to_string().contains("decodes=10"));
    }

    #[test]
    fn decode_misses_covers_both_cache_paths() {
        // Compiled-mode shape: most requests hit the cache.
        let compiled = SimStats { decodes: 10, decode_cache_hits: 9, ..SimStats::default() };
        assert_eq!(compiled.decode_misses(), 1);
        assert!(
            (compiled.cache_hit_rate() + compiled.decode_misses() as f64 / 10.0 - 1.0).abs()
                < 1e-12
        );
        // Interpretive-mode shape: no cache, every request misses.
        let interp = SimStats { decodes: 7, decode_cache_hits: 0, ..SimStats::default() };
        assert_eq!(interp.decode_misses(), 7);
        assert_eq!(interp.cache_hit_rate(), 0.0);
        assert_eq!(SimStats::default().decode_misses(), 0);
    }

    #[test]
    fn display_appends_new_fields_after_legacy_ones() {
        let mut s = SimStats { cycles: 3, instructions_retired: 2, ..SimStats::default() };
        let text = s.to_string();
        assert!(text.starts_with("cycles=3 ops=0 decodes=0 (hits=0)"), "{text}");
        assert!(text.ends_with("retired=2"), "{text}");
        assert!(!text.contains("stall_stages"), "no stall breakdown without stalls: {text}");

        s.stalls = 4;
        s.stall_by_stage[0] = 1;
        s.stall_by_stage[2] = 3;
        let text = s.to_string();
        assert!(text.contains("retired=2 stall_stages=[1,0,3]"), "{text}");
    }
}

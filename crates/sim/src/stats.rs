//! Simulation statistics.

use std::fmt;

/// Counters accumulated by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Control steps executed.
    pub cycles: u64,
    /// Operation executions (behavior runs), including invocations.
    pub executed_ops: u64,
    /// Instruction decodes requested (cache hits included).
    pub decodes: u64,
    /// Decodes served from the compiled-mode cache.
    pub decode_cache_hits: u64,
    /// Activations scheduled (delayed or same-step).
    pub activations: u64,
    /// Pipeline stall requests.
    pub stalls: u64,
    /// Pipeline flushes.
    pub flushes: u64,
}

impl SimStats {
    /// Fraction of decodes served from the cache (0 when none happened).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.decodes == 0 {
            0.0
        } else {
            self.decode_cache_hits as f64 / self.decodes as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} ops={} decodes={} (hits={}) activations={} stalls={} flushes={}",
            self.cycles,
            self.executed_ops,
            self.decodes,
            self.decode_cache_hits,
            self.activations,
            self.stalls,
            self.flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(SimStats::default().cache_hit_rate(), 0.0);
        let s = SimStats { decodes: 10, decode_cache_hits: 9, ..SimStats::default() };
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!(s.to_string().contains("decodes=10"));
    }
}

//! Threaded micro-op simulation: behaviors flattened to linear code.
//!
//! The third execution backend. Compiled mode (see `compiled.rs`) lowers
//! behaviors once per model but still *walks a tree* per executed
//! operation. This module goes one step further, in the spirit of the
//! paper's §3.3 claim that compiled simulation can beat interpretation by
//! orders of magnitude: at predecode time every decoded instruction
//! *instance* is translated into a flat `Vec<MicroOp>` — a stack-machine
//! program in which
//!
//! * LABEL references are constant-folded against the decoded fields,
//! * operand (group / op-ref) expressions are inlined into the parent,
//! * SWITCH/CASE arms with constant scrutinees keep only the taken arm,
//! * constant resource indices are pre-flattened to direct element slots,
//! * every translate-time-detectable error becomes a positioned `Fail`
//!   op so runtime error behavior matches the tree-walking backends
//!   exactly.
//!
//! The cycle loop then dispatches over a contiguous op array with zero
//! name resolution and zero tree traversal. Activation scheduling,
//! pipeline intrinsics, tracing and statistics all reuse the shared
//! engine paths, so `State::digest` and mode-independent `SimStats`
//! stay byte-identical across all three modes (enforced by
//! `lisa-conform`'s three-way lockstep oracle).

use std::sync::Arc;

use lisa_bits::Bits;
use lisa_core::ast::{ActNode, AssignOp, BinOp, UnOp};
use lisa_core::model::{CodingTarget, Model, OpId, PipelineId, ResourceId};
use lisa_isa::Decoded;

use crate::compiled::{
    lower_act_expr, Builtin, CompiledTables, LBlock, LExpr, LPlace, LStmt, PipeOp,
};
use crate::engine::{ExecItem, Pending};
use crate::eval::{apply_binop, apply_compound, saturate};
use crate::fasthash::FastMap;
use crate::{SimError, Simulator, State};

/// One flat micro-operation. Value-producing ops push onto an operand
/// stack; jump targets are absolute indices into the routine's code.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MicroOp {
    /// Push a constant (also the result of all translate-time folding).
    Const(i64),
    /// Push a local slot's value.
    ReadLocal(u16),
    /// Push element 0 of a resource (scalar read; missing reads as 0).
    ReadScalar(ResourceId),
    /// Push a resource element at a pre-flattened index.
    ReadFlat {
        res: ResourceId,
        flat: u32,
    },
    /// Pop `n` indices (pushed in source order), flatten, push element.
    ReadDyn {
        res: ResourceId,
        n: u8,
    },
    /// Pop one index, push the element — the translate-time-specialized
    /// single-dimension base-0 case of `ReadDyn` (no flatten walk).
    ReadIdx(ResourceId),
    /// Transform the top of stack.
    Unary(UnOp),
    /// Pop rhs then lhs, push the result. `ctx` names the operation for
    /// division-by-zero diagnostics.
    Binary {
        op: BinOp,
        ctx: OpId,
    },
    /// Normalize the top of stack to 0/1 (logical-op tail).
    NormBool,
    /// Builtin call; operand arity is implied by `f`.
    Builtin {
        f: Builtin,
        ctx: OpId,
    },
    /// Pop into a local slot.
    StoreLocal(u16),
    /// Pop, wrap to a declared width, store into a local slot.
    StoreLocalWrapped {
        slot: u16,
        width: u32,
        signed: bool,
    },
    /// Discard the top of stack.
    Pop,
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Pop; jump when non-zero.
    JumpIfNonZero(u32),
    /// Peek; when equal to `value`, pop and jump (SWITCH dispatch).
    CaseJump {
        value: i64,
        target: u32,
    },
    /// Pop a value into a pre-flattened resource element.
    WriteFlat {
        res: ResourceId,
        flat: u32,
    },
    /// Pop `n` indices then the value; write the element.
    WriteDyn {
        res: ResourceId,
        n: u8,
    },
    /// Pop one index then the value; write the element (single-dimension
    /// base-0 specialization of `WriteDyn`).
    WriteIdx(ResourceId),
    /// Compound assignment into a local (rhs on stack).
    RmwLocal {
        slot: u16,
        op: AssignOp,
        ctx: OpId,
    },
    /// Compound assignment into a pre-flattened element (rhs on stack).
    RmwFlat {
        res: ResourceId,
        flat: u32,
        op: AssignOp,
        ctx: OpId,
    },
    /// Compound assignment with dynamic indices (rhs below indices).
    RmwDyn {
        res: ResourceId,
        n: u8,
        op: AssignOp,
        ctx: OpId,
    },
    /// `++`/`--` on a local slot.
    IncDecLocal {
        slot: u16,
        delta: i64,
    },
    /// `++`/`--` on a pre-flattened element.
    IncDecFlat {
        res: ResourceId,
        flat: u32,
        delta: i64,
    },
    /// `++`/`--` with dynamic indices on the stack.
    IncDecDyn {
        res: ResourceId,
        n: u8,
        delta: i64,
    },
    /// Pipeline intrinsic (shift / stall / flush), shared engine path.
    Pipe(PipeOp),
    /// Invoke an embedded child instance routine (behavior+activation).
    InvokeChild(u16),
    /// Invoke an operation with no operand binding via the engine.
    InvokeUnbound(OpId),
    /// Entry marker for an inlined child instance: the per-operation
    /// statistics bump and Exec trace event the out-of-line invocation
    /// would have produced.
    Enter(OpId),
    /// Zero an inlined child's local-slot block — fresh locals per
    /// invocation, exactly as if the child ran in its own frame.
    ZeroLocals {
        base: u16,
        n: u16,
    },
    /// Raise a translate-time-detected error at its exact runtime
    /// position (index into the routine's error table).
    Fail(u16),
}

/// A translated routine: flat code plus the tables it references.
#[derive(Debug)]
pub(crate) struct OpsRoutine {
    pub(crate) code: Vec<MicroOp>,
    pub(crate) n_locals: u16,
    pub(crate) max_stack: usize,
    /// Child instances invoked by `InvokeChild`, in emission order.
    pub(crate) children: Vec<ChildInvoke>,
    /// Errors referenced by `Fail` ops.
    pub(crate) errors: Vec<SimError>,
    /// Pre-resolved ACTIVATION plan, when this variant has one.
    pub(crate) act: Option<ActPlan>,
}

/// A pre-lowered ACTIVATION section: target names resolved to operation
/// ids (with their decoded bindings and translated routines), delays
/// precomputed from static stage assignments, pipeline intrinsics parsed,
/// and conditions lowered to micro-op code — the string matching the
/// interpretive scheduler performs per cycle all happens once here.
#[derive(Debug)]
pub(crate) struct ActPlan {
    pub(crate) steps: Vec<ActStep>,
    pub(crate) targets: Vec<ActTarget>,
    /// Condition routines referenced by `If`/`Switch` steps.
    pub(crate) conds: Vec<OpsRoutine>,
    /// Errors referenced by `Fail` steps.
    pub(crate) errors: Vec<SimError>,
}

/// One pre-resolved ACTIVATION item.
#[derive(Debug)]
pub(crate) enum ActStep {
    /// Schedule `targets[i]`.
    Activate(u16),
    /// Pipeline intrinsic: acts immediately through the shared engine
    /// path (identical control logic / events / stall accounting).
    Pipe(PipeOp),
    /// Conditional activation; the condition runs as a micro-op routine.
    If { cond: u16, then_steps: Vec<ActStep>, else_steps: Vec<ActStep> },
    /// Switch over a resource value.
    Switch { cond: u16, cases: Vec<(i64, Vec<ActStep>)>, default: Vec<ActStep> },
    /// Raise a translate-time-detected error at its runtime position.
    Fail(u16),
}

/// A resolved activation target with its precomputed schedule slot.
#[derive(Debug)]
pub(crate) struct ActTarget {
    /// The activating operation (event attribution).
    pub(crate) from: OpId,
    pub(crate) op: OpId,
    /// Operand binding carried to the scheduled item, if any.
    pub(crate) decoded: Option<Arc<Decoded>>,
    /// Pre-translated routine for bound zero-delay targets (the
    /// behavior-context drain runs it without a cache probe).
    pub(crate) routine: Option<Arc<OpsRoutine>>,
    /// Spatial distance plus explicit `;` delay, both static.
    pub(crate) delay: u32,
    /// Target pipeline stage when the operation is pipelined.
    pub(crate) stage: Option<(PipelineId, usize)>,
}

/// A bound child operand: the decoded instance and its routine.
#[derive(Debug)]
pub(crate) struct ChildInvoke {
    pub(crate) decoded: Arc<Decoded>,
    pub(crate) routine: Arc<OpsRoutine>,
}

/// Per-simulator translation caches for ops mode.
#[derive(Debug, Default)]
pub(crate) struct OpsTables {
    /// Default-variant routine per operation id (no operand binding).
    pub(crate) unbound: Vec<Arc<OpsRoutine>>,
    /// Instance routines keyed by `Arc<Decoded>` pointer identity. The
    /// held `Arc` pins the allocation so keys can never be reused while
    /// an entry is live.
    pub(crate) instances: FastMap<usize, (Arc<Decoded>, Arc<OpsRoutine>)>,
    /// Fused decode+translate cache for decode-root fetches: one lookup
    /// replaces the word-cache probe plus the instance-cache probe.
    pub(crate) words: FastMap<u128, (Arc<Decoded>, Arc<OpsRoutine>)>,
    /// Recycled execution frames (locals + operand stack), so nested
    /// routine invocations allocate nothing in the steady state.
    pub(crate) frames: Vec<OpsFrame>,
    /// Recycled target-index buffers for behavior-context plan drains.
    pub(crate) act_scratch: Vec<Vec<u16>>,
}

/// One pooled execution frame: the capacity persists across invocations.
#[derive(Debug, Default)]
pub(crate) struct OpsFrame {
    locals: Vec<i64>,
    stack: Vec<i64>,
}

/// Safety valve for callers that mint transient `Arc<Decoded>` values
/// (e.g. repeated `execute_decoded`): beyond this the caches reset.
const OPS_CACHE_MAX: usize = 1 << 16;

impl OpsTables {
    /// Translates the default-variant routine of every operation.
    pub(crate) fn build(model: &Model, state: &State, tables: &CompiledTables) -> OpsTables {
        let unbound = model
            .operations()
            .iter()
            .map(|op| {
                let choices = vec![None; op.groups.len()];
                let variant = op.variants.iter().position(|v| v.matches(&choices)).unwrap_or(0);
                Arc::new(translate_routine(model, state, tables, op.id, variant, None))
            })
            .collect();
        OpsTables { unbound, ..OpsTables::default() }
    }
}

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

/// Translation context: which operation's code we are inlining and the
/// decoded instance (if any) its labels/operands resolve against.
#[derive(Clone, Copy)]
struct Ctx<'d> {
    op: OpId,
    decoded: Option<&'d Decoded>,
}

/// A place resolved as far as translate time allows.
enum PlaceKind<'e, 'd> {
    Local(u16),
    Flat { res: ResourceId, flat: u32 },
    Dyn { res: ResourceId, indices: &'e [LExpr], ctx: Ctx<'d> },
    Err(SimError),
}

/// Break/continue patch collection for one enclosing loop or switch.
struct CtlFrame {
    is_loop: bool,
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

struct Emitter<'m, 'e> {
    model: &'m Model,
    state: &'e State,
    tables: &'e CompiledTables,
    code: Vec<MicroOp>,
    children: Vec<ChildInvoke>,
    errors: Vec<SimError>,
    frames: Vec<CtlFrame>,
    /// Break/continue with no enclosing construct: ends the behavior
    /// (tree-walk semantics: the flow propagates out and is discarded).
    end_patches: Vec<usize>,
    depth: usize,
    max_stack: usize,
}

/// Translates one `(operation, variant)` behavior, specialized against
/// `decoded` when a binding exists. Infallible: anything that would
/// error at run time in the tree-walking backends becomes a positioned
/// `Fail` op.
pub(crate) fn translate_routine(
    model: &Model,
    state: &State,
    tables: &CompiledTables,
    op: OpId,
    variant: usize,
    decoded: Option<&Decoded>,
) -> OpsRoutine {
    let idx = tables.slot(op, variant);
    let mut e = Emitter {
        model,
        state,
        tables,
        code: Vec::new(),
        children: Vec::new(),
        errors: Vec::new(),
        frames: Vec::new(),
        end_patches: Vec::new(),
        depth: 0,
        max_stack: 0,
    };
    if let Some(block) = tables.behaviors[idx].as_ref() {
        e.block(block, Ctx { op, decoded });
    }
    let end = e.here();
    for j in std::mem::take(&mut e.end_patches) {
        e.patch_to(j, end);
    }
    inline_children(OpsRoutine {
        code: e.code,
        n_locals: tables.locals_count[idx],
        max_stack: e.max_stack,
        children: e.children,
        errors: e.errors,
        act: translate_act_plan(model, state, tables, op, variant, decoded),
    })
}

/// Flattened-size cap: beyond this, child invocations stay as calls
/// (blow-up guard for pathologically deep operand trees).
const INLINE_CODE_MAX: usize = 1 << 14;

/// Splices activation-free child routines into the parent's code — the
/// "threaded code" flattening step. An out-of-line `InvokeChild` costs a
/// frame acquire/release, a nested dispatch entry and an activation-plan
/// check per execution; after flattening the child contributes one
/// `Enter` marker (statistics + Exec event, identical to the call) plus
/// its own micro-ops run in the parent's frame. The child's locals move
/// to a fresh slot block and are re-zeroed at each invocation site, so
/// loop-carried behavior is unchanged. Children with an ACTIVATION plan
/// keep the call — their plan must run after the behavior. The pass runs
/// bottom-up for free: children are fully translated (and themselves
/// flattened) before the parent routine is assembled.
fn inline_children(r: OpsRoutine) -> OpsRoutine {
    let mut new_len = 0usize;
    let mut total_locals = r.n_locals as usize;
    let mut any = false;
    for op in &r.code {
        new_len += 1;
        if let MicroOp::InvokeChild(k) = op {
            let child = &r.children[*k as usize].routine;
            if child.act.is_none() {
                any = true;
                new_len += child.code.len() + usize::from(child.n_locals > 0);
                total_locals += child.n_locals as usize;
            }
        }
    }
    if !any || new_len > INLINE_CODE_MAX || total_locals > u16::MAX as usize {
        return r;
    }

    // Pass 1: the new index of every old instruction (plus one-past-end,
    // a valid jump target for loop exits).
    let mut new_pos: Vec<u32> = Vec::with_capacity(r.code.len() + 1);
    let mut at = 0u32;
    for op in &r.code {
        new_pos.push(at);
        at += 1;
        if let MicroOp::InvokeChild(k) = op {
            let child = &r.children[*k as usize].routine;
            if child.act.is_none() {
                at += u32::from(child.n_locals > 0) + child.code.len() as u32;
            }
        }
    }
    new_pos.push(at);

    // Pass 2: emit, relocating parent jumps through `new_pos` and child
    // jumps/slots/tables by their splice bases.
    let mut code: Vec<MicroOp> = Vec::with_capacity(new_len);
    let mut children: Vec<ChildInvoke> = Vec::new();
    let mut errors = r.errors;
    let mut local_base = r.n_locals;
    let mut max_child_stack = 0usize;
    for op in &r.code {
        match op {
            MicroOp::Jump(t) => code.push(MicroOp::Jump(new_pos[*t as usize])),
            MicroOp::JumpIfZero(t) => code.push(MicroOp::JumpIfZero(new_pos[*t as usize])),
            MicroOp::JumpIfNonZero(t) => {
                code.push(MicroOp::JumpIfNonZero(new_pos[*t as usize]));
            }
            MicroOp::CaseJump { value, target } => {
                code.push(MicroOp::CaseJump { value: *value, target: new_pos[*target as usize] });
            }
            MicroOp::InvokeChild(k) => {
                let site = &r.children[*k as usize];
                if site.routine.act.is_some() {
                    let nk = children.len() as u16;
                    children.push(ChildInvoke {
                        decoded: Arc::clone(&site.decoded),
                        routine: Arc::clone(&site.routine),
                    });
                    code.push(MicroOp::InvokeChild(nk));
                    continue;
                }
                let child = &site.routine;
                code.push(MicroOp::Enter(site.decoded.op));
                if child.n_locals > 0 {
                    code.push(MicroOp::ZeroLocals { base: local_base, n: child.n_locals });
                }
                let base = code.len() as u32;
                let err_base = errors.len() as u16;
                let child_base = children.len() as u16;
                errors.extend(child.errors.iter().cloned());
                children.extend(child.children.iter().map(|c| ChildInvoke {
                    decoded: Arc::clone(&c.decoded),
                    routine: Arc::clone(&c.routine),
                }));
                max_child_stack = max_child_stack.max(child.max_stack);
                for cop in &child.code {
                    code.push(match cop {
                        MicroOp::ReadLocal(s) => MicroOp::ReadLocal(s + local_base),
                        MicroOp::StoreLocal(s) => MicroOp::StoreLocal(s + local_base),
                        MicroOp::StoreLocalWrapped { slot, width, signed } => {
                            MicroOp::StoreLocalWrapped {
                                slot: slot + local_base,
                                width: *width,
                                signed: *signed,
                            }
                        }
                        MicroOp::RmwLocal { slot, op, ctx } => {
                            MicroOp::RmwLocal { slot: slot + local_base, op: *op, ctx: *ctx }
                        }
                        MicroOp::IncDecLocal { slot, delta } => {
                            MicroOp::IncDecLocal { slot: slot + local_base, delta: *delta }
                        }
                        MicroOp::ZeroLocals { base: b, n } => {
                            MicroOp::ZeroLocals { base: b + local_base, n: *n }
                        }
                        MicroOp::Jump(t) => MicroOp::Jump(t + base),
                        MicroOp::JumpIfZero(t) => MicroOp::JumpIfZero(t + base),
                        MicroOp::JumpIfNonZero(t) => MicroOp::JumpIfNonZero(t + base),
                        MicroOp::CaseJump { value, target } => {
                            MicroOp::CaseJump { value: *value, target: target + base }
                        }
                        MicroOp::InvokeChild(ck) => MicroOp::InvokeChild(ck + child_base),
                        MicroOp::Fail(fk) => MicroOp::Fail(fk + err_base),
                        other => other.clone(),
                    });
                }
                local_base += child.n_locals;
            }
            other => code.push(other.clone()),
        }
    }
    OpsRoutine {
        code,
        n_locals: local_base,
        max_stack: r.max_stack + max_child_stack,
        children,
        errors,
        act: r.act,
    }
}

/// Lowers the `(operation, variant)` ACTIVATION section to a plan, when
/// one exists. Resolution order matches the interpretive scheduler
/// exactly: group of the activating operation first, then operation by
/// name; pipeline intrinsics are recognised by their first path segment.
fn translate_act_plan(
    model: &Model,
    state: &State,
    tables: &CompiledTables,
    op: OpId,
    variant: usize,
    decoded: Option<&Decoded>,
) -> Option<ActPlan> {
    let activation =
        model.operation(op).variants.get(variant).and_then(|v| v.activation.as_ref())?;
    let mut b = PlanBuilder {
        model,
        state,
        tables,
        op,
        decoded,
        targets: Vec::new(),
        conds: Vec::new(),
        errors: Vec::new(),
    };
    let steps = b.steps(activation);
    Some(ActPlan { steps, targets: b.targets, conds: b.conds, errors: b.errors })
}

struct PlanBuilder<'m, 'e> {
    model: &'m Model,
    state: &'e State,
    tables: &'e CompiledTables,
    op: OpId,
    decoded: Option<&'e Decoded>,
    targets: Vec<ActTarget>,
    conds: Vec<OpsRoutine>,
    errors: Vec<SimError>,
}

impl PlanBuilder<'_, '_> {
    fn steps(&mut self, nodes: &[ActNode]) -> Vec<ActStep> {
        nodes.iter().map(|n| self.node(n)).collect()
    }

    fn node(&mut self, node: &ActNode) -> ActStep {
        match node {
            ActNode::Activate { name, delay } => self.activate(&name.name, *delay),
            ActNode::Call { call, delay } => {
                // Pipeline intrinsics act immediately regardless of delay
                // (stall/flush/shift are control operations); operation
                // calls schedule like activations.
                match self.pipe_intrinsic(call) {
                    Some(step) => step,
                    None => {
                        let target = call.path.first().map(|p| p.name.as_str()).unwrap_or_default();
                        self.activate(target, *delay)
                    }
                }
            }
            ActNode::If { cond, then_items, else_items, .. } => {
                match self.cond(cond) {
                    CondKind::Const(v) => {
                        let branch = if v != 0 { then_items } else { else_items };
                        ActStep::If {
                            cond: u16::MAX, // unused: branch resolved at translate time
                            then_steps: self.steps(branch),
                            else_steps: Vec::new(),
                        }
                    }
                    CondKind::Routine(c) => ActStep::If {
                        cond: c,
                        then_steps: self.steps(then_items),
                        else_steps: self.steps(else_items),
                    },
                    CondKind::Err(k) => ActStep::Fail(k),
                }
            }
            ActNode::Switch { scrutinee, cases, default, .. } => match self.cond(scrutinee) {
                CondKind::Const(v) => {
                    let body =
                        cases.iter().find(|(cv, _)| *cv == v).map(|(_, b)| b).unwrap_or(default);
                    ActStep::If {
                        cond: u16::MAX,
                        then_steps: self.steps(body),
                        else_steps: Vec::new(),
                    }
                }
                CondKind::Routine(c) => ActStep::Switch {
                    cond: c,
                    cases: cases.iter().map(|(v, b)| (*v, self.steps(b))).collect(),
                    default: self.steps(default),
                },
                CondKind::Err(k) => ActStep::Fail(k),
            },
        }
    }

    fn fail(&mut self, err: SimError) -> ActStep {
        let k = self.errors.len() as u16;
        self.errors.push(err);
        ActStep::Fail(k)
    }

    /// Resolves one activation target (group first, then operation by
    /// name — the interpretive `activate_name` order) and precomputes
    /// its delay from the static stage assignments.
    fn activate(&mut self, name: &str, extra_delay: u32) -> ActStep {
        let operation = self.model.operation(self.op);
        let (target_op, child) = if let Some(gidx) = operation.group_index(name) {
            match self.decoded.and_then(|d| d.group_child_rc(self.model, gidx)) {
                Some(child) => (child.op, Some(child)),
                None => {
                    return self.fail(SimError::UnboundGroup {
                        group: name.to_owned(),
                        operation: operation.name.clone(),
                    });
                }
            }
        } else if let Some(target) = self.model.operation_by_name(name) {
            let target = target.id;
            // Direct operation activation; if the current binding has a
            // matching op-reference child, pass it along.
            let child = self.decoded.and_then(|d| {
                let coding = operation.variants.get(d.variant)?.coding.as_ref()?;
                coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
                    (CodingTarget::Op(o), Some(c)) if *o == target => Some(Arc::clone(c)),
                    _ => None,
                })
            });
            (target, child)
        } else {
            return self.fail(SimError::UnknownActivation {
                name: name.to_owned(),
                operation: operation.name.clone(),
            });
        };

        let target_stage = self.model.operation(target_op).stage;
        let spatial = match (operation.stage, target_stage) {
            (_, None) => 0,
            (None, Some((_, s))) => s as u32,
            (Some((p0, s0)), Some((p1, s1))) if p0 == p1 => s1.saturating_sub(s0) as u32,
            (Some(_), Some((_, s1))) => s1 as u32,
        };
        let routine = child
            .as_ref()
            .map(|c| Arc::new(translate_instance(self.model, self.state, self.tables, c)));
        let k = self.targets.len() as u16;
        self.targets.push(ActTarget {
            from: self.op,
            op: target_op,
            decoded: child,
            routine,
            delay: spatial + extra_delay,
            stage: target_stage,
        });
        ActStep::Activate(k)
    }

    /// Parses `pipe.shift()` / `pipe.stall()` / `pipe.flush()` and the
    /// per-stage forms. `None` when the call's first segment names no
    /// pipeline (it then resolves as an activation).
    fn pipe_intrinsic(&mut self, call: &lisa_core::ast::Call) -> Option<ActStep> {
        let first = call.path.first()?;
        let pipeline = self.model.pipelines().iter().find(|p| p.name == first.name)?;
        let pid = pipeline.id;
        let path_str = || call.path.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(".");
        let step = match call.path.len() {
            2 => match call.path[1].name.as_str() {
                "shift" => ActStep::Pipe(PipeOp::Shift(pid)),
                "stall" => ActStep::Pipe(PipeOp::Stall(pid, pipeline.depth().saturating_sub(1))),
                "flush" => ActStep::Pipe(PipeOp::Flush(pid, None)),
                _ => self.fail(SimError::UnknownPipeline { path: path_str() }),
            },
            3 => {
                let Some(sidx) = pipeline.stage_index(&call.path[1].name) else {
                    return Some(self.fail(SimError::UnknownPipeline { path: path_str() }));
                };
                match call.path[2].name.as_str() {
                    "stall" => ActStep::Pipe(PipeOp::Stall(pid, sidx)),
                    "flush" => ActStep::Pipe(PipeOp::Flush(pid, Some(sidx))),
                    _ => self.fail(SimError::UnknownPipeline { path: path_str() }),
                }
            }
            _ => self.fail(SimError::UnknownPipeline { path: path_str() }),
        };
        Some(step)
    }

    /// Lowers a condition expression. Constant-foldable conditions are
    /// pure, so resolving the branch at translate time is observably
    /// identical to re-evaluating every cycle.
    fn cond(&mut self, expr: &lisa_core::ast::Expr) -> CondKind {
        let lexpr = match lower_act_expr(self.model, self.op, expr) {
            Ok(l) => l,
            Err(e) => {
                let k = self.errors.len() as u16;
                self.errors.push(e);
                return CondKind::Err(k);
            }
        };
        let mut e = Emitter {
            model: self.model,
            state: self.state,
            tables: self.tables,
            code: Vec::new(),
            children: Vec::new(),
            errors: Vec::new(),
            frames: Vec::new(),
            end_patches: Vec::new(),
            depth: 0,
            max_stack: 0,
        };
        let ctx = Ctx { op: self.op, decoded: self.decoded };
        if let Some(v) = e.const_eval(&lexpr, ctx) {
            return CondKind::Const(v);
        }
        e.expr(&lexpr, ctx);
        let routine = OpsRoutine {
            code: e.code,
            n_locals: 0,
            max_stack: e.max_stack,
            children: e.children,
            errors: e.errors,
            act: None,
        };
        let k = self.conds.len() as u16;
        self.conds.push(routine);
        CondKind::Routine(k)
    }
}

enum CondKind {
    Const(i64),
    Routine(u16),
    Err(u16),
}

/// Translates a decoded instance (its own op/variant, labels bound).
pub(crate) fn translate_instance(
    model: &Model,
    state: &State,
    tables: &CompiledTables,
    decoded: &Decoded,
) -> OpsRoutine {
    translate_routine(model, state, tables, decoded.op, decoded.variant, Some(decoded))
}

/// Pure builtin evaluation shared by the translator's constant folder
/// and the runtime dispatcher (`Print`/`Nop` are handled by callers).
fn eval_builtin_pure(f: Builtin, vals: [i64; 2]) -> i64 {
    match f {
        Builtin::Sext => {
            let w = vals[1].clamp(1, 64) as u32;
            Bits::from_i128_wrapped(w, i128::from(vals[0])).to_i128() as i64
        }
        Builtin::Zext => {
            let w = vals[1].clamp(1, 64) as u32;
            Bits::from_i128_wrapped(w, i128::from(vals[0])).to_u128() as i64
        }
        Builtin::Saturate => saturate(vals[0], vals[1].clamp(1, 64) as u32),
        Builtin::Abs => vals[0].wrapping_abs(),
        Builtin::Min => vals[0].min(vals[1]),
        Builtin::Max => vals[0].max(vals[1]),
        Builtin::Norm => {
            let w = vals[1].clamp(1, 64) as u32;
            i64::from(Bits::from_i128_wrapped(w, i128::from(vals[0])).norm())
        }
        Builtin::Print | Builtin::Nop => vals[0],
    }
}

impl<'m, 'e> Emitter<'m, 'e> {
    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, op: MicroOp, delta: isize) -> usize {
        self.code.push(op);
        self.depth = (self.depth as isize + delta).max(0) as usize;
        self.max_stack = self.max_stack.max(self.depth);
        self.code.len() - 1
    }

    fn set_depth(&mut self, d: usize) {
        self.depth = d;
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        self.patch_to(at, target);
    }

    fn patch_to(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            MicroOp::Jump(t) | MicroOp::JumpIfZero(t) | MicroOp::JumpIfNonZero(t) => *t = target,
            MicroOp::CaseJump { target: t, .. } => *t = target,
            _ => {}
        }
    }

    /// Emits a `Fail` op. `pretend` keeps linear depth tracking aligned
    /// with the value/effect the failing construct would have produced.
    fn fail(&mut self, err: SimError, pretend: isize) {
        let k = self.errors.len() as u16;
        self.errors.push(err);
        self.emit(MicroOp::Fail(k), pretend);
    }

    fn unbound_group_err(&self, op: OpId, g: u16) -> SimError {
        let operation = self.model.operation(op);
        SimError::UnboundGroup {
            group: operation.groups[g as usize].name.clone(),
            operation: operation.name.clone(),
        }
    }

    /// The decoded child bound to an op-reference through the current
    /// variant's coding, mirroring the tree-walk lookup.
    fn op_ref_child<'d>(&self, ctx: Ctx<'d>, target: OpId) -> Option<&'d Decoded> {
        let d = ctx.decoded?;
        let coding = self.model.operation(ctx.op).variants.get(d.variant)?.coding.as_ref()?;
        coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
            (CodingTarget::Op(o), Some(c)) if *o == target => Some(&**c),
            _ => None,
        })
    }

    fn op_ref_child_arc(&self, ctx: Ctx<'_>, target: OpId) -> Option<Arc<Decoded>> {
        let d = ctx.decoded?;
        let coding = self.model.operation(ctx.op).variants.get(d.variant)?.coding.as_ref()?;
        coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
            (CodingTarget::Op(o), Some(c)) if *o == target => Some(Arc::clone(c)),
            _ => None,
        })
    }

    // -- constant folding ---------------------------------------------------

    /// Evaluates an expression at translate time when every input is
    /// known and side-effect-free. LABELs fold against the decoded
    /// fields; operand expressions fold through the child instance.
    fn const_eval(&self, expr: &LExpr, ctx: Ctx<'_>) -> Option<i64> {
        match expr {
            LExpr::Const(v) => Some(*v),
            LExpr::Label(l) => Some(
                ctx.decoded.map(|d| d.labels.get(*l as usize).copied().unwrap_or(0)).unwrap_or(0)
                    as i64,
            ),
            LExpr::Unary { op, expr } => {
                let v = self.const_eval(expr, ctx)?;
                Some(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                })
            }
            LExpr::Binary { op, lhs, rhs } => {
                let l = self.const_eval(lhs, ctx)?;
                match op {
                    // Short-circuit folding matches runtime order: a
                    // constant-false lhs never evaluates the rhs.
                    BinOp::LogAnd => {
                        if l == 0 {
                            return Some(0);
                        }
                        Some(i64::from(self.const_eval(rhs, ctx)? != 0))
                    }
                    BinOp::LogOr => {
                        if l != 0 {
                            return Some(1);
                        }
                        Some(i64::from(self.const_eval(rhs, ctx)? != 0))
                    }
                    // Folding a constant division by zero would erase a
                    // runtime error; `apply_binop` rejects it here too.
                    _ => apply_binop(*op, l, self.const_eval(rhs, ctx)?).ok(),
                }
            }
            LExpr::Ternary { cond, then_expr, else_expr } => {
                let c = self.const_eval(cond, ctx)?;
                self.const_eval(if c != 0 { then_expr } else { else_expr }, ctx)
            }
            LExpr::GroupValue(g) => {
                let child = ctx.decoded?.group_child(self.model, *g as usize)?;
                self.child_expr_const(child)
            }
            LExpr::OpRefValue(target) => {
                let child = self.op_ref_child(ctx, *target)?;
                self.child_expr_const(child)
            }
            LExpr::Builtin { f, args } => {
                if matches!(f, Builtin::Print) {
                    return None; // side effect: trace event
                }
                if matches!(f, Builtin::Nop) {
                    return Some(0);
                }
                let mut vals = [0i64; 2];
                for (i, a) in args.iter().enumerate().take(2) {
                    vals[i] = self.const_eval(a, ctx)?;
                }
                Some(eval_builtin_pure(*f, vals))
            }
            LExpr::Local(_) | LExpr::ResScalar(_) | LExpr::ResElem { .. } => None,
        }
    }

    /// Folds an operand child's EXPRESSION (or sole label) to a value.
    fn child_expr_const(&self, child: &Decoded) -> Option<i64> {
        let tables = self.tables;
        let idx = tables.slot(child.op, child.variant);
        match tables.expressions[idx].as_ref() {
            Some(expr) => self.const_eval(expr, Ctx { op: child.op, decoded: Some(child) }),
            None => {
                let operation = self.model.operation(child.op);
                if operation.labels.len() == 1 {
                    Some(child.labels[0] as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl<'m, 'e> Emitter<'m, 'e> {
    // -- expressions --------------------------------------------------------

    fn expr<'d>(&mut self, e: &'e LExpr, ctx: Ctx<'d>) {
        if let Some(v) = self.const_eval(e, ctx) {
            self.emit(MicroOp::Const(v), 1);
            return;
        }
        match e {
            // Const/Label always fold; these arms keep the match total.
            LExpr::Const(v) => {
                self.emit(MicroOp::Const(*v), 1);
            }
            LExpr::Label(_) => {
                self.emit(MicroOp::Const(0), 1);
            }
            LExpr::Local(slot) => {
                self.emit(MicroOp::ReadLocal(*slot), 1);
            }
            LExpr::ResScalar(res) => {
                self.emit(MicroOp::ReadScalar(*res), 1);
            }
            LExpr::ResElem { res, indices } => {
                let kind = self.res_place(*res, indices, ctx);
                self.read_place_kind(kind);
            }
            LExpr::GroupValue(g) => {
                match ctx.decoded.and_then(|d| d.group_child(self.model, *g as usize)) {
                    Some(child) => self.child_expr(child),
                    None => {
                        let err = self.unbound_group_err(ctx.op, *g);
                        self.fail(err, 1);
                    }
                }
            }
            LExpr::OpRefValue(target) => match self.op_ref_child(ctx, *target) {
                Some(child) => self.child_expr(child),
                None => {
                    let err = SimError::UnboundGroup {
                        group: self.model.operation(*target).name.clone(),
                        operation: self.model.operation(ctx.op).name.clone(),
                    };
                    self.fail(err, 1);
                }
            },
            LExpr::Unary { op, expr } => {
                self.expr(expr, ctx);
                self.emit(MicroOp::Unary(*op), 0);
            }
            LExpr::Binary { op, lhs, rhs } => match op {
                BinOp::LogAnd => {
                    let d0 = self.depth;
                    self.expr(lhs, ctx);
                    let j_false = self.emit(MicroOp::JumpIfZero(0), -1);
                    self.expr(rhs, ctx);
                    self.emit(MicroOp::NormBool, 0);
                    let j_end = self.emit(MicroOp::Jump(0), 0);
                    self.set_depth(d0);
                    self.patch(j_false);
                    self.emit(MicroOp::Const(0), 1);
                    self.patch(j_end);
                }
                BinOp::LogOr => {
                    let d0 = self.depth;
                    self.expr(lhs, ctx);
                    let j_true = self.emit(MicroOp::JumpIfNonZero(0), -1);
                    self.expr(rhs, ctx);
                    self.emit(MicroOp::NormBool, 0);
                    let j_end = self.emit(MicroOp::Jump(0), 0);
                    self.set_depth(d0);
                    self.patch(j_true);
                    self.emit(MicroOp::Const(1), 1);
                    self.patch(j_end);
                }
                _ => {
                    self.expr(lhs, ctx);
                    self.expr(rhs, ctx);
                    self.emit(MicroOp::Binary { op: *op, ctx: ctx.op }, -1);
                }
            },
            LExpr::Ternary { cond, then_expr, else_expr } => {
                if let Some(c) = self.const_eval(cond, ctx) {
                    // Constant condition is pure, so evaluating only the
                    // taken branch is observably identical.
                    self.expr(if c != 0 { then_expr } else { else_expr }, ctx);
                    return;
                }
                let d0 = self.depth;
                self.expr(cond, ctx);
                let j_else = self.emit(MicroOp::JumpIfZero(0), -1);
                self.expr(then_expr, ctx);
                let j_end = self.emit(MicroOp::Jump(0), 0);
                self.set_depth(d0);
                self.patch(j_else);
                self.expr(else_expr, ctx);
                self.patch(j_end);
            }
            LExpr::Builtin { f, args } => match f {
                Builtin::Nop => {
                    self.emit(MicroOp::Const(0), 1);
                }
                _ => {
                    for a in args.iter().take(2) {
                        self.expr(a, ctx);
                    }
                    let delta = 1 - args.len().min(2) as isize;
                    self.emit(MicroOp::Builtin { f: *f, ctx: ctx.op }, delta);
                }
            },
        }
    }

    /// Inlines an operand child's EXPRESSION (or sole label) so operand
    /// reads cost nothing beyond the ops they lower to.
    fn child_expr(&mut self, child: &Decoded) {
        let tables = self.tables;
        let idx = tables.slot(child.op, child.variant);
        match tables.expressions[idx].as_ref() {
            Some(expr) => {
                // Operand EXPRESSIONs never declare locals, so inlining
                // into the parent's frame is safe.
                self.expr(expr, Ctx { op: child.op, decoded: Some(child) });
            }
            None => {
                let operation = self.model.operation(child.op);
                if operation.labels.len() == 1 {
                    self.emit(MicroOp::Const(child.labels[0] as i64), 1);
                } else {
                    let err = SimError::UnknownName {
                        name: format!("<expression of {}>", operation.name),
                        operation: operation.name.clone(),
                    };
                    self.fail(err, 1);
                }
            }
        }
    }

    // -- places -------------------------------------------------------------

    /// Resolves a place as far as translate time allows: constant
    /// indices become direct element slots; operand places chase the
    /// decoded child exactly as the tree-walk does.
    fn place_kind<'d>(&self, place: &'e LPlace, ctx: Ctx<'d>) -> PlaceKind<'e, 'd> {
        match place {
            LPlace::Local(slot) => PlaceKind::Local(*slot),
            LPlace::Res { res, indices } => self.res_place(*res, indices, ctx),
            LPlace::Group(g) => {
                match ctx.decoded.and_then(|d| d.group_child(self.model, *g as usize)) {
                    Some(child) => self.child_place_kind(child),
                    None => PlaceKind::Err(self.unbound_group_err(ctx.op, *g)),
                }
            }
            LPlace::OpRef(target) => match self.op_ref_child(ctx, *target) {
                Some(child) => self.child_place_kind(child),
                None => PlaceKind::Err(SimError::NotAnLvalue {
                    operation: self.model.operation(ctx.op).name.clone(),
                }),
            },
        }
    }

    fn res_place<'d>(
        &self,
        res: ResourceId,
        indices: &'e [LExpr],
        ctx: Ctx<'d>,
    ) -> PlaceKind<'e, 'd> {
        let consts: Option<Vec<i64>> = indices.iter().map(|e| self.const_eval(e, ctx)).collect();
        match consts {
            Some(vals) => match self.state.flatten_indices(self.model.resource(res), &vals) {
                Ok(flat) => PlaceKind::Flat { res, flat: flat as u32 },
                Err(e) => PlaceKind::Err(e),
            },
            None => PlaceKind::Dyn { res, indices, ctx },
        }
    }

    /// Resolves an operand child's EXPRESSION as a place (locals are not
    /// assignable through operands, matching the tree-walk).
    fn child_place_kind<'d>(&self, child: &'d Decoded) -> PlaceKind<'e, 'd> {
        let tables = self.tables;
        let idx = tables.slot(child.op, child.variant);
        let Some(place) = tables.expr_places[idx].as_ref() else {
            return PlaceKind::Err(SimError::NotAnLvalue {
                operation: self.model.operation(child.op).name.clone(),
            });
        };
        match self.place_kind(place, Ctx { op: child.op, decoded: Some(child) }) {
            PlaceKind::Local(_) => PlaceKind::Err(SimError::NotAnLvalue {
                operation: self.model.operation(child.op).name.clone(),
            }),
            other => other,
        }
    }

    fn read_place_kind(&mut self, kind: PlaceKind<'e, '_>) {
        match kind {
            PlaceKind::Local(slot) => {
                self.emit(MicroOp::ReadLocal(slot), 1);
            }
            PlaceKind::Flat { res, flat } => {
                self.emit(MicroOp::ReadFlat { res, flat }, 1);
            }
            PlaceKind::Dyn { res, indices, ctx } => {
                for e in indices {
                    self.expr(e, ctx);
                }
                let n = indices.len() as u8;
                if n == 1 && self.linear_1d(res) {
                    self.emit(MicroOp::ReadIdx(res), 0);
                } else {
                    self.emit(MicroOp::ReadDyn { res, n }, 1 - indices.len() as isize);
                }
            }
            PlaceKind::Err(e) => self.fail(e, 1),
        }
    }

    /// Whether a resource is a one-dimensional base-0 array — eligible
    /// for the specialized indexed micro-ops.
    fn linear_1d(&self, res: ResourceId) -> bool {
        let dims = &self.model.resource(res).dims;
        dims.len() == 1 && dims[0].base() == 0
    }

    /// Emits the store for an assignment whose rhs is already on the
    /// stack. `ctx` is the frame the assignment executes in (compound
    /// division-by-zero diagnostics name the outer operation even when
    /// writing through an operand).
    fn assign_place<'d>(&mut self, place: &'e LPlace, op: AssignOp, ctx: Ctx<'d>) {
        match self.place_kind(place, ctx) {
            PlaceKind::Local(slot) => match op {
                AssignOp::Set => {
                    self.emit(MicroOp::StoreLocal(slot), -1);
                }
                _ => {
                    self.emit(MicroOp::RmwLocal { slot, op, ctx: ctx.op }, -1);
                }
            },
            PlaceKind::Flat { res, flat } => match op {
                AssignOp::Set => {
                    self.emit(MicroOp::WriteFlat { res, flat }, -1);
                }
                _ => {
                    self.emit(MicroOp::RmwFlat { res, flat, op, ctx: ctx.op }, -1);
                }
            },
            PlaceKind::Dyn { res, indices, ctx: ictx } => {
                for e in indices {
                    self.expr(e, ictx);
                }
                let n = indices.len() as u8;
                let delta = -(indices.len() as isize) - 1;
                match op {
                    AssignOp::Set if n == 1 && self.linear_1d(res) => {
                        self.emit(MicroOp::WriteIdx(res), delta);
                    }
                    AssignOp::Set => {
                        self.emit(MicroOp::WriteDyn { res, n }, delta);
                    }
                    _ => {
                        self.emit(MicroOp::RmwDyn { res, n, op, ctx: ctx.op }, delta);
                    }
                }
            }
            PlaceKind::Err(e) => self.fail(e, -1),
        }
    }

    fn incdec_place<'d>(&mut self, place: &'e LPlace, delta: i64, ctx: Ctx<'d>) {
        match self.place_kind(place, ctx) {
            PlaceKind::Local(slot) => {
                self.emit(MicroOp::IncDecLocal { slot, delta }, 0);
            }
            PlaceKind::Flat { res, flat } => {
                self.emit(MicroOp::IncDecFlat { res, flat, delta }, 0);
            }
            PlaceKind::Dyn { res, indices, ctx: ictx } => {
                for e in indices {
                    self.expr(e, ictx);
                }
                let n = indices.len() as u8;
                self.emit(MicroOp::IncDecDyn { res, n, delta }, -(indices.len() as isize));
            }
            PlaceKind::Err(e) => self.fail(e, 0),
        }
    }

    /// Embeds a bound child instance and emits its invocation.
    fn invoke_child(&mut self, child: Arc<Decoded>) {
        let routine = Arc::new(translate_instance(self.model, self.state, self.tables, &child));
        let k = self.children.len() as u16;
        self.children.push(ChildInvoke { decoded: child, routine });
        self.emit(MicroOp::InvokeChild(k), 0);
    }
}

impl<'m, 'e> Emitter<'m, 'e> {
    // -- statements ---------------------------------------------------------

    fn block<'d>(&mut self, b: &'e LBlock, ctx: Ctx<'d>) {
        for s in &b.stmts {
            self.stmt(s, ctx);
        }
    }

    fn stmt<'d>(&mut self, s: &'e LStmt, ctx: Ctx<'d>) {
        match s {
            LStmt::DeclLocal { slot, init, width, signed } => {
                match init {
                    Some(e) => self.expr(e, ctx),
                    None => {
                        self.emit(MicroOp::Const(0), 1);
                    }
                }
                if *width < 64 {
                    self.emit(
                        MicroOp::StoreLocalWrapped { slot: *slot, width: *width, signed: *signed },
                        -1,
                    );
                } else {
                    self.emit(MicroOp::StoreLocal(*slot), -1);
                }
            }
            LStmt::Assign { place, op, value } => {
                // rhs first, then place resolution — tree-walk order.
                self.expr(value, ctx);
                self.assign_place(place, *op, ctx);
            }
            LStmt::IncDec { place, delta } => self.incdec_place(place, *delta, ctx),
            LStmt::InvokeGroup(g) => {
                match ctx.decoded.and_then(|d| d.group_child_rc(self.model, *g as usize)) {
                    Some(child) => self.invoke_child(child),
                    None => {
                        let err = self.unbound_group_err(ctx.op, *g);
                        self.fail(err, 0);
                    }
                }
            }
            LStmt::InvokeOp(target) => match self.op_ref_child_arc(ctx, *target) {
                Some(child) => self.invoke_child(child),
                None => {
                    self.emit(MicroOp::InvokeUnbound(*target), 0);
                }
            },
            LStmt::Intrinsic(p) => {
                self.emit(MicroOp::Pipe(*p), 0);
            }
            LStmt::EvalDrop(e) => {
                // A foldable expression is pure; discarding it emits
                // nothing at all.
                if self.const_eval(e, ctx).is_some() {
                    return;
                }
                self.expr(e, ctx);
                self.emit(MicroOp::Pop, -1);
            }
            LStmt::If { cond, then_block, else_block } => {
                if let Some(c) = self.const_eval(cond, ctx) {
                    self.block(if c != 0 { then_block } else { else_block }, ctx);
                    return;
                }
                self.expr(cond, ctx);
                let j_else = self.emit(MicroOp::JumpIfZero(0), -1);
                self.block(then_block, ctx);
                if else_block.stmts.is_empty() {
                    self.patch(j_else);
                } else {
                    let j_end = self.emit(MicroOp::Jump(0), 0);
                    self.patch(j_else);
                    self.block(else_block, ctx);
                    self.patch(j_end);
                }
            }
            LStmt::While { cond, body } => {
                if let Some(0) = self.const_eval(cond, ctx) {
                    return;
                }
                let start = self.here();
                let exit_jump = if self.const_eval(cond, ctx).is_some() {
                    None // constant-true: no test on the back edge
                } else {
                    self.expr(cond, ctx);
                    Some(self.emit(MicroOp::JumpIfZero(0), -1))
                };
                self.frames.push(CtlFrame {
                    is_loop: true,
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.block(body, ctx);
                self.emit(MicroOp::Jump(start), 0);
                let frame = self.frames.pop().expect("loop frame");
                if let Some(j) = exit_jump {
                    self.patch(j);
                }
                for b in frame.breaks {
                    self.patch(b);
                }
                for c in frame.continues {
                    self.patch_to(c, start);
                }
            }
            LStmt::DoWhile { body, cond } => {
                let start = self.here();
                self.frames.push(CtlFrame {
                    is_loop: true,
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.block(body, ctx);
                let frame = self.frames.pop().expect("loop frame");
                let cond_at = self.here();
                for c in frame.continues {
                    self.patch_to(c, cond_at);
                }
                match self.const_eval(cond, ctx) {
                    Some(0) => {}
                    Some(_) => {
                        self.emit(MicroOp::Jump(start), 0);
                    }
                    None => {
                        self.expr(cond, ctx);
                        self.emit(MicroOp::JumpIfNonZero(start), -1);
                    }
                }
                for b in frame.breaks {
                    self.patch(b);
                }
            }
            LStmt::For { init, cond, step, body } => {
                if let Some(init) = init {
                    self.stmt(init, ctx);
                }
                if let Some(c) = cond {
                    // A constant-false condition still runs init (above),
                    // then the loop never starts.
                    if let Some(0) = self.const_eval(c, ctx) {
                        return;
                    }
                }
                let start = self.here();
                let exit_jump = match cond {
                    Some(c) if self.const_eval(c, ctx).is_none() => {
                        self.expr(c, ctx);
                        Some(self.emit(MicroOp::JumpIfZero(0), -1))
                    }
                    _ => None,
                };
                self.frames.push(CtlFrame {
                    is_loop: true,
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.block(body, ctx);
                let frame = self.frames.pop().expect("loop frame");
                let step_at = self.here();
                for c in frame.continues {
                    self.patch_to(c, step_at);
                }
                if let Some(step) = step {
                    self.stmt(step, ctx);
                }
                self.emit(MicroOp::Jump(start), 0);
                if let Some(j) = exit_jump {
                    self.patch(j);
                }
                for b in frame.breaks {
                    self.patch(b);
                }
            }
            LStmt::Switch { scrutinee, cases, default } => {
                if let Some(v) = self.const_eval(scrutinee, ctx) {
                    // Constant scrutinee: only the taken arm is emitted
                    // (the decode-specialization the paper calls out).
                    let body =
                        cases.iter().find(|(cv, _)| *cv == v).map(|(_, b)| b).or(default.as_ref());
                    if let Some(b) = body {
                        self.frames.push(CtlFrame {
                            is_loop: false,
                            breaks: Vec::new(),
                            continues: Vec::new(),
                        });
                        self.block(b, ctx);
                        let frame = self.frames.pop().expect("switch frame");
                        for br in frame.breaks {
                            self.patch(br);
                        }
                    }
                    return;
                }
                let d0 = self.depth;
                self.expr(scrutinee, ctx);
                let case_jumps: Vec<usize> = cases
                    .iter()
                    .map(|(v, _)| self.emit(MicroOp::CaseJump { value: *v, target: 0 }, 0))
                    .collect();
                self.emit(MicroOp::Pop, -1);
                self.frames.push(CtlFrame {
                    is_loop: false,
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                let mut end_jumps = Vec::new();
                if let Some(def) = default {
                    self.block(def, ctx);
                }
                end_jumps.push(self.emit(MicroOp::Jump(0), 0));
                for (i, (_, body)) in cases.iter().enumerate() {
                    self.set_depth(d0); // CaseJump popped the scrutinee
                    self.patch(case_jumps[i]);
                    self.block(body, ctx);
                    end_jumps.push(self.emit(MicroOp::Jump(0), 0));
                }
                let frame = self.frames.pop().expect("switch frame");
                for j in end_jumps {
                    self.patch(j);
                }
                for b in frame.breaks {
                    self.patch(b);
                }
                self.set_depth(d0);
            }
            LStmt::Break => {
                let j = self.emit(MicroOp::Jump(0), 0);
                match self.frames.last_mut() {
                    Some(f) => f.breaks.push(j),
                    None => self.end_patches.push(j),
                }
            }
            LStmt::Continue => {
                let j = self.emit(MicroOp::Jump(0), 0);
                match self.frames.iter_mut().rev().find(|f| f.is_loop) {
                    Some(f) => f.continues.push(j),
                    None => self.end_patches.push(j),
                }
            }
            LStmt::Block(b) => self.block(b, ctx),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Where activation targets land while a plan runs: the scheduler's
/// ready list (control-step context) or a local drain buffer of target
/// indices (behavior context, executed immediately afterwards).
pub(crate) enum ActSink<'a> {
    Sched(&'a mut Vec<ExecItem>),
    Local(&'a mut Vec<u16>),
}

impl Simulator<'_> {
    fn ops_oob(&self, res: ResourceId, index: i64) -> SimError {
        SimError::IndexOutOfBounds {
            resource: self.model.resource(res).name.clone(),
            index,
            dim: 0,
        }
    }

    fn ops_div0(&self, ctx: OpId) -> SimError {
        SimError::DivisionByZero { operation: self.model.operation(ctx).name.clone() }
    }

    /// Pops `n` indices (pushed in source order) and flattens them.
    fn ops_pop_flatten(
        &self,
        stack: &mut Vec<i64>,
        res: ResourceId,
        n: u8,
    ) -> Result<usize, SimError> {
        let n = n as usize;
        if n <= 8 {
            let mut buf = [0i64; 8];
            for i in (0..n).rev() {
                buf[i] = stack.pop().unwrap_or(0);
            }
            self.state.flatten_indices(self.model.resource(res), &buf[..n])
        } else {
            let mut vals = vec![0i64; n];
            for i in (0..n).rev() {
                vals[i] = stack.pop().unwrap_or(0);
            }
            self.state.flatten_indices(self.model.resource(res), &vals)
        }
    }

    /// Pops a recycled frame off the pool, sized for `routine`.
    fn ops_frame(&mut self, routine: &OpsRoutine) -> OpsFrame {
        let mut f = self.ops.as_mut().and_then(|o| o.frames.pop()).unwrap_or_default();
        f.locals.clear();
        f.locals.resize(routine.n_locals as usize, 0);
        f.stack.clear();
        if f.stack.capacity() < routine.max_stack {
            f.stack.reserve(routine.max_stack);
        }
        f
    }

    /// Returns a frame to the pool, keeping its capacity.
    fn ops_frame_put(&mut self, frame: OpsFrame) {
        if let Some(o) = self.ops.as_mut() {
            if o.frames.len() < 64 {
                o.frames.push(frame);
            }
        }
    }

    /// Writes one element, emitting the write event first — identical
    /// order to the tree-walking backends.
    fn ops_write(&mut self, res: ResourceId, flat: usize, value: i64) -> Result<(), SimError> {
        if self.observing() {
            self.emit_write(res, flat, value);
        }
        if self.state.write_flat(res, flat, value) {
            Ok(())
        } else {
            Err(self.ops_oob(res, flat as i64))
        }
    }

    /// Executes one translated routine: a tight dispatch loop over the
    /// flat op array, running in a pooled frame.
    pub(crate) fn run_ops(&mut self, routine: &OpsRoutine) -> Result<(), SimError> {
        let mut frame = self.ops_frame(routine);
        let res = self.run_ops_in(routine, &mut frame);
        self.ops_frame_put(frame);
        res
    }

    /// Like [`Self::run_ops`] but returns the value left on the operand
    /// stack — the ACTIVATION-condition entry point.
    pub(crate) fn run_ops_value(&mut self, routine: &OpsRoutine) -> Result<i64, SimError> {
        let mut frame = self.ops_frame(routine);
        let res = self.run_ops_in(routine, &mut frame);
        let value = frame.stack.pop().unwrap_or(0);
        self.ops_frame_put(frame);
        res.map(|()| value)
    }

    fn run_ops_in(&mut self, routine: &OpsRoutine, frame: &mut OpsFrame) -> Result<(), SimError> {
        let code = &routine.code;
        let OpsFrame { locals, stack } = frame;
        let mut pc = 0usize;
        while let Some(op) = code.get(pc) {
            pc += 1;
            match op {
                MicroOp::Const(v) => stack.push(*v),
                MicroOp::ReadLocal(slot) => stack.push(locals[*slot as usize]),
                MicroOp::ReadScalar(res) => {
                    stack.push(self.state.read_flat(*res, 0).unwrap_or(0));
                    self.probe_read(*res, 0);
                }
                MicroOp::ReadFlat { res, flat } => {
                    let flat = *flat as usize;
                    let v = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    stack.push(v);
                }
                MicroOp::ReadDyn { res, n } => {
                    let flat = self.ops_pop_flatten(stack, *res, *n)?;
                    let v = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    stack.push(v);
                }
                MicroOp::ReadIdx(res) => {
                    let idx = stack.pop().unwrap_or(0);
                    let v = self
                        .state
                        .read_flat(*res, idx as usize)
                        .ok_or_else(|| self.ops_oob(*res, idx))?;
                    self.probe_read(*res, idx as usize);
                    stack.push(v);
                }
                MicroOp::Unary(op) => {
                    let v = stack.pop().unwrap_or(0);
                    stack.push(match op {
                        UnOp::Neg => v.wrapping_neg(),
                        UnOp::Not => i64::from(v == 0),
                        UnOp::BitNot => !v,
                    });
                }
                MicroOp::Binary { op, ctx } => {
                    let r = stack.pop().unwrap_or(0);
                    let l = stack.pop().unwrap_or(0);
                    let v = apply_binop(*op, l, r).map_err(|()| self.ops_div0(*ctx))?;
                    stack.push(v);
                }
                MicroOp::NormBool => {
                    let v = stack.pop().unwrap_or(0);
                    stack.push(i64::from(v != 0));
                }
                MicroOp::Builtin { f, ctx } => match f {
                    Builtin::Abs => {
                        let v = stack.pop().unwrap_or(0);
                        stack.push(v.wrapping_abs());
                    }
                    Builtin::Print => {
                        let v = *stack.last().unwrap_or(&0);
                        if self.observing() {
                            let event = lisa_trace::TraceEvent::Print {
                                cycle: self.stats.cycles,
                                op: *ctx,
                                value: v,
                            };
                            self.emit(event);
                        }
                    }
                    Builtin::Nop => stack.push(0),
                    _ => {
                        let b = stack.pop().unwrap_or(0);
                        let a = stack.pop().unwrap_or(0);
                        stack.push(eval_builtin_pure(*f, [a, b]));
                    }
                },
                MicroOp::StoreLocal(slot) => {
                    let v = stack.pop().unwrap_or(0);
                    locals[*slot as usize] = v;
                }
                MicroOp::StoreLocalWrapped { slot, width, signed } => {
                    let raw = stack.pop().unwrap_or(0);
                    let wrapped = Bits::from_i128_wrapped(*width, i128::from(raw));
                    let v =
                        if *signed { wrapped.to_i128() as i64 } else { wrapped.to_u128() as i64 };
                    locals[*slot as usize] = v;
                }
                MicroOp::Pop => {
                    stack.pop();
                }
                MicroOp::Jump(t) => pc = *t as usize,
                MicroOp::JumpIfZero(t) => {
                    if stack.pop().unwrap_or(0) == 0 {
                        pc = *t as usize;
                    }
                }
                MicroOp::JumpIfNonZero(t) => {
                    if stack.pop().unwrap_or(0) != 0 {
                        pc = *t as usize;
                    }
                }
                MicroOp::CaseJump { value, target } => {
                    if stack.last().copied().unwrap_or(0) == *value {
                        stack.pop();
                        pc = *target as usize;
                    }
                }
                MicroOp::WriteFlat { res, flat } => {
                    let v = stack.pop().unwrap_or(0);
                    self.ops_write(*res, *flat as usize, v)?;
                }
                MicroOp::WriteDyn { res, n } => {
                    let flat = self.ops_pop_flatten(stack, *res, *n)?;
                    let v = stack.pop().unwrap_or(0);
                    self.ops_write(*res, flat, v)?;
                }
                MicroOp::WriteIdx(res) => {
                    let idx = stack.pop().unwrap_or(0);
                    let v = stack.pop().unwrap_or(0);
                    // Bounds first, so no Write event fires for an
                    // out-of-range index (matching the flatten path).
                    let flat = idx as usize;
                    if flat >= self.state.element_count(*res) {
                        return Err(self.ops_oob(*res, idx));
                    }
                    self.ops_write(*res, flat, v)?;
                }
                MicroOp::RmwLocal { slot, op, ctx } => {
                    let rhs = stack.pop().unwrap_or(0);
                    let old = locals[*slot as usize];
                    let new = apply_compound(*op, old, rhs).map_err(|()| self.ops_div0(*ctx))?;
                    locals[*slot as usize] = new;
                }
                MicroOp::RmwFlat { res, flat, op, ctx } => {
                    let rhs = stack.pop().unwrap_or(0);
                    let flat = *flat as usize;
                    let old = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    let new = apply_compound(*op, old, rhs).map_err(|()| self.ops_div0(*ctx))?;
                    self.ops_write(*res, flat, new)?;
                }
                MicroOp::RmwDyn { res, n, op, ctx } => {
                    let flat = self.ops_pop_flatten(stack, *res, *n)?;
                    let rhs = stack.pop().unwrap_or(0);
                    let old = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    let new = apply_compound(*op, old, rhs).map_err(|()| self.ops_div0(*ctx))?;
                    self.ops_write(*res, flat, new)?;
                }
                MicroOp::IncDecLocal { slot, delta } => {
                    locals[*slot as usize] = locals[*slot as usize].wrapping_add(*delta);
                }
                MicroOp::IncDecFlat { res, flat, delta } => {
                    let flat = *flat as usize;
                    let old = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    self.ops_write(*res, flat, old.wrapping_add(*delta))?;
                }
                MicroOp::IncDecDyn { res, n, delta } => {
                    let flat = self.ops_pop_flatten(stack, *res, *n)?;
                    let old = self
                        .state
                        .read_flat(*res, flat)
                        .ok_or_else(|| self.ops_oob(*res, flat as i64))?;
                    self.probe_read(*res, flat);
                    self.ops_write(*res, flat, old.wrapping_add(*delta))?;
                }
                MicroOp::Pipe(p) => self.apply_pipe_op(*p),
                MicroOp::InvokeChild(k) => {
                    let child = &routine.children[*k as usize];
                    self.stats.executed_ops += 1;
                    if self.observing() {
                        self.emit_exec(child.decoded.op);
                    }
                    self.run_ops(&child.routine)?;
                    self.invoke_plan(&child.routine)?;
                }
                MicroOp::InvokeUnbound(op) => self.invoke_unbound(*op)?,
                MicroOp::Enter(op) => {
                    self.stats.executed_ops += 1;
                    if self.observing() {
                        self.emit_exec(*op);
                    }
                }
                MicroOp::ZeroLocals { base, n } => {
                    let base = *base as usize;
                    locals[base..base + *n as usize].fill(0);
                }
                MicroOp::Fail(k) => return Err(routine.errors[*k as usize].clone()),
            }
        }
        Ok(())
    }

    /// Runs a routine's ACTIVATION plan in behavior context: targets are
    /// collected, then zero-delay ones execute immediately (behavior,
    /// then their own plan) in activation order — the ops-mode twin of
    /// `invoke_activation`.
    pub(crate) fn invoke_plan(&mut self, routine: &OpsRoutine) -> Result<(), SimError> {
        let Some(plan) = routine.act.as_ref() else { return Ok(()) };
        let mut out = self.ops.as_mut().and_then(|o| o.act_scratch.pop()).unwrap_or_default();
        out.clear();
        let res =
            self.run_act_steps(plan, &plan.steps, &mut ActSink::Local(&mut out)).and_then(|()| {
                for &k in out.iter() {
                    let t = &plan.targets[k as usize];
                    match &t.routine {
                        Some(r) => {
                            self.stats.executed_ops += 1;
                            if self.observing() {
                                self.emit_exec(t.op);
                            }
                            self.run_ops(r)?;
                            self.invoke_plan(r)?;
                        }
                        None => self.invoke_unbound(t.op)?,
                    }
                }
                Ok(())
            });
        if let Some(o) = self.ops.as_mut() {
            if o.act_scratch.len() < 16 {
                o.act_scratch.push(out);
            }
        }
        res
    }

    /// Walks a plan's steps, scheduling targets into `sink`. Statistics,
    /// trace events, delayed-activation bookkeeping and intrinsic
    /// handling are identical to the interpretive `run_act_nodes` /
    /// `activate_name` pair.
    pub(crate) fn run_act_steps(
        &mut self,
        plan: &ActPlan,
        steps: &[ActStep],
        sink: &mut ActSink<'_>,
    ) -> Result<(), SimError> {
        for step in steps {
            match step {
                ActStep::Activate(k) => {
                    let t = &plan.targets[*k as usize];
                    self.stats.activations += 1;
                    if self.observing() {
                        let event = lisa_trace::TraceEvent::Activation {
                            cycle: self.stats.cycles,
                            from: t.from,
                            to: t.op,
                            delay: t.delay,
                        };
                        self.emit(event);
                    }
                    if t.delay == 0 {
                        match sink {
                            ActSink::Sched(ready) => {
                                ready.push(ExecItem {
                                    op: t.op,
                                    decoded: t.decoded.clone(),
                                    routine: t.routine.clone(),
                                });
                            }
                            ActSink::Local(out) => out.push(*k),
                        }
                    } else {
                        self.seq += 1;
                        self.pending.push(Pending {
                            item: ExecItem {
                                op: t.op,
                                decoded: t.decoded.clone(),
                                routine: t.routine.clone(),
                            },
                            pipe: t.stage,
                            remaining: t.delay,
                            seq: self.seq,
                        });
                    }
                }
                ActStep::Pipe(p) => self.apply_pipe_op(*p),
                ActStep::If { cond, then_steps, else_steps } => {
                    let taken = if *cond == u16::MAX {
                        true // branch was resolved at translate time
                    } else {
                        self.run_ops_value(&plan.conds[*cond as usize])? != 0
                    };
                    let branch = if taken { then_steps } else { else_steps };
                    self.run_act_steps(plan, branch, sink)?;
                }
                ActStep::Switch { cond, cases, default } => {
                    let value = self.run_ops_value(&plan.conds[*cond as usize])?;
                    let body =
                        cases.iter().find(|(v, _)| *v == value).map(|(_, b)| b).unwrap_or(default);
                    self.run_act_steps(plan, body, sink)?;
                }
                ActStep::Fail(k) => return Err(plan.errors[*k as usize].clone()),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Caches and engine glue
// ---------------------------------------------------------------------------

impl Simulator<'_> {
    /// The cached routine for a decoded instance, translating on miss.
    pub(crate) fn ops_instance_routine(&mut self, decoded: &Arc<Decoded>) -> Arc<OpsRoutine> {
        let key = Arc::as_ptr(decoded) as usize;
        if let Some((_, routine)) = self.ops.as_ref().and_then(|o| o.instances.get(&key)) {
            return Arc::clone(routine);
        }
        let tables = Arc::clone(self.compiled.as_ref().expect("ops mode has tables"));
        let routine = Arc::new(translate_instance(self.model, &self.state, &tables, decoded));
        if let Some(ops) = self.ops.as_mut() {
            if ops.instances.len() >= OPS_CACHE_MAX {
                ops.instances.clear();
            }
            ops.instances.insert(key, (Arc::clone(decoded), Arc::clone(&routine)));
        }
        routine
    }

    /// The pre-translated default-variant routine for an operation.
    pub(crate) fn ops_unbound_routine(&self, op: OpId) -> Arc<OpsRoutine> {
        Arc::clone(&self.ops.as_ref().expect("ops mode has tables").unbound[op.0])
    }

    /// A one-off routine for bindings outside both caches (e.g. a
    /// decoded operand executed under a different operation).
    pub(crate) fn ops_uncached_routine(
        &self,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
    ) -> Arc<OpsRoutine> {
        let tables = self.compiled.as_ref().expect("ops mode has tables");
        Arc::new(translate_routine(self.model, &self.state, tables, op, variant, decoded))
    }

    /// Fused decode+translate for decode-root fetches: bookkeeping
    /// (decode count, cache-hit count, Decode event) matches
    /// `decode_word` exactly, but a hit costs a single map probe.
    pub(crate) fn ops_decode_word(
        &mut self,
        word: u128,
    ) -> Result<(Arc<Decoded>, Arc<OpsRoutine>), SimError> {
        self.stats.decodes += 1;
        let hit = self
            .ops
            .as_ref()
            .and_then(|o| o.words.get(&word))
            .map(|(d, r)| (Arc::clone(d), Arc::clone(r)));
        let (decoded, routine, cache_hit) = match hit {
            Some((d, r)) => {
                self.stats.decode_cache_hits += 1;
                (d, r, true)
            }
            None => {
                let (decoded, was_hit) = if let Some(d) = self.decode_cache.get(&word) {
                    (Arc::clone(d), true)
                } else {
                    let decoder = self
                        .decoder
                        .as_ref()
                        .ok_or(SimError::Decode(lisa_isa::IsaError::NoDecodeRoot))?;
                    let decoded = Arc::new(decoder.decode(word)?);
                    self.decode_cache.insert(word, Arc::clone(&decoded));
                    (decoded, false)
                };
                if was_hit {
                    self.stats.decode_cache_hits += 1;
                }
                let routine = self.ops_instance_routine(&decoded);
                if let Some(ops) = self.ops.as_mut() {
                    if ops.words.len() >= OPS_CACHE_MAX {
                        ops.words.clear();
                    }
                    ops.words.insert(word, (Arc::clone(&decoded), Arc::clone(&routine)));
                }
                (decoded, routine, was_hit)
            }
        };
        if self.observing() {
            let event = lisa_trace::TraceEvent::Decode {
                cycle: self.stats.cycles,
                pc: self.current_pc(),
                word,
                op: decoded.op,
                cache_hit,
            };
            self.emit(event);
        }
        Ok((decoded, routine))
    }

    /// Eagerly translates every cached decode (called after predecode so
    /// `load_program` pays all translation cost up front).
    pub(crate) fn ops_translate_decode_cache(&mut self) {
        if self.ops.is_none() {
            return;
        }
        let entries: Vec<(u128, Arc<Decoded>)> =
            self.decode_cache.iter().map(|(w, d)| (*w, Arc::clone(d))).collect();
        for (word, d) in entries {
            let routine = self.ops_instance_routine(&d);
            if let Some(ops) = self.ops.as_mut() {
                ops.words.entry(word).or_insert((d, routine));
            }
        }
    }

    /// Drops instance/word routines (snapshot restore replaces the
    /// decode cache, invalidating pointer-keyed entries).
    pub(crate) fn ops_invalidate(&mut self) {
        if let Some(ops) = self.ops.as_mut() {
            ops.instances.clear();
            ops.words.clear();
        }
    }

    /// Renders the translated micro-op listing: the default-variant
    /// routine of every operation with a behavior, then one routine per
    /// pre-decoded program word (sorted by word), with child-operand
    /// routines nested. Returns an empty string outside ops mode.
    ///
    /// This is the surface the golden/determinism tests pin down: two
    /// simulators over the same model and program must render
    /// byte-identical listings.
    pub fn ops_listing(&mut self) -> String {
        let mut out = String::new();
        if self.ops.is_none() {
            return out;
        }
        for op in self.model.operations() {
            let routine = self.ops_unbound_routine(op.id);
            if routine.code.is_empty() {
                continue;
            }
            out.push_str(&format!("== op {} (unbound)\n", op.name));
            render_routine(&routine, self.model, 1, &mut out);
        }
        let mut words: Vec<u128> = self.decode_cache.keys().copied().collect();
        words.sort_unstable();
        for word in words {
            let d = Arc::clone(&self.decode_cache[&word]);
            let routine = self.ops_instance_routine(&d);
            out.push_str(&format!(
                "== word {:#x} op {} variant {}\n",
                word,
                self.model.operation(d.op).name,
                d.variant
            ));
            render_routine(&routine, self.model, 1, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Listing (goldens / debugging)
// ---------------------------------------------------------------------------

fn render_routine(routine: &OpsRoutine, model: &Model, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for (i, op) in routine.code.iter().enumerate() {
        out.push_str(&format!("{pad}{i:04}  {}\n", render_micro(op, model, routine)));
    }
    for (k, child) in routine.children.iter().enumerate() {
        out.push_str(&format!(
            "{pad}child {k}: op {} variant {}\n",
            model.operation(child.decoded.op).name,
            child.decoded.variant
        ));
        render_routine(&child.routine, model, indent + 1, out);
    }
    if let Some(plan) = routine.act.as_ref() {
        render_act_steps(plan, &plan.steps, model, indent, out);
        for (c, cond) in plan.conds.iter().enumerate() {
            out.push_str(&format!("{pad}act cond {c}:\n"));
            render_routine(cond, model, indent + 1, out);
        }
        for (k, t) in plan.targets.iter().enumerate() {
            if let Some(r) = t.routine.as_ref() {
                out.push_str(&format!(
                    "{pad}act target {k}: op {} variant {}\n",
                    model.operation(t.op).name,
                    t.decoded.as_ref().map_or(0, |d| d.variant)
                ));
                render_routine(r, model, indent + 1, out);
            }
        }
    }
}

fn render_act_steps(
    plan: &ActPlan,
    steps: &[ActStep],
    model: &Model,
    indent: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    for step in steps {
        match step {
            ActStep::Activate(k) => {
                let t = &plan.targets[*k as usize];
                out.push_str(&format!(
                    "{pad}act activate {} delay={} [{k}]\n",
                    model.operation(t.op).name,
                    t.delay
                ));
            }
            ActStep::Pipe(p) => out.push_str(&format!("{pad}act pipe {p:?}\n")),
            ActStep::If { cond, then_steps, else_steps } => {
                if *cond == u16::MAX {
                    out.push_str(&format!("{pad}act taken-branch\n"));
                } else {
                    out.push_str(&format!("{pad}act if cond {cond}\n"));
                }
                render_act_steps(plan, then_steps, model, indent + 1, out);
                if !else_steps.is_empty() {
                    out.push_str(&format!("{pad}act else\n"));
                    render_act_steps(plan, else_steps, model, indent + 1, out);
                }
            }
            ActStep::Switch { cond, cases, default } => {
                out.push_str(&format!("{pad}act switch cond {cond}\n"));
                for (v, body) in cases {
                    out.push_str(&format!("{pad}act case {v}\n"));
                    render_act_steps(plan, body, model, indent + 1, out);
                }
                if !default.is_empty() {
                    out.push_str(&format!("{pad}act default\n"));
                    render_act_steps(plan, default, model, indent + 1, out);
                }
            }
            ActStep::Fail(k) => {
                out.push_str(&format!("{pad}act fail {:?}\n", plan.errors[*k as usize]));
            }
        }
    }
}

fn render_micro(op: &MicroOp, model: &Model, routine: &OpsRoutine) -> String {
    let res_name = |r: &ResourceId| model.resource(*r).name.clone();
    let op_name = |o: &OpId| model.operation(*o).name.clone();
    match op {
        MicroOp::Const(v) => format!("const {v}"),
        MicroOp::ReadLocal(s) => format!("read_local {s}"),
        MicroOp::ReadScalar(r) => format!("read {}", res_name(r)),
        MicroOp::ReadFlat { res, flat } => format!("read {}[{flat}]", res_name(res)),
        MicroOp::ReadDyn { res, n } => format!("read {}[dyn x{n}]", res_name(res)),
        MicroOp::ReadIdx(res) => format!("read {}[idx]", res_name(res)),
        MicroOp::Unary(u) => format!("unary {u:?}"),
        MicroOp::Binary { op, .. } => format!("binop {op:?}"),
        MicroOp::NormBool => "normbool".to_owned(),
        MicroOp::Builtin { f, .. } => format!("builtin {f:?}"),
        MicroOp::StoreLocal(s) => format!("store_local {s}"),
        MicroOp::StoreLocalWrapped { slot, width, signed } => {
            format!("store_local {slot} wrap{width}{}", if *signed { "s" } else { "u" })
        }
        MicroOp::Pop => "pop".to_owned(),
        MicroOp::Jump(t) => format!("jump {t:04}"),
        MicroOp::JumpIfZero(t) => format!("jz {t:04}"),
        MicroOp::JumpIfNonZero(t) => format!("jnz {t:04}"),
        MicroOp::CaseJump { value, target } => format!("case {value} -> {target:04}"),
        MicroOp::WriteFlat { res, flat } => format!("write {}[{flat}]", res_name(res)),
        MicroOp::WriteDyn { res, n } => format!("write {}[dyn x{n}]", res_name(res)),
        MicroOp::WriteIdx(res) => format!("write {}[idx]", res_name(res)),
        MicroOp::RmwLocal { slot, op, .. } => format!("rmw_local {slot} {op:?}"),
        MicroOp::RmwFlat { res, flat, op, .. } => {
            format!("rmw {}[{flat}] {op:?}", res_name(res))
        }
        MicroOp::RmwDyn { res, n, op, .. } => format!("rmw {}[dyn x{n}] {op:?}", res_name(res)),
        MicroOp::IncDecLocal { slot, delta } => format!("incdec_local {slot} {delta:+}"),
        MicroOp::IncDecFlat { res, flat, delta } => {
            format!("incdec {}[{flat}] {delta:+}", res_name(res))
        }
        MicroOp::IncDecDyn { res, n, delta } => {
            format!("incdec {}[dyn x{n}] {delta:+}", res_name(res))
        }
        MicroOp::Pipe(p) => format!("pipe {p:?}"),
        MicroOp::InvokeChild(k) => format!("invoke child {k}"),
        MicroOp::InvokeUnbound(o) => format!("invoke {}", op_name(o)),
        MicroOp::Enter(o) => format!("enter {}", op_name(o)),
        MicroOp::ZeroLocals { base, n } => format!("zero-locals {base}..{}", base + n),
        MicroOp::Fail(k) => format!("fail {:?}", routine.errors[*k as usize]),
    }
}

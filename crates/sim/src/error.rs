//! Runtime errors of the generated simulators.

use std::error::Error;
use std::fmt;

use lisa_isa::IsaError;

/// An error raised while simulating a LISA model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A name used in behavior code resolves to nothing (no local, label,
    /// group, operation or resource).
    UnknownName {
        /// The unresolved name.
        name: String,
        /// The operation whose behavior was executing.
        operation: String,
    },
    /// An assignment target is not an lvalue (e.g. a literal or a group
    /// whose member has no expression).
    NotAnLvalue {
        /// The operation whose behavior was executing.
        operation: String,
    },
    /// An array/memory access is out of bounds.
    IndexOutOfBounds {
        /// The resource name.
        resource: String,
        /// The offending index.
        index: i64,
        /// The dimension addressed.
        dim: usize,
    },
    /// Wrong number of indices for a resource access.
    WrongArity {
        /// The resource name.
        resource: String,
        /// Indices supplied.
        got: usize,
        /// Dimensions declared.
        expected: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// The operation whose behavior was executing.
        operation: String,
    },
    /// A call target is neither a builtin, an intrinsic, nor a known
    /// operation/group.
    UnknownCall {
        /// The dotted call path.
        path: String,
        /// The operation whose behavior was executing.
        operation: String,
    },
    /// A pipeline intrinsic named an unknown pipeline or stage.
    UnknownPipeline {
        /// The dotted path used.
        path: String,
    },
    /// Wrong number of arguments to a builtin.
    BadArity {
        /// The builtin name.
        builtin: String,
        /// Arguments supplied.
        got: usize,
        /// Arguments expected.
        expected: usize,
    },
    /// Decoding failed while executing a decode-root operation.
    Decode(IsaError),
    /// The model has no `main` operation to drive control steps.
    NoMain,
    /// An activation named something that is neither a group, an
    /// operation, nor resolvable in context.
    UnknownActivation {
        /// The name.
        name: String,
        /// The activating operation.
        operation: String,
    },
    /// Execution exceeded the configured step budget
    /// ([`crate::Simulator::run_until`]).
    StepLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A snapshot was restored into a simulator whose resource layout
    /// does not match the one the snapshot was captured from.
    SnapshotMismatch,
    /// A group operand was used in behavior code, but the instruction
    /// word did not bind that group (no coding field).
    UnboundGroup {
        /// The group name.
        group: String,
        /// The operation whose behavior was executing.
        operation: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownName { name, operation } => {
                write!(f, "unknown name `{name}` in behavior of `{operation}`")
            }
            SimError::NotAnLvalue { operation } => {
                write!(f, "assignment target in `{operation}` is not an lvalue")
            }
            SimError::IndexOutOfBounds { resource, index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim} of `{resource}`")
            }
            SimError::WrongArity { resource, got, expected } => {
                write!(f, "`{resource}` needs {expected} indices, got {got}")
            }
            SimError::DivisionByZero { operation } => {
                write!(f, "division by zero in `{operation}`")
            }
            SimError::UnknownCall { path, operation } => {
                write!(f, "unknown call `{path}` in `{operation}`")
            }
            SimError::UnknownPipeline { path } => {
                write!(f, "unknown pipeline or stage in `{path}`")
            }
            SimError::BadArity { builtin, got, expected } => {
                write!(f, "builtin `{builtin}` takes {expected} arguments, got {got}")
            }
            SimError::Decode(e) => write!(f, "decode failed: {e}"),
            SimError::NoMain => write!(f, "model has no `main` operation"),
            SimError::UnknownActivation { name, operation } => {
                write!(f, "activation of unknown `{name}` from `{operation}`")
            }
            SimError::StepLimit { limit } => {
                write!(f, "step limit of {limit} control steps exceeded")
            }
            SimError::SnapshotMismatch => {
                write!(f, "snapshot does not match this simulator's resource layout")
            }
            SimError::UnboundGroup { group, operation } => {
                write!(f, "group `{group}` of `{operation}` is not bound by the instruction")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_display() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SimError>();
        let e = SimError::IndexOutOfBounds { resource: "A".into(), index: 99, dim: 0 };
        assert!(e.to_string().contains("99"));
    }
}

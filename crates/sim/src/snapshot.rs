//! Checkpoint/restore for simulators.
//!
//! A [`Snapshot`] captures everything that changes while a simulator
//! runs: the architectural [`State`], per-pipeline control state,
//! in-flight delayed activations, accumulated [`SimStats`], the
//! activation sequence counter, and the decode cache. The decode cache's
//! entries are `Arc`-shared with the simulator, so snapshotting a
//! warmed-up compiled simulator is cheap and restoring one skips the
//! translate-time decode work entirely — the foundation for forking one
//! warm simulator into many scenario runs (`lisa-exec`).
//!
//! Snapshots are plain owned data: `Send + Sync`, independent of the
//! model borrow, so they can be stored, cloned, and shared across
//! worker threads.

use std::sync::Arc;

use lisa_isa::Decoded;

use crate::engine::{Pending, PipeState, SimMode, Simulator};
use crate::fasthash::FastMap;
use crate::{SimError, SimStats, State};

/// A point-in-time capture of a simulator's complete dynamic state.
///
/// Created by [`Simulator::snapshot`]; applied by [`Simulator::restore`].
/// The snapshot does not hold the model — restoring checks that the
/// target simulator's resource layout matches and fails with
/// [`SimError::SnapshotMismatch`] otherwise.
///
/// # Examples
///
/// ```
/// use lisa_core::Model;
/// use lisa_sim::{SimMode, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = Model::from_source(r#"
///     RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
///     OPERATION main { BEHAVIOR { r0 = r0 + 1; pc = pc + 1; } }
/// "#)?;
/// let mut sim = Simulator::new(&model, SimMode::Interpretive)?;
/// sim.run(5)?;
/// let checkpoint = sim.snapshot();
/// sim.run(5)?;
/// assert_eq!(sim.stats().cycles, 10);
/// sim.restore(&checkpoint)?;
/// assert_eq!(sim.stats().cycles, 5);
/// sim.run(5)?;
/// let r0 = model.resource_by_name("r0").expect("r0");
/// assert_eq!(sim.state().read_int(r0, &[])?, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Snapshot {
    pub(crate) state: State,
    pub(crate) pipes: Vec<PipeState>,
    pub(crate) pending: Vec<Pending>,
    pub(crate) stats: SimStats,
    pub(crate) seq: u64,
    pub(crate) mode: SimMode,
    pub(crate) decode_cache: FastMap<u128, Arc<Decoded>>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("mode", &self.mode)
            .field("cycles", &self.stats.cycles)
            .field("in_flight", &self.pending.len())
            .field("decode_cache", &self.decode_cache.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// The architectural state captured by this snapshot.
    #[must_use]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The statistics at capture time.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Control steps executed when the snapshot was taken.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// The execution backend of the simulator the snapshot was taken
    /// from (informational — a snapshot restores into either mode).
    #[must_use]
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Number of pre-decoded instruction words carried by the snapshot
    /// (shared by `Arc`, not deep-copied).
    #[must_use]
    pub fn predecoded_words(&self) -> usize {
        self.decode_cache.len()
    }
}

impl<'m> Simulator<'m> {
    /// Captures the simulator's complete dynamic state.
    ///
    /// The architectural state, pipeline control state, in-flight
    /// activations and statistics are copied; the decode cache is
    /// shared structurally (each cached [`Decoded`] tree is behind an
    /// `Arc`), so a snapshot of a warmed-up compiled simulator costs
    /// one map clone, not a re-decode of program memory.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let _span = self.spans.as_ref().map(|s| s.start(lisa_spans::SpanKind::Snapshot));
        Snapshot {
            state: self.state.clone(),
            pipes: self.pipes.clone(),
            pending: self.pending.clone(),
            stats: self.stats,
            seq: self.seq,
            mode: self.mode,
            decode_cache: self.decode_cache.clone(),
        }
    }

    /// Restores a previously captured snapshot, replacing the current
    /// dynamic state. Observability settings survive: an installed trace
    /// sink stays installed (its buffered events are cleared — traces
    /// are a debugging aid, not architectural state) and an active
    /// profile restarts from the restored cycle count, so events and
    /// profiles never mix pre- and post-restore timelines.
    ///
    /// The snapshot may come from a simulator in either [`SimMode`]; the
    /// restored simulator keeps its own mode. Restoring an interpretive
    /// snapshot into a compiled simulator simply starts with whatever
    /// decode cache the snapshot carried.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotMismatch`] when the snapshot's
    /// resource layout (count, widths, dimensions) differs from this
    /// simulator's model — e.g. a snapshot taken on another model.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SimError> {
        let _span = self.spans.as_ref().map(|s| s.start(lisa_spans::SpanKind::Restore));
        if !self.state.same_shape(&snapshot.state) {
            return Err(SimError::SnapshotMismatch);
        }
        self.state = snapshot.state.clone();
        self.pipes = snapshot.pipes.clone();
        self.pending = snapshot.pending.clone();
        self.stats = snapshot.stats;
        self.seq = snapshot.seq;
        self.decode_cache = snapshot.decode_cache.clone();
        // Instance routines are keyed by decode-cache pointer identity;
        // the restored cache invalidates them (retranslated on demand).
        self.ops_invalidate();
        if let Some(obs) = self.observer.as_mut() {
            if let Some(sink) = obs.sink.as_mut() {
                sink.clear();
            }
            if obs.profile.is_some() {
                obs.profile = Some(lisa_trace::Profile::new());
                obs.profile_start = self.stats.cycles;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use lisa_core::Model;

    use crate::{SimError, SimMode, Simulator};

    fn counter_model() -> Model {
        Model::from_source(
            r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
               OPERATION main { BEHAVIOR { r0 = r0 + 3; pc = pc + 1; } }"#,
        )
        .expect("model builds")
    }

    #[test]
    fn snapshot_is_send_sync_and_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<crate::Snapshot>();
    }

    #[test]
    fn restore_resumes_identically() {
        let model = counter_model();
        let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
        sim.run(4).unwrap();
        let snap = sim.snapshot();
        sim.run(6).unwrap();
        let full_state = sim.state().clone();
        let full_stats = *sim.stats();

        sim.restore(&snap).unwrap();
        assert_eq!(sim.stats().cycles, 4);
        sim.run(6).unwrap();
        assert_eq!(sim.state(), &full_state);
        assert_eq!(sim.stats(), &full_stats);
    }

    #[test]
    fn restore_into_fresh_simulator() {
        let model = counter_model();
        let mut warm = Simulator::new(&model, SimMode::Interpretive).unwrap();
        warm.run(7).unwrap();
        let snap = warm.snapshot();

        let mut fork = Simulator::new(&model, SimMode::Interpretive).unwrap();
        fork.restore(&snap).unwrap();
        fork.run(3).unwrap();
        warm.run(3).unwrap();
        assert_eq!(fork.state(), warm.state());
        assert_eq!(fork.stats(), warm.stats());
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let model_a = counter_model();
        let model_b = Model::from_source(
            r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER bit[48] wide; }
               OPERATION main { BEHAVIOR { pc = pc + 1; } }"#,
        )
        .unwrap();
        let sim_a = Simulator::new(&model_a, SimMode::Interpretive).unwrap();
        let snap = sim_a.snapshot();
        let mut sim_b = Simulator::new(&model_b, SimMode::Interpretive).unwrap();
        assert_eq!(sim_b.restore(&snap), Err(SimError::SnapshotMismatch));
    }

    #[test]
    fn trace_and_profile_state_survive_restore_consistently() {
        let model = counter_model();
        let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
        sim.set_trace(true);
        sim.enable_profile();
        sim.run(3).unwrap();
        let snap = sim.snapshot();
        sim.run(2).unwrap();

        sim.restore(&snap).unwrap();
        assert!(sim.tracing(), "the installed sink survives restore");
        assert!(sim.take_events().is_empty(), "restore clears buffered events");

        sim.run(2).unwrap();
        let events = sim.take_events();
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| (3..5).contains(&e.cycle())),
            "post-restore events carry only the restored timeline: {events:?}"
        );
        let profile = sim.take_profile().expect("profiling survives restore");
        assert_eq!(profile.cycles, 2, "profile restarts at the restored cycle count");
        assert_eq!(profile.op_execs["main"], 2);
    }

    #[test]
    fn snapshot_reports_its_capture_point() {
        let model = counter_model();
        let mut sim = Simulator::new(&model, SimMode::Compiled).unwrap();
        sim.run(9).unwrap();
        let snap = sim.snapshot();
        assert_eq!(snap.cycles(), 9);
        assert_eq!(snap.mode(), SimMode::Compiled);
        assert_eq!(snap.stats().cycles, 9);
        let r0 = model.resource_by_name("r0").unwrap();
        assert_eq!(snap.state().read_int(r0, &[]).unwrap(), 27);
    }
}

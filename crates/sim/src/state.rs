//! Processor state: one storage cell per declared resource element.
//!
//! The memory model from the `RESOURCE` section materialises here: scalars
//! (registers, control registers, the program counter) and arrays (register
//! files, data/program memories, banked memories) with their declared bit
//! widths and address ranges.

use lisa_bits::Bits;
use lisa_core::ast::Dim;
use lisa_core::model::{Model, Resource, ResourceId};

use crate::SimError;

/// One resource's storage.
#[derive(Debug, Clone, PartialEq)]
struct Storage {
    width: u32,
    signed: bool,
    dims: Vec<Dim>,
    /// Flattened row-major data; length 1 for scalars.
    data: Vec<Bits>,
}

/// The complete architectural state of a simulated processor.
///
/// Values are stored bit-accurately at each resource's declared width;
/// reads return sign- or zero-extended `i64` views matching the declared
/// C type (`int` is signed, `bit[N]` unsigned), and writes wrap to the
/// declared width like hardware register writes.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    storages: Vec<Storage>,
}

impl State {
    /// Allocates zeroed state for all resources of a model.
    #[must_use]
    pub fn new(model: &Model) -> State {
        let storages = model
            .resources()
            .iter()
            .map(|r| {
                let count = r.element_count().max(1) as usize;
                Storage {
                    width: r.ty.width(),
                    signed: r.ty.is_signed(),
                    dims: r.dims.clone(),
                    data: vec![Bits::zero(r.ty.width()); count],
                }
            })
            .collect();
        State { storages }
    }

    /// Resets every resource to zero.
    pub fn reset(&mut self) {
        for s in &mut self.storages {
            for cell in &mut s.data {
                *cell = Bits::zero(s.width);
            }
        }
    }

    fn flat_index(&self, res: &Resource, indices: &[i64]) -> Result<usize, SimError> {
        let storage = &self.storages[res.id.0];
        if indices.len() != storage.dims.len() {
            return Err(SimError::WrongArity {
                resource: res.name.clone(),
                got: indices.len(),
                expected: storage.dims.len(),
            });
        }
        let mut flat = 0usize;
        for (d, (&idx, dim)) in indices.iter().zip(&storage.dims).enumerate() {
            let base = dim.base() as i64;
            let len = dim.len() as i64;
            if idx < base || idx >= base + len {
                return Err(SimError::IndexOutOfBounds {
                    resource: res.name.clone(),
                    index: idx,
                    dim: d,
                });
            }
            flat = flat * len as usize + (idx - base) as usize;
        }
        Ok(flat)
    }

    /// Reads a resource element as raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongArity`] or [`SimError::IndexOutOfBounds`]
    /// on bad addressing (scalars take an empty index slice).
    pub fn read(&self, res: &Resource, indices: &[i64]) -> Result<Bits, SimError> {
        let flat = self.flat_index(res, indices)?;
        Ok(self.storages[res.id.0].data[flat])
    }

    /// Reads a resource element as an `i64`, honouring the declared
    /// signedness (`int` sign-extends; `bit[N]`/`unsigned` zero-extend;
    /// 64-bit unsigned reads wrap into `i64`).
    ///
    /// # Errors
    ///
    /// Same as [`State::read`].
    pub fn read_int(&self, res: &Resource, indices: &[i64]) -> Result<i64, SimError> {
        let bits = self.read(res, indices)?;
        let signed = self.storages[res.id.0].signed;
        Ok(if signed { bits.to_i128() as i64 } else { bits.to_u128() as i64 })
    }

    /// Writes a resource element, wrapping `value` to the declared width.
    ///
    /// # Errors
    ///
    /// Same as [`State::read`].
    pub fn write_int(
        &mut self,
        res: &Resource,
        indices: &[i64],
        value: i64,
    ) -> Result<(), SimError> {
        let flat = self.flat_index(res, indices)?;
        let storage = &mut self.storages[res.id.0];
        storage.data[flat] = Bits::from_i128_wrapped(storage.width, i128::from(value));
        Ok(())
    }

    /// Writes raw bits (must already have the declared width).
    ///
    /// # Errors
    ///
    /// Same as [`State::read`], plus a wrap if widths differ (the value is
    /// resized with zero extension).
    pub fn write(&mut self, res: &Resource, indices: &[i64], value: Bits) -> Result<(), SimError> {
        let flat = self.flat_index(res, indices)?;
        let storage = &mut self.storages[res.id.0];
        storage.data[flat] = value.resize_zext(storage.width);
        Ok(())
    }

    /// Fast unchecked-by-id scalar read (panics on arrays), used by the
    /// engine for control resources like the instruction register.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the resource is not scalar.
    #[must_use]
    pub fn scalar(&self, id: ResourceId) -> Bits {
        let s = &self.storages[id.0];
        assert!(s.dims.is_empty(), "resource is not scalar");
        s.data[0]
    }

    /// Fast scalar write counterpart of [`State::scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the resource is not scalar.
    pub fn set_scalar(&mut self, id: ResourceId, value: Bits) {
        let s = &mut self.storages[id.0];
        assert!(s.dims.is_empty(), "resource is not scalar");
        s.data[0] = value.resize_zext(s.width);
    }

    /// Direct flat read used by the compiled simulator's lowered code.
    #[inline]
    pub(crate) fn read_flat(&self, id: ResourceId, flat: usize) -> Option<i64> {
        let s = self.storages.get(id.0)?;
        let bits = s.data.get(flat)?;
        Some(if s.signed { bits.to_i128() as i64 } else { bits.to_u128() as i64 })
    }

    /// Direct flat write used by the compiled simulator's lowered code.
    #[inline]
    pub(crate) fn write_flat(&mut self, id: ResourceId, flat: usize, value: i64) -> bool {
        let Some(s) = self.storages.get_mut(id.0) else { return false };
        let Some(cell) = s.data.get_mut(flat) else { return false };
        *cell = Bits::from_i128_wrapped(s.width, i128::from(value));
        true
    }

    /// Computes the flat element index for lowered code; mirrors
    /// [`State::read`]'s addressing rules.
    pub(crate) fn flatten_indices(
        &self,
        res: &Resource,
        indices: &[i64],
    ) -> Result<usize, SimError> {
        self.flat_index(res, indices)
    }

    /// Number of elements stored for resource `id`.
    #[must_use]
    pub fn element_count(&self, id: ResourceId) -> usize {
        self.storages[id.0].data.len()
    }

    /// Whether another state has the same resource layout (count, widths,
    /// signedness, dimensions) — the compatibility check behind
    /// [`crate::Simulator::restore`].
    pub(crate) fn same_shape(&self, other: &State) -> bool {
        self.storages.len() == other.storages.len()
            && self.storages.iter().zip(&other.storages).all(|(a, b)| {
                a.width == b.width
                    && a.signed == b.signed
                    && a.dims == b.dims
                    && a.data.len() == b.data.len()
            })
    }

    /// A 64-bit FNV-1a fingerprint over every storage cell (widths and
    /// values). Two states of the same model with equal contents hash
    /// equally, so digests make cheap cross-run state comparisons — the
    /// batch engine records one per finished job.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for s in &self.storages {
            mix(u64::from(s.width));
            for cell in &s.data {
                let raw = cell.to_u128();
                mix(raw as u64);
                mix((raw >> 64) as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::Model;

    fn model() -> Model {
        Model::from_source(
            r#"RESOURCE {
                PROGRAM_COUNTER int pc;
                REGISTER bit[48] accu;
                REGISTER bit carry;
                DATA_MEMORY short mem[0x10];
                DATA_MEMORY int banked[2]([4]);
                PROGRAM_MEMORY int prog[0x100..0x10f];
            }"#,
        )
        .expect("model builds")
    }

    #[test]
    fn scalars_read_back_written_values() {
        let m = model();
        let mut st = State::new(&m);
        let pc = m.resource_by_name("pc").unwrap();
        st.write_int(pc, &[], -5).unwrap();
        assert_eq!(st.read_int(pc, &[]).unwrap(), -5);
        let accu = m.resource_by_name("accu").unwrap();
        st.write_int(accu, &[], -1).unwrap();
        // bit[48] is unsigned: reads back as 2^48 - 1.
        assert_eq!(st.read_int(accu, &[]).unwrap(), (1 << 48) - 1);
    }

    #[test]
    fn short_memory_wraps_to_16_bits() {
        let m = model();
        let mut st = State::new(&m);
        let mem = m.resource_by_name("mem").unwrap();
        st.write_int(mem, &[3], 0x12345).unwrap();
        assert_eq!(st.read_int(mem, &[3]).unwrap(), 0x2345);
        st.write_int(mem, &[3], -1).unwrap();
        assert_eq!(st.read_int(mem, &[3]).unwrap(), -1); // short is signed
    }

    #[test]
    fn range_based_addressing() {
        let m = model();
        let mut st = State::new(&m);
        let prog = m.resource_by_name("prog").unwrap();
        st.write_int(prog, &[0x100], 42).unwrap();
        st.write_int(prog, &[0x10f], 7).unwrap();
        assert_eq!(st.read_int(prog, &[0x100]).unwrap(), 42);
        assert_eq!(st.read_int(prog, &[0x10f]).unwrap(), 7);
        assert!(matches!(st.read(prog, &[0xff]), Err(SimError::IndexOutOfBounds { .. })));
        assert!(matches!(st.read(prog, &[0x110]), Err(SimError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn banked_memory_uses_two_indices() {
        let m = model();
        let mut st = State::new(&m);
        let banked = m.resource_by_name("banked").unwrap();
        st.write_int(banked, &[1, 2], 99).unwrap();
        assert_eq!(st.read_int(banked, &[1, 2]).unwrap(), 99);
        assert_eq!(st.read_int(banked, &[0, 2]).unwrap(), 0);
        assert!(matches!(st.read(banked, &[1]), Err(SimError::WrongArity { .. })));
        assert!(matches!(st.read(banked, &[2, 0]), Err(SimError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = model();
        let mut st = State::new(&m);
        let pc = m.resource_by_name("pc").unwrap();
        st.write_int(pc, &[], 123).unwrap();
        st.reset();
        assert_eq!(st.read_int(pc, &[]).unwrap(), 0);
    }

    #[test]
    fn carry_bit_is_one_bit_wide() {
        let m = model();
        let mut st = State::new(&m);
        let carry = m.resource_by_name("carry").unwrap();
        st.write_int(carry, &[], 3).unwrap();
        assert_eq!(st.read_int(carry, &[]).unwrap(), 1); // wrapped to 1 bit
    }
}

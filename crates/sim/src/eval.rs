//! Interpretive behavior evaluation: direct AST walking with name-based
//! resolution. This is the paper's baseline simulation technique; the
//! compiled backend ([`crate::compiled`]) pre-resolves everything this
//! module looks up at run time.

use lisa_core::ast::{AssignOp, BinOp, Block, Call, Expr, Stmt, UnOp};
use lisa_core::model::{CodingTarget, OpId, Resource};
use lisa_isa::Decoded;

use crate::{SimError, Simulator};

/// A behavior-execution frame: the operation instance being evaluated and
/// its local variables.
#[derive(Debug)]
pub(crate) struct Frame<'d> {
    pub op: OpId,
    #[allow(dead_code)] // kept for symmetry with the lowered frame and diagnostics
    pub variant: usize,
    pub decoded: Option<&'d Decoded>,
    locals: Vec<(String, i64)>,
    scopes: Vec<usize>,
}

impl<'d> Frame<'d> {
    pub fn new(op: OpId, variant: usize, decoded: Option<&'d Decoded>) -> Self {
        Frame { op, variant, decoded, locals: Vec::new(), scopes: Vec::new() }
    }

    fn push_scope(&mut self) {
        self.scopes.push(self.locals.len());
    }

    fn pop_scope(&mut self) {
        let mark = self.scopes.pop().unwrap_or(0);
        self.locals.truncate(mark);
    }

    fn declare(&mut self, name: &str, value: i64) {
        self.locals.push((name.to_owned(), value));
    }

    fn local(&self, name: &str) -> Option<usize> {
        self.locals.iter().rposition(|(n, _)| n == name)
    }
}

/// An lvalue: where an assignment lands.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Place {
    Local(usize),
    Resource { res: lisa_core::model::ResourceId, flat: usize },
}

/// Loop control flow.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

impl<'m> Simulator<'m> {
    /// Executes an operation's BEHAVIOR section interpretively.
    pub(crate) fn exec_behavior_interp(
        &mut self,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
    ) -> Result<(), SimError> {
        let operation = self.model.operation(op);
        let Some(behavior) = operation.variants[variant].behavior.as_ref() else {
            return Ok(());
        };
        let mut frame = Frame::new(op, variant, decoded);
        self.eval_block(behavior, &mut frame)?;
        Ok(())
    }

    fn eval_block(&mut self, block: &Block, frame: &mut Frame<'_>) -> Result<Flow, SimError> {
        frame.push_scope();
        let flow = self.eval_stmts(&block.stmts, frame);
        frame.pop_scope();
        flow
    }

    fn eval_stmts(&mut self, stmts: &[Stmt], frame: &mut Frame<'_>) -> Result<Flow, SimError> {
        for stmt in stmts {
            match self.eval_stmt(stmt, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_stmt(&mut self, stmt: &Stmt, frame: &mut Frame<'_>) -> Result<Flow, SimError> {
        match stmt {
            Stmt::Local { ty, name, init } => {
                let value = match init {
                    Some(e) => self.eval_expr_interp(e, frame)?,
                    None => 0,
                };
                // Locals are C ints; widths below 64 wrap like the type.
                let width = ty.width().min(64);
                let wrapped = lisa_bits::Bits::from_i128_wrapped(width, i128::from(value));
                let value = if ty.is_signed() {
                    wrapped.to_i128() as i64
                } else {
                    wrapped.to_u128() as i64
                };
                frame.declare(&name.name, value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let rhs = self.eval_expr_interp(value, frame)?;
                let place = self.eval_place(target, frame)?;
                let new = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let old = self.read_place(place, frame)?;
                        apply_compound(*op, old, rhs).map_err(|_| SimError::DivisionByZero {
                            operation: self.model.operation(frame.op).name.clone(),
                        })?
                    }
                };
                self.write_place(place, new, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::IncDec { target, delta } => {
                let place = self.eval_place(target, frame)?;
                let old = self.read_place(place, frame)?;
                self.write_place(place, old.wrapping_add(*delta), frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval_effect(expr, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_block, else_block } => {
                if self.eval_expr_interp(cond, frame)? != 0 {
                    self.eval_block(then_block, frame)
                } else {
                    self.eval_block(else_block, frame)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval_expr_interp(cond, frame)? != 0 {
                    if self.eval_block(body, frame)? == Flow::Break {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    if self.eval_block(body, frame)? == Flow::Break {
                        break;
                    }
                    if self.eval_expr_interp(cond, frame)? == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body } => {
                frame.push_scope();
                if let Some(init) = init {
                    self.eval_stmt(init, frame)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if self.eval_expr_interp(cond, frame)? == 0 {
                            break;
                        }
                    }
                    if self.eval_block(body, frame)? == Flow::Break {
                        break;
                    }
                    if let Some(step) = step {
                        self.eval_stmt(step, frame)?;
                    }
                }
                frame.pop_scope();
                Ok(Flow::Normal)
            }
            Stmt::Switch { scrutinee, cases, default } => {
                let value = self.eval_expr_interp(scrutinee, frame)?;
                let body =
                    cases.iter().find(|(v, _)| *v == value).map(|(_, b)| b).or(default.as_ref());
                match body {
                    Some(block) => {
                        // A Break inside a case ends the switch, not an
                        // enclosing loop (cases absorb their trailing
                        // break at parse time; stray breaks are local).
                        match self.eval_block(block, frame)? {
                            Flow::Break => Ok(Flow::Normal),
                            other => Ok(other),
                        }
                    }
                    None => Ok(Flow::Normal),
                }
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(block) => self.eval_block(block, frame),
        }
    }

    /// Expression-statement semantics: operation/group names and calls
    /// invoke behaviors; intrinsics act; anything else evaluates for
    /// value and discards it.
    fn eval_effect(&mut self, expr: &Expr, frame: &mut Frame<'_>) -> Result<(), SimError> {
        match expr {
            Expr::Name(id) => {
                let operation = self.model.operation(frame.op);
                if let Some(gidx) = operation.group_index(&id.name) {
                    return self.invoke_group(gidx, frame);
                }
                if let Some(target) = self.model.operation_by_name(&id.name) {
                    let target = target.id;
                    return self.invoke_op(target, frame);
                }
                self.eval_expr_interp(expr, frame).map(drop)
            }
            Expr::Call(call) => {
                if self.try_pipe_intrinsic(call)? {
                    return Ok(());
                }
                if call.path.len() == 1 {
                    let name = &call.path[0].name;
                    let operation = self.model.operation(frame.op);
                    if let Some(gidx) = operation.group_index(name) {
                        return self.invoke_group(gidx, frame);
                    }
                    if let Some(target) = self.model.operation_by_name(name) {
                        let target = target.id;
                        return self.invoke_op(target, frame);
                    }
                }
                self.eval_expr_interp(expr, frame).map(drop)
            }
            _ => self.eval_expr_interp(expr, frame).map(drop),
        }
    }

    /// Invokes the behavior (and activation) of a group's selected member
    /// in the same control step.
    fn invoke_group(&mut self, gidx: usize, frame: &mut Frame<'_>) -> Result<(), SimError> {
        let child =
            frame.decoded.and_then(|d| d.group_child(self.model, gidx)).ok_or_else(|| {
                let operation = self.model.operation(frame.op);
                SimError::UnboundGroup {
                    group: operation.groups[gidx].name.clone(),
                    operation: operation.name.clone(),
                }
            })?;
        self.invoke_decoded(child)
    }

    /// Invokes an operation by id, passing through a matching op-reference
    /// binding when the current instruction carries one.
    fn invoke_op(&mut self, target: OpId, frame: &mut Frame<'_>) -> Result<(), SimError> {
        let bound = self.op_ref_child(target, frame);
        match bound {
            Some(child) => self.invoke_decoded(child),
            None => self.invoke_unbound(target),
        }
    }

    /// Executes a decoded operation instance immediately (behavior +
    /// activation; zero-delay activations also run in this control step).
    pub(crate) fn invoke_decoded(&mut self, decoded: &Decoded) -> Result<(), SimError> {
        self.stats.executed_ops += 1;
        if self.observing() {
            self.emit_exec(decoded.op);
        }
        match self.mode {
            crate::SimMode::Interpretive => {
                self.exec_behavior_interp(decoded.op, decoded.variant, Some(decoded))?;
            }
            crate::SimMode::Compiled => {
                self.exec_behavior_compiled(decoded.op, decoded.variant, Some(decoded))?;
            }
            crate::SimMode::Ops => {
                // Borrowed (non-`Arc`) instances can't be identity-cached;
                // translate on the spot. The hot paths go through
                // `invoke_decoded_arc` instead.
                let routine = self.ops_uncached_routine(decoded.op, decoded.variant, Some(decoded));
                self.run_ops(&routine)?;
                return self.invoke_plan(&routine);
            }
        }
        self.invoke_activation(decoded.op, decoded.variant, Some(decoded))
    }

    /// Like [`Self::invoke_decoded`] but for `Arc`-shared instances, so
    /// ops mode can resolve (and cache) the translated routine by
    /// pointer identity instead of retranslating.
    pub(crate) fn invoke_decoded_arc(
        &mut self,
        decoded: &std::sync::Arc<Decoded>,
    ) -> Result<(), SimError> {
        if self.mode == crate::SimMode::Ops {
            self.stats.executed_ops += 1;
            if self.observing() {
                self.emit_exec(decoded.op);
            }
            let routine = self.ops_instance_routine(decoded);
            self.run_ops(&routine)?;
            return self.invoke_plan(&routine);
        }
        self.invoke_decoded(decoded)
    }

    /// Executes an operation with no operand binding. Decode-root
    /// operations fetch and decode their compared resource first.
    pub(crate) fn invoke_unbound(&mut self, op: OpId) -> Result<(), SimError> {
        let operation = self.model.operation(op);
        if let Some(root_res) = operation.decode_root {
            let word = self.state.scalar(root_res).to_u128();
            if self.observing() {
                let event = lisa_trace::TraceEvent::Fetch {
                    cycle: self.stats.cycles,
                    pc: self.current_pc(),
                    word,
                };
                self.emit(event);
            }
            if self.mode == crate::SimMode::Ops {
                // Fused decode+translate lookup: one cache probe resolves
                // both the instance and its micro-op routine.
                let (decoded, routine) = self.ops_decode_word(word)?;
                self.stats.executed_ops += 1;
                if self.observing() {
                    self.emit_exec(decoded.op);
                }
                self.run_ops(&routine)?;
                self.invoke_plan(&routine)?;
                self.stats.instructions_retired += 1;
                return Ok(());
            }
            let decoded = self.decode_word(word)?;
            self.invoke_decoded(&decoded)?;
            self.stats.instructions_retired += 1;
            return Ok(());
        }
        self.stats.executed_ops += 1;
        if self.observing() {
            self.emit_exec(op);
        }
        if self.mode == crate::SimMode::Ops {
            // The pre-translated routine already encodes the default
            // variant — skip the guard-matching walk entirely.
            let routine = self.ops_unbound_routine(op);
            self.run_ops(&routine)?;
            return self.invoke_plan(&routine);
        }
        let choices = vec![None; operation.groups.len()];
        let variant = operation.variants.iter().position(|v| v.matches(&choices)).unwrap_or(0);
        match self.mode {
            crate::SimMode::Interpretive => self.exec_behavior_interp(op, variant, None)?,
            crate::SimMode::Compiled => self.exec_behavior_compiled(op, variant, None)?,
            crate::SimMode::Ops => unreachable!("handled above"),
        }
        self.invoke_activation(op, variant, None)
    }

    /// Runs the invoked operation's ACTIVATION list; zero-delay targets
    /// execute immediately, delayed ones enter the schedule.
    pub(crate) fn invoke_activation(
        &mut self,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
    ) -> Result<(), SimError> {
        let operation = self.model.operation(op);
        let Some(activation) = operation.variants[variant].activation.as_ref() else {
            return Ok(());
        };
        let mut ready = Vec::new();
        self.run_act_nodes(activation, op, variant, decoded, &mut ready)?;
        let mut i = 0;
        while i < ready.len() {
            let item = ready[i].clone();
            match item.decoded {
                Some(d) => self.invoke_decoded_arc(&d)?,
                None => self.invoke_unbound(item.op)?,
            }
            i += 1;
        }
        Ok(())
    }

    // -- expressions --------------------------------------------------------

    pub(crate) fn eval_expr_interp(
        &mut self,
        expr: &Expr,
        frame: &mut Frame<'_>,
    ) -> Result<i64, SimError> {
        match expr {
            Expr::Int(v, _) => Ok(*v),
            Expr::Name(id) => self.read_name(&id.name, frame),
            Expr::Index { .. } => {
                let place = self.eval_place(expr, frame)?;
                self.read_place(place, frame)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_expr_interp(expr, frame)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::LogAnd => {
                        let l = self.eval_expr_interp(lhs, frame)?;
                        if l == 0 {
                            return Ok(0);
                        }
                        let r = self.eval_expr_interp(rhs, frame)?;
                        return Ok(i64::from(r != 0));
                    }
                    BinOp::LogOr => {
                        let l = self.eval_expr_interp(lhs, frame)?;
                        if l != 0 {
                            return Ok(1);
                        }
                        let r = self.eval_expr_interp(rhs, frame)?;
                        return Ok(i64::from(r != 0));
                    }
                    _ => {}
                }
                let l = self.eval_expr_interp(lhs, frame)?;
                let r = self.eval_expr_interp(rhs, frame)?;
                apply_binop(*op, l, r).map_err(|_| SimError::DivisionByZero {
                    operation: self.model.operation(frame.op).name.clone(),
                })
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                if self.eval_expr_interp(cond, frame)? != 0 {
                    self.eval_expr_interp(then_expr, frame)
                } else {
                    self.eval_expr_interp(else_expr, frame)
                }
            }
            Expr::Call(call) => self.eval_call(call, frame),
        }
    }

    fn read_name(&mut self, name: &str, frame: &mut Frame<'_>) -> Result<i64, SimError> {
        if let Some(idx) = frame.local(name) {
            return Ok(frame.locals[idx].1);
        }
        let operation = self.model.operation(frame.op);
        if let Some(lidx) = operation.label_index(name) {
            let value =
                frame.decoded.map(|d| d.labels.get(lidx).copied().unwrap_or(0)).unwrap_or(0);
            return Ok(value as i64);
        }
        if let Some(gidx) = operation.group_index(name) {
            return self.read_group(gidx, frame);
        }
        if let Some(res) = self.model.resource_by_name(name) {
            let value = self.state.read_int(res, &[])?;
            self.probe_read(res.id, 0);
            return Ok(value);
        }
        // An operation reference used as a value: its expression.
        if self.model.operation_by_name(name).is_some() {
            let target = self.model.operation_by_name(name).map(|o| o.id);
            if let Some(target) = target {
                if let Some(child) = self.op_ref_child(target, frame) {
                    return self.eval_expression_of(child);
                }
            }
        }
        Err(SimError::UnknownName { name: name.to_owned(), operation: operation.name.clone() })
    }

    fn op_ref_child<'d>(&self, target: OpId, frame: &Frame<'d>) -> Option<&'d Decoded> {
        let d = frame.decoded?;
        let coding = self.model.operation(frame.op).variants.get(d.variant)?.coding.as_ref()?;
        coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
            (CodingTarget::Op(o), Some(c)) if *o == target => Some(&**c),
            _ => None,
        })
    }

    /// Reads a group operand: the selected member's EXPRESSION value, or
    /// its sole label when it has no expression (immediate operands).
    fn read_group(&mut self, gidx: usize, frame: &mut Frame<'_>) -> Result<i64, SimError> {
        let child =
            frame.decoded.and_then(|d| d.group_child(self.model, gidx)).ok_or_else(|| {
                let operation = self.model.operation(frame.op);
                SimError::UnboundGroup {
                    group: operation.groups[gidx].name.clone(),
                    operation: operation.name.clone(),
                }
            })?;
        self.eval_expression_of(child)
    }

    /// Evaluates an operand operation's EXPRESSION section (paper §3.2.3:
    /// "The EXPRESSION section identifies an object which is accessed by
    /// the behavior part of a referencing operation").
    pub(crate) fn eval_expression_of(&mut self, child: &Decoded) -> Result<i64, SimError> {
        let operation = self.model.operation(child.op);
        let variant = &operation.variants[child.variant];
        if let Some(expr) = variant.expression.as_ref() {
            let mut child_frame = Frame::new(child.op, child.variant, Some(child));
            return self.eval_expr_interp(expr, &mut child_frame);
        }
        // Immediate-like operand: a single label value.
        if operation.labels.len() == 1 {
            return Ok(child.labels[0] as i64);
        }
        Err(SimError::UnknownName {
            name: format!("<expression of {}>", operation.name),
            operation: operation.name.clone(),
        })
    }

    fn eval_call(&mut self, call: &Call, frame: &mut Frame<'_>) -> Result<i64, SimError> {
        // Pipeline intrinsics are statements; in value position they yield 0.
        if self.try_pipe_intrinsic(call)? {
            return Ok(0);
        }
        if call.path.len() == 1 {
            let name = call.path[0].name.as_str();
            if let Some(value) = self.eval_builtin(name, &call.args, frame)? {
                return Ok(value);
            }
            // Operand read through call syntax: `Src1()`.
            let operation = self.model.operation(frame.op);
            if let Some(gidx) = operation.group_index(name) {
                return self.read_group(gidx, frame);
            }
            if let Some(target) = self.model.operation_by_name(name) {
                let target = target.id;
                if let Some(child) = self.op_ref_child(target, frame) {
                    return self.eval_expression_of(child);
                }
                // Invoke for effect; an operation used as a value yields 0.
                self.invoke_op(target, frame)?;
                return Ok(0);
            }
        }
        Err(SimError::UnknownCall {
            path: call.path.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join("."),
            operation: self.model.operation(frame.op).name.clone(),
        })
    }

    /// Evaluates a builtin function; `Ok(None)` when `name` is not a
    /// builtin.
    fn eval_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        frame: &mut Frame<'_>,
    ) -> Result<Option<i64>, SimError> {
        let arity = |expected: usize| -> Result<(), SimError> {
            if args.len() != expected {
                Err(SimError::BadArity { builtin: name.to_owned(), got: args.len(), expected })
            } else {
                Ok(())
            }
        };
        let value = match name {
            "sext" => {
                arity(2)?;
                let v = self.eval_expr_interp(&args[0], frame)?;
                let w = self.eval_expr_interp(&args[1], frame)?.clamp(1, 64) as u32;
                lisa_bits::Bits::from_i128_wrapped(w, i128::from(v)).to_i128() as i64
            }
            "zext" => {
                arity(2)?;
                let v = self.eval_expr_interp(&args[0], frame)?;
                let w = self.eval_expr_interp(&args[1], frame)?.clamp(1, 64) as u32;
                lisa_bits::Bits::from_i128_wrapped(w, i128::from(v)).to_u128() as i64
            }
            "saturate" => {
                arity(2)?;
                let v = self.eval_expr_interp(&args[0], frame)?;
                let w = self.eval_expr_interp(&args[1], frame)?.clamp(1, 64) as u32;
                saturate(v, w)
            }
            "abs" => {
                arity(1)?;
                self.eval_expr_interp(&args[0], frame)?.wrapping_abs()
            }
            "min" => {
                arity(2)?;
                let a = self.eval_expr_interp(&args[0], frame)?;
                let b = self.eval_expr_interp(&args[1], frame)?;
                a.min(b)
            }
            "max" => {
                arity(2)?;
                let a = self.eval_expr_interp(&args[0], frame)?;
                let b = self.eval_expr_interp(&args[1], frame)?;
                a.max(b)
            }
            "norm" => {
                arity(2)?;
                let v = self.eval_expr_interp(&args[0], frame)?;
                let w = self.eval_expr_interp(&args[1], frame)?.clamp(1, 64) as u32;
                i64::from(lisa_bits::Bits::from_i128_wrapped(w, i128::from(v)).norm())
            }
            "print" => {
                arity(1)?;
                let v = self.eval_expr_interp(&args[0], frame)?;
                if self.observing() {
                    let event = lisa_trace::TraceEvent::Print {
                        cycle: self.stats.cycles,
                        op: frame.op,
                        value: v,
                    };
                    self.emit(event);
                }
                v
            }
            "nop" => {
                arity(0)?;
                0
            }
            _ => return Ok(None),
        };
        Ok(Some(value))
    }

    // -- places ----------------------------------------------------------------

    fn eval_place(&mut self, expr: &Expr, frame: &mut Frame<'_>) -> Result<Place, SimError> {
        match expr {
            Expr::Name(id) => {
                if let Some(idx) = frame.local(&id.name) {
                    return Ok(Place::Local(idx));
                }
                let operation = self.model.operation(frame.op);
                if let Some(gidx) = operation.group_index(&id.name) {
                    let child = frame
                        .decoded
                        .and_then(|d| d.group_child(self.model, gidx))
                        .ok_or_else(|| SimError::UnboundGroup {
                            group: operation.groups[gidx].name.clone(),
                            operation: operation.name.clone(),
                        })?;
                    return self.place_of_expression(child);
                }
                if let Some(res) = self.model.resource_by_name(&id.name) {
                    let flat = self.state.flatten_indices(res, &[])?;
                    return Ok(Place::Resource { res: res.id, flat });
                }
                if let Some(target) = self.model.operation_by_name(&id.name) {
                    let target = target.id;
                    if let Some(child) = self.op_ref_child(target, frame) {
                        return self.place_of_expression(child);
                    }
                }
                Err(SimError::UnknownName {
                    name: id.name.clone(),
                    operation: operation.name.clone(),
                })
            }
            Expr::Index { .. } => {
                let (res, indices) = self.indexed_resource(expr, frame)?;
                let flat = self.state.flatten_indices(res, &indices)?;
                Ok(Place::Resource { res: res.id, flat })
            }
            _ => Err(SimError::NotAnLvalue {
                operation: self.model.operation(frame.op).name.clone(),
            }),
        }
    }

    /// Resolves `mem[i][j]` chains to a resource and index list.
    fn indexed_resource(
        &mut self,
        expr: &Expr,
        frame: &mut Frame<'_>,
    ) -> Result<(&'m Resource, Vec<i64>), SimError> {
        let mut indices_rev = Vec::new();
        let mut cur = expr;
        loop {
            match cur {
                Expr::Index { base, index } => {
                    let idx = self.eval_expr_interp(index, frame)?;
                    indices_rev.push(idx);
                    cur = base;
                }
                Expr::Name(id) => {
                    let res = self.model.resource_by_name(&id.name).ok_or_else(|| {
                        SimError::UnknownName {
                            name: id.name.clone(),
                            operation: self.model.operation(frame.op).name.clone(),
                        }
                    })?;
                    indices_rev.reverse();
                    return Ok((res, indices_rev));
                }
                _ => {
                    return Err(SimError::NotAnLvalue {
                        operation: self.model.operation(frame.op).name.clone(),
                    });
                }
            }
        }
    }

    /// The place an operand operation's EXPRESSION refers to (for writes
    /// through group operands: `Dest = …`).
    fn place_of_expression(&mut self, child: &Decoded) -> Result<Place, SimError> {
        let operation = self.model.operation(child.op);
        let expr = operation.variants[child.variant]
            .expression
            .as_ref()
            .ok_or_else(|| SimError::NotAnLvalue { operation: operation.name.clone() })?;
        let mut child_frame = Frame::new(child.op, child.variant, Some(child));
        self.eval_place(expr, &mut child_frame)
    }

    fn read_place(&mut self, place: Place, frame: &Frame<'_>) -> Result<i64, SimError> {
        match place {
            Place::Local(idx) => Ok(frame.locals[idx].1),
            Place::Resource { res, flat } => {
                let value =
                    self.state.read_flat(res, flat).ok_or_else(|| SimError::IndexOutOfBounds {
                        resource: self.model.resource(res).name.clone(),
                        index: flat as i64,
                        dim: 0,
                    })?;
                self.probe_read(res, flat);
                Ok(value)
            }
        }
    }

    fn write_place(
        &mut self,
        place: Place,
        value: i64,
        frame: &mut Frame<'_>,
    ) -> Result<(), SimError> {
        match place {
            Place::Local(idx) => {
                frame.locals[idx].1 = value;
                Ok(())
            }
            Place::Resource { res, flat } => {
                if self.observing() {
                    self.emit_write(res, flat, value);
                }
                if self.state.write_flat(res, flat, value) {
                    Ok(())
                } else {
                    Err(SimError::IndexOutOfBounds {
                        resource: self.model.resource(res).name.clone(),
                        index: flat as i64,
                        dim: 0,
                    })
                }
            }
        }
    }
}

/// C arithmetic over i64 with explicit division-by-zero signalling.
pub(crate) fn apply_binop(op: BinOp, l: i64, r: i64) -> Result<i64, ()> {
    Ok(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return Err(());
            }
            l.wrapping_div(r)
        }
        BinOp::Rem => {
            if r == 0 {
                return Err(());
            }
            l.wrapping_rem(r)
        }
        BinOp::Shl => l.wrapping_shl((r & 63) as u32),
        BinOp::Shr => l.wrapping_shr((r & 63) as u32),
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
        BinOp::Eq => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
        BinOp::BitAnd => l & r,
        BinOp::BitOr => l | r,
        BinOp::BitXor => l ^ r,
        BinOp::LogAnd => i64::from(l != 0 && r != 0),
        BinOp::LogOr => i64::from(l != 0 || r != 0),
    })
}

pub(crate) fn apply_compound(op: AssignOp, old: i64, rhs: i64) -> Result<i64, ()> {
    let bin = match op {
        AssignOp::Set => return Ok(rhs),
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Shl => BinOp::Shl,
        AssignOp::Shr => BinOp::Shr,
        AssignOp::And => BinOp::BitAnd,
        AssignOp::Or => BinOp::BitOr,
        AssignOp::Xor => BinOp::BitXor,
    };
    apply_binop(bin, old, rhs)
}

/// Clamps to the signed `width`-bit range (DSP saturation builtin).
pub(crate) fn saturate(v: i64, width: u32) -> i64 {
    if width >= 64 {
        return v;
    }
    let max = (1i64 << (width - 1)) - 1;
    v.clamp(-max - 1, max)
}

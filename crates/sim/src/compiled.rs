//! Compiled simulation: behaviors lowered to slot-resolved code.
//!
//! The paper's headline performance technique (§3.3) moves work from
//! simulation run time to simulator generation time: instruction decoding
//! happens once per program word, and compile-time-evaluable structure
//! (SWITCH/CASE specialisation, name binding) is resolved before the cycle
//! loop starts. This module is the "generation" half: each operation
//! variant's BEHAVIOR and EXPRESSION sections are lowered once into an IR
//! whose locals are stack slots, whose resources are ids, and whose group
//! operands dispatch through precomputed variant tables — no string
//! lookups remain on the cycle path.

use lisa_core::ast::{AssignOp, BinOp, Block, Call, DataType, Expr, Stmt, UnOp};
use lisa_core::model::{CodingTarget, Model, OpId, PipelineId, ResourceId};
use lisa_isa::Decoded;

use crate::eval::{apply_binop, apply_compound, saturate};
use crate::{SimError, Simulator};

/// Built-in functions recognised in behavior code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    Sext,
    Zext,
    Saturate,
    Abs,
    Min,
    Max,
    Norm,
    Print,
    Nop,
}

impl Builtin {
    fn from_name(name: &str) -> Option<(Builtin, usize)> {
        Some(match name {
            "sext" => (Builtin::Sext, 2),
            "zext" => (Builtin::Zext, 2),
            "saturate" => (Builtin::Saturate, 2),
            "abs" => (Builtin::Abs, 1),
            "min" => (Builtin::Min, 2),
            "max" => (Builtin::Max, 2),
            "norm" => (Builtin::Norm, 2),
            "print" => (Builtin::Print, 1),
            "nop" => (Builtin::Nop, 0),
            _ => return None,
        })
    }
}

/// Lowered expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LExpr {
    Const(i64),
    Local(u16),
    Label(u16),
    ResScalar(ResourceId),
    ResElem { res: ResourceId, indices: Vec<LExpr> },
    GroupValue(u16),
    OpRefValue(OpId),
    Unary { op: UnOp, expr: Box<LExpr> },
    Binary { op: BinOp, lhs: Box<LExpr>, rhs: Box<LExpr> },
    Ternary { cond: Box<LExpr>, then_expr: Box<LExpr>, else_expr: Box<LExpr> },
    Builtin { f: Builtin, args: Vec<LExpr> },
}

/// Lowered lvalue.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LPlace {
    Local(u16),
    Res { res: ResourceId, indices: Vec<LExpr> },
    Group(u16),
    OpRef(OpId),
}

/// Lowered pipeline intrinsic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PipeOp {
    Shift(PipelineId),
    Stall(PipelineId, usize),
    Flush(PipelineId, Option<usize>),
}

/// Lowered statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LStmt {
    DeclLocal { slot: u16, init: Option<LExpr>, width: u32, signed: bool },
    Assign { place: LPlace, op: AssignOp, value: LExpr },
    IncDec { place: LPlace, delta: i64 },
    InvokeGroup(u16),
    InvokeOp(OpId),
    Intrinsic(PipeOp),
    EvalDrop(LExpr),
    If { cond: LExpr, then_block: LBlock, else_block: LBlock },
    While { cond: LExpr, body: LBlock },
    DoWhile { body: LBlock, cond: LExpr },
    For { init: Option<Box<LStmt>>, cond: Option<LExpr>, step: Option<Box<LStmt>>, body: LBlock },
    Switch { scrutinee: LExpr, cases: Vec<(i64, LBlock)>, default: Option<LBlock> },
    Break,
    Continue,
    Block(LBlock),
}

/// A lowered block.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct LBlock {
    pub stmts: Vec<LStmt>,
}

/// All lowered code for a model, indexed by flattened (operation,
/// variant).
#[derive(Debug, Clone)]
pub(crate) struct CompiledTables {
    variant_base: Vec<usize>,
    pub(crate) behaviors: Vec<Option<LBlock>>,
    pub(crate) expressions: Vec<Option<LExpr>>,
    pub(crate) expr_places: Vec<Option<LPlace>>,
    pub(crate) locals_count: Vec<u16>,
}

impl CompiledTables {
    #[inline]
    pub(crate) fn slot(&self, op: OpId, variant: usize) -> usize {
        self.variant_base[op.0] + variant
    }

    /// Lowers every operation variant of a model.
    pub(crate) fn lower(model: &Model) -> Result<CompiledTables, SimError> {
        let mut variant_base = Vec::with_capacity(model.operations().len());
        let mut total = 0usize;
        for op in model.operations() {
            variant_base.push(total);
            total += op.variants.len();
        }
        let mut tables = CompiledTables {
            variant_base,
            behaviors: vec![None; total],
            expressions: vec![None; total],
            expr_places: vec![None; total],
            locals_count: vec![0; total],
        };
        for op in model.operations() {
            for (vidx, variant) in op.variants.iter().enumerate() {
                let idx = tables.slot(op.id, vidx);
                let mut ctx = LowerCtx::new(model, op.id);
                if let Some(behavior) = &variant.behavior {
                    let block = ctx.lower_block(behavior)?;
                    tables.behaviors[idx] = Some(block);
                }
                if let Some(expr) = &variant.expression {
                    tables.expressions[idx] = Some(ctx.lower_expr(expr)?);
                    tables.expr_places[idx] = ctx.lower_place(expr).ok();
                }
                tables.locals_count[idx] = ctx.max_slots;
            }
        }
        Ok(tables)
    }
}

/// Lowers one ACTIVATION condition expression. Conditions evaluate in a
/// fresh frame (no behavior locals in scope), so a bare `LowerCtx` gives
/// the same name resolution the interpretive `eval_condition` performs at
/// run time.
pub(crate) fn lower_act_expr(model: &Model, op: OpId, expr: &Expr) -> Result<LExpr, SimError> {
    LowerCtx::new(model, op).lower_expr(expr)
}

/// Name-resolution context while lowering one operation.
struct LowerCtx<'m> {
    model: &'m Model,
    op: OpId,
    locals: Vec<String>,
    scopes: Vec<usize>,
    max_slots: u16,
}

impl<'m> LowerCtx<'m> {
    fn new(model: &'m Model, op: OpId) -> Self {
        LowerCtx { model, op, locals: Vec::new(), scopes: Vec::new(), max_slots: 0 }
    }

    fn push_scope(&mut self) {
        self.scopes.push(self.locals.len());
    }

    fn pop_scope(&mut self) {
        let mark = self.scopes.pop().unwrap_or(0);
        self.locals.truncate(mark);
    }

    fn declare(&mut self, name: &str) -> u16 {
        self.locals.push(name.to_owned());
        let slot = (self.locals.len() - 1) as u16;
        self.max_slots = self.max_slots.max(self.locals.len() as u16);
        slot
    }

    fn local(&self, name: &str) -> Option<u16> {
        self.locals.iter().rposition(|n| n == name).map(|i| i as u16)
    }

    fn unknown(&self, name: &str) -> SimError {
        SimError::UnknownName {
            name: name.to_owned(),
            operation: self.model.operation(self.op).name.clone(),
        }
    }

    fn lower_block(&mut self, block: &Block) -> Result<LBlock, SimError> {
        self.push_scope();
        let stmts = block.stmts.iter().map(|s| self.lower_stmt(s)).collect::<Result<Vec<_>, _>>();
        self.pop_scope();
        Ok(LBlock { stmts: stmts? })
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<LStmt, SimError> {
        Ok(match stmt {
            Stmt::Local { ty, name, init } => {
                let init = init.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let slot = self.declare(&name.name);
                let width = width_of(*ty);
                LStmt::DeclLocal { slot, init, width, signed: ty.is_signed() }
            }
            Stmt::Assign { target, op, value } => {
                let value = self.lower_expr(value)?;
                let place = self.lower_place(target)?;
                LStmt::Assign { place, op: *op, value }
            }
            Stmt::IncDec { target, delta } => {
                LStmt::IncDec { place: self.lower_place(target)?, delta: *delta }
            }
            Stmt::Expr(expr) => self.lower_effect(expr)?,
            Stmt::If { cond, then_block, else_block } => LStmt::If {
                cond: self.lower_expr(cond)?,
                then_block: self.lower_block(then_block)?,
                else_block: self.lower_block(else_block)?,
            },
            Stmt::While { cond, body } => {
                LStmt::While { cond: self.lower_expr(cond)?, body: self.lower_block(body)? }
            }
            Stmt::DoWhile { body, cond } => {
                LStmt::DoWhile { body: self.lower_block(body)?, cond: self.lower_expr(cond)? }
            }
            Stmt::For { init, cond, step, body } => {
                self.push_scope();
                let init = init.as_ref().map(|s| self.lower_stmt(s)).transpose()?.map(Box::new);
                let cond = cond.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let step = step.as_ref().map(|s| self.lower_stmt(s)).transpose()?.map(Box::new);
                let body = self.lower_block(body)?;
                self.pop_scope();
                LStmt::For { init, cond, step, body }
            }
            Stmt::Switch { scrutinee, cases, default } => LStmt::Switch {
                scrutinee: self.lower_expr(scrutinee)?,
                cases: cases.iter().map(|(v, b)| Ok((*v, self.lower_block(b)?))).collect::<Result<
                    Vec<_>,
                    SimError,
                >>(
                )?,
                default: default.as_ref().map(|b| self.lower_block(b)).transpose()?,
            },
            Stmt::Break => LStmt::Break,
            Stmt::Continue => LStmt::Continue,
            Stmt::Block(b) => LStmt::Block(self.lower_block(b)?),
        })
    }

    /// Statement-position expressions: invocations and intrinsics.
    fn lower_effect(&mut self, expr: &Expr) -> Result<LStmt, SimError> {
        let operation = self.model.operation(self.op);
        match expr {
            Expr::Name(id) => {
                if let Some(g) = operation.group_index(&id.name) {
                    return Ok(LStmt::InvokeGroup(g as u16));
                }
                if let Some(target) = self.model.operation_by_name(&id.name) {
                    return Ok(LStmt::InvokeOp(target.id));
                }
                Ok(LStmt::EvalDrop(self.lower_expr(expr)?))
            }
            Expr::Call(call) => {
                if let Some(pipe_op) = self.lower_intrinsic(call)? {
                    return Ok(LStmt::Intrinsic(pipe_op));
                }
                if call.path.len() == 1 {
                    let name = &call.path[0].name;
                    if Builtin::from_name(name).is_some() {
                        return Ok(LStmt::EvalDrop(self.lower_expr(expr)?));
                    }
                    if let Some(g) = operation.group_index(name) {
                        return Ok(LStmt::InvokeGroup(g as u16));
                    }
                    if let Some(target) = self.model.operation_by_name(name) {
                        return Ok(LStmt::InvokeOp(target.id));
                    }
                }
                Ok(LStmt::EvalDrop(self.lower_expr(expr)?))
            }
            _ => Ok(LStmt::EvalDrop(self.lower_expr(expr)?)),
        }
    }

    fn lower_intrinsic(&mut self, call: &Call) -> Result<Option<PipeOp>, SimError> {
        let Some(first) = call.path.first() else { return Ok(None) };
        let Some(pipeline) = self.model.pipelines().iter().find(|p| p.name == first.name) else {
            return Ok(None);
        };
        let path_str = || call.path.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(".");
        let op = match call.path.len() {
            2 => match call.path[1].name.as_str() {
                "shift" => PipeOp::Shift(pipeline.id),
                "stall" => PipeOp::Stall(pipeline.id, pipeline.depth().saturating_sub(1)),
                "flush" => PipeOp::Flush(pipeline.id, None),
                _ => return Err(SimError::UnknownPipeline { path: path_str() }),
            },
            3 => {
                let sidx = pipeline
                    .stage_index(&call.path[1].name)
                    .ok_or_else(|| SimError::UnknownPipeline { path: path_str() })?;
                match call.path[2].name.as_str() {
                    "stall" => PipeOp::Stall(pipeline.id, sidx),
                    "flush" => PipeOp::Flush(pipeline.id, Some(sidx)),
                    _ => return Err(SimError::UnknownPipeline { path: path_str() }),
                }
            }
            _ => return Err(SimError::UnknownPipeline { path: path_str() }),
        };
        Ok(Some(op))
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<LExpr, SimError> {
        let operation = self.model.operation(self.op);
        Ok(match expr {
            Expr::Int(v, _) => LExpr::Const(*v),
            Expr::Name(id) => {
                if let Some(slot) = self.local(&id.name) {
                    LExpr::Local(slot)
                } else if let Some(l) = operation.label_index(&id.name) {
                    LExpr::Label(l as u16)
                } else if let Some(g) = operation.group_index(&id.name) {
                    LExpr::GroupValue(g as u16)
                } else if let Some(res) = self.model.resource_by_name(&id.name) {
                    LExpr::ResScalar(res.id)
                } else if let Some(target) = self.model.operation_by_name(&id.name) {
                    LExpr::OpRefValue(target.id)
                } else {
                    return Err(self.unknown(&id.name));
                }
            }
            Expr::Index { .. } => {
                let (res, indices) = self.lower_indexed(expr)?;
                LExpr::ResElem { res, indices }
            }
            Expr::Unary { op, expr } => {
                LExpr::Unary { op: *op, expr: Box::new(self.lower_expr(expr)?) }
            }
            Expr::Binary { op, lhs, rhs } => LExpr::Binary {
                op: *op,
                lhs: Box::new(self.lower_expr(lhs)?),
                rhs: Box::new(self.lower_expr(rhs)?),
            },
            Expr::Ternary { cond, then_expr, else_expr } => LExpr::Ternary {
                cond: Box::new(self.lower_expr(cond)?),
                then_expr: Box::new(self.lower_expr(then_expr)?),
                else_expr: Box::new(self.lower_expr(else_expr)?),
            },
            Expr::Call(call) => {
                if call.path.len() == 1 {
                    let name = &call.path[0].name;
                    if let Some((f, expected)) = Builtin::from_name(name) {
                        if call.args.len() != expected {
                            return Err(SimError::BadArity {
                                builtin: name.clone(),
                                got: call.args.len(),
                                expected,
                            });
                        }
                        let args = call
                            .args
                            .iter()
                            .map(|a| self.lower_expr(a))
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(LExpr::Builtin { f, args });
                    }
                    if let Some(g) = operation.group_index(name) {
                        return Ok(LExpr::GroupValue(g as u16));
                    }
                    if let Some(target) = self.model.operation_by_name(name) {
                        return Ok(LExpr::OpRefValue(target.id));
                    }
                }
                return Err(SimError::UnknownCall {
                    path: call.path.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join("."),
                    operation: operation.name.clone(),
                });
            }
        })
    }

    fn lower_indexed(&mut self, expr: &Expr) -> Result<(ResourceId, Vec<LExpr>), SimError> {
        let mut indices_rev = Vec::new();
        let mut cur = expr;
        loop {
            match cur {
                Expr::Index { base, index } => {
                    indices_rev.push(self.lower_expr(index)?);
                    cur = base;
                }
                Expr::Name(id) => {
                    let res = self
                        .model
                        .resource_by_name(&id.name)
                        .ok_or_else(|| self.unknown(&id.name))?;
                    indices_rev.reverse();
                    return Ok((res.id, indices_rev));
                }
                _ => {
                    return Err(SimError::NotAnLvalue {
                        operation: self.model.operation(self.op).name.clone(),
                    });
                }
            }
        }
    }

    fn lower_place(&mut self, expr: &Expr) -> Result<LPlace, SimError> {
        let operation = self.model.operation(self.op);
        Ok(match expr {
            Expr::Name(id) => {
                if let Some(slot) = self.local(&id.name) {
                    LPlace::Local(slot)
                } else if let Some(g) = operation.group_index(&id.name) {
                    LPlace::Group(g as u16)
                } else if let Some(res) = self.model.resource_by_name(&id.name) {
                    LPlace::Res { res: res.id, indices: Vec::new() }
                } else if let Some(target) = self.model.operation_by_name(&id.name) {
                    LPlace::OpRef(target.id)
                } else {
                    return Err(self.unknown(&id.name));
                }
            }
            Expr::Index { .. } => {
                let (res, indices) = self.lower_indexed(expr)?;
                LPlace::Res { res, indices }
            }
            _ => {
                return Err(SimError::NotAnLvalue { operation: operation.name.clone() });
            }
        })
    }
}

fn width_of(ty: DataType) -> u32 {
    ty.width().min(64)
}

// ---------------------------------------------------------------------------
// Execution of lowered code
// ---------------------------------------------------------------------------

/// Local-variable slots: behaviors with up to 16 locals (all bundled
/// models) run allocation-free.
pub(crate) enum LocalSlots {
    Inline([i64; 16]),
    Heap(Vec<i64>),
}

impl LocalSlots {
    #[inline]
    pub(crate) fn new(n: usize) -> LocalSlots {
        if n <= 16 {
            LocalSlots::Inline([0; 16])
        } else {
            LocalSlots::Heap(vec![0; n])
        }
    }

    #[inline]
    pub(crate) fn get(&self, slot: u16) -> i64 {
        match self {
            LocalSlots::Inline(a) => a[slot as usize],
            LocalSlots::Heap(v) => v[slot as usize],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, slot: u16, value: i64) {
        match self {
            LocalSlots::Inline(a) => a[slot as usize] = value,
            LocalSlots::Heap(v) => v[slot as usize] = value,
        }
    }
}

/// Runtime frame for lowered code: slot-addressed locals only.
struct LFrame<'d> {
    decoded: Option<&'d Decoded>,
    op: OpId,
    #[allow(dead_code)] // kept for diagnostics
    variant: usize,
    locals: LocalSlots,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

/// A resolved place at run time.
#[derive(Debug, Clone, Copy)]
enum RPlace {
    Local(u16),
    Flat { res: ResourceId, flat: usize },
}

impl Simulator<'_> {
    /// Executes an operation's BEHAVIOR using the lowered tables.
    pub(crate) fn exec_behavior_compiled(
        &mut self,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
    ) -> Result<(), SimError> {
        // One `Arc` bump per behavior call decouples the tables' lifetime
        // from `&mut self`; everything below threads a plain reference, so
        // operand and child-expression accesses stay clone-free.
        let tables =
            std::sync::Arc::clone(self.compiled.as_ref().expect("compiled mode has tables"));
        let idx = tables.slot(op, variant);
        let Some(block) = tables.behaviors[idx].as_ref() else {
            return Ok(());
        };
        let n_locals = tables.locals_count[idx] as usize;
        let mut frame = LFrame { decoded, op, variant, locals: LocalSlots::new(n_locals) };
        self.run_lblock(&tables, block, &mut frame)?;
        Ok(())
    }

    fn run_lblock(
        &mut self,
        tables: &CompiledTables,
        block: &LBlock,
        frame: &mut LFrame<'_>,
    ) -> Result<Flow, SimError> {
        for stmt in &block.stmts {
            match self.run_lstmt(tables, stmt, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_lstmt(
        &mut self,
        tables: &CompiledTables,
        stmt: &LStmt,
        frame: &mut LFrame<'_>,
    ) -> Result<Flow, SimError> {
        match stmt {
            LStmt::DeclLocal { slot, init, width, signed } => {
                let mut value = match init {
                    Some(e) => self.eval_lexpr(tables, e, frame)?,
                    None => 0,
                };
                if *width < 64 {
                    let wrapped = lisa_bits::Bits::from_i128_wrapped(*width, i128::from(value));
                    value =
                        if *signed { wrapped.to_i128() as i64 } else { wrapped.to_u128() as i64 };
                }
                frame.locals.set(*slot, value);
                Ok(Flow::Normal)
            }
            LStmt::Assign { place, op, value } => {
                let rhs = self.eval_lexpr(tables, value, frame)?;
                let rplace = self.resolve_place(tables, place, frame)?;
                let new = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let old = self.read_rplace(rplace, frame)?;
                        apply_compound(*op, old, rhs).map_err(|_| SimError::DivisionByZero {
                            operation: self.model.operation(frame.op).name.clone(),
                        })?
                    }
                };
                self.write_rplace(rplace, new, frame)?;
                Ok(Flow::Normal)
            }
            LStmt::IncDec { place, delta } => {
                let rplace = self.resolve_place(tables, place, frame)?;
                let old = self.read_rplace(rplace, frame)?;
                self.write_rplace(rplace, old.wrapping_add(*delta), frame)?;
                Ok(Flow::Normal)
            }
            LStmt::InvokeGroup(g) => {
                let child = frame
                    .decoded
                    .and_then(|d| d.group_child(self.model, *g as usize))
                    .ok_or_else(|| {
                        let operation = self.model.operation(frame.op);
                        SimError::UnboundGroup {
                            group: operation.groups[*g as usize].name.clone(),
                            operation: operation.name.clone(),
                        }
                    })?;
                self.invoke_decoded(child)?;
                Ok(Flow::Normal)
            }
            LStmt::InvokeOp(target) => {
                let bound = frame.decoded.and_then(|d| {
                    let coding =
                        self.model.operation(frame.op).variants.get(d.variant)?.coding.as_ref()?;
                    coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
                        (CodingTarget::Op(o), Some(c)) if o == target => Some(&**c),
                        _ => None,
                    })
                });
                match bound {
                    Some(child) => self.invoke_decoded(child)?,
                    None => self.invoke_unbound(*target)?,
                }
                Ok(Flow::Normal)
            }
            LStmt::Intrinsic(op) => {
                self.apply_pipe_op(*op);
                Ok(Flow::Normal)
            }
            LStmt::EvalDrop(e) => {
                self.eval_lexpr(tables, e, frame)?;
                Ok(Flow::Normal)
            }
            LStmt::If { cond, then_block, else_block } => {
                if self.eval_lexpr(tables, cond, frame)? != 0 {
                    self.run_lblock(tables, then_block, frame)
                } else {
                    self.run_lblock(tables, else_block, frame)
                }
            }
            LStmt::While { cond, body } => {
                while self.eval_lexpr(tables, cond, frame)? != 0 {
                    if self.run_lblock(tables, body, frame)? == Flow::Break {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::DoWhile { body, cond } => {
                loop {
                    if self.run_lblock(tables, body, frame)? == Flow::Break {
                        break;
                    }
                    if self.eval_lexpr(tables, cond, frame)? == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::For { init, cond, step, body } => {
                if let Some(init) = init {
                    self.run_lstmt(tables, init, frame)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if self.eval_lexpr(tables, cond, frame)? == 0 {
                            break;
                        }
                    }
                    if self.run_lblock(tables, body, frame)? == Flow::Break {
                        break;
                    }
                    if let Some(step) = step {
                        self.run_lstmt(tables, step, frame)?;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::Switch { scrutinee, cases, default } => {
                let value = self.eval_lexpr(tables, scrutinee, frame)?;
                let body =
                    cases.iter().find(|(v, _)| *v == value).map(|(_, b)| b).or(default.as_ref());
                match body {
                    Some(block) => match self.run_lblock(tables, block, frame)? {
                        Flow::Break => Ok(Flow::Normal),
                        other => Ok(other),
                    },
                    None => Ok(Flow::Normal),
                }
            }
            LStmt::Break => Ok(Flow::Break),
            LStmt::Continue => Ok(Flow::Continue),
            LStmt::Block(b) => self.run_lblock(tables, b, frame),
        }
    }

    pub(crate) fn apply_pipe_op(&mut self, op: PipeOp) {
        // Same control logic (and same trace events / stall accounting)
        // as the interpretive intrinsic path — lowering only resolves
        // the names earlier.
        match op {
            PipeOp::Shift(pid) => self.pipe_shift(pid),
            PipeOp::Stall(pid, upto) => self.pipe_stall(pid, upto),
            PipeOp::Flush(pid, upto) => self.pipe_flush(pid, upto),
        }
    }

    fn eval_lexpr(
        &mut self,
        tables: &CompiledTables,
        expr: &LExpr,
        frame: &mut LFrame<'_>,
    ) -> Result<i64, SimError> {
        Ok(match expr {
            LExpr::Const(v) => *v,
            LExpr::Local(slot) => frame.locals.get(*slot),
            LExpr::Label(l) => {
                frame.decoded.map(|d| d.labels.get(*l as usize).copied().unwrap_or(0)).unwrap_or(0)
                    as i64
            }
            LExpr::ResScalar(res) => {
                let value = self.state.read_flat(*res, 0).unwrap_or(0);
                self.probe_read(*res, 0);
                value
            }
            LExpr::ResElem { res, indices } => {
                let flat = self.flat_of(tables, *res, indices, frame)?;
                let value =
                    self.state.read_flat(*res, flat).ok_or_else(|| SimError::IndexOutOfBounds {
                        resource: self.model.resource(*res).name.clone(),
                        index: flat as i64,
                        dim: 0,
                    })?;
                self.probe_read(*res, flat);
                value
            }
            LExpr::GroupValue(g) => {
                let child = frame
                    .decoded
                    .and_then(|d| d.group_child(self.model, *g as usize))
                    .ok_or_else(|| {
                        let operation = self.model.operation(frame.op);
                        SimError::UnboundGroup {
                            group: operation.groups[*g as usize].name.clone(),
                            operation: operation.name.clone(),
                        }
                    })?;
                self.eval_child_expression(tables, child)?
            }
            LExpr::OpRefValue(target) => {
                let child = frame
                    .decoded
                    .and_then(|d| {
                        let coding = self
                            .model
                            .operation(frame.op)
                            .variants
                            .get(d.variant)?
                            .coding
                            .as_ref()?;
                        coding.fields.iter().zip(&d.children).find_map(|(f, c)| {
                            match (&f.target, c) {
                                (CodingTarget::Op(o), Some(c)) if o == target => Some(&**c),
                                _ => None,
                            }
                        })
                    })
                    .ok_or_else(|| SimError::UnboundGroup {
                        group: self.model.operation(*target).name.clone(),
                        operation: self.model.operation(frame.op).name.clone(),
                    })?;
                self.eval_child_expression(tables, child)?
            }
            LExpr::Unary { op, expr } => {
                let v = self.eval_lexpr(tables, expr, frame)?;
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                }
            }
            LExpr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::LogAnd => {
                        let l = self.eval_lexpr(tables, lhs, frame)?;
                        if l == 0 {
                            return Ok(0);
                        }
                        return Ok(i64::from(self.eval_lexpr(tables, rhs, frame)? != 0));
                    }
                    BinOp::LogOr => {
                        let l = self.eval_lexpr(tables, lhs, frame)?;
                        if l != 0 {
                            return Ok(1);
                        }
                        return Ok(i64::from(self.eval_lexpr(tables, rhs, frame)? != 0));
                    }
                    _ => {}
                }
                let l = self.eval_lexpr(tables, lhs, frame)?;
                let r = self.eval_lexpr(tables, rhs, frame)?;
                apply_binop(*op, l, r).map_err(|_| SimError::DivisionByZero {
                    operation: self.model.operation(frame.op).name.clone(),
                })?
            }
            LExpr::Ternary { cond, then_expr, else_expr } => {
                if self.eval_lexpr(tables, cond, frame)? != 0 {
                    self.eval_lexpr(tables, then_expr, frame)?
                } else {
                    self.eval_lexpr(tables, else_expr, frame)?
                }
            }
            LExpr::Builtin { f, args } => {
                let mut vals = [0i64; 2];
                for (i, a) in args.iter().enumerate().take(2) {
                    vals[i] = self.eval_lexpr(tables, a, frame)?;
                }
                match f {
                    Builtin::Sext => {
                        let w = vals[1].clamp(1, 64) as u32;
                        lisa_bits::Bits::from_i128_wrapped(w, i128::from(vals[0])).to_i128() as i64
                    }
                    Builtin::Zext => {
                        let w = vals[1].clamp(1, 64) as u32;
                        lisa_bits::Bits::from_i128_wrapped(w, i128::from(vals[0])).to_u128() as i64
                    }
                    Builtin::Saturate => saturate(vals[0], vals[1].clamp(1, 64) as u32),
                    Builtin::Abs => vals[0].wrapping_abs(),
                    Builtin::Min => vals[0].min(vals[1]),
                    Builtin::Max => vals[0].max(vals[1]),
                    Builtin::Norm => {
                        let w = vals[1].clamp(1, 64) as u32;
                        i64::from(lisa_bits::Bits::from_i128_wrapped(w, i128::from(vals[0])).norm())
                    }
                    Builtin::Print => {
                        let v = vals[0];
                        if self.observing() {
                            let event = lisa_trace::TraceEvent::Print {
                                cycle: self.stats.cycles,
                                op: frame.op,
                                value: v,
                            };
                            self.emit(event);
                        }
                        v
                    }
                    Builtin::Nop => 0,
                }
            }
        })
    }

    /// Evaluates an operand child's lowered EXPRESSION (falling back to
    /// its sole label for immediates).
    fn eval_child_expression(
        &mut self,
        tables: &CompiledTables,
        child: &Decoded,
    ) -> Result<i64, SimError> {
        let idx = tables.slot(child.op, child.variant);
        match tables.expressions[idx].as_ref() {
            Some(expr) => {
                let n_locals = tables.locals_count[idx] as usize;
                let mut child_frame = LFrame {
                    decoded: Some(child),
                    op: child.op,
                    variant: child.variant,
                    locals: LocalSlots::new(n_locals),
                };
                self.eval_lexpr(tables, expr, &mut child_frame)
            }
            None => {
                let operation = self.model.operation(child.op);
                if operation.labels.len() == 1 {
                    Ok(child.labels[0] as i64)
                } else {
                    Err(SimError::UnknownName {
                        name: format!("<expression of {}>", operation.name),
                        operation: operation.name.clone(),
                    })
                }
            }
        }
    }

    fn flat_of(
        &mut self,
        tables: &CompiledTables,
        res: ResourceId,
        indices: &[LExpr],
        frame: &mut LFrame<'_>,
    ) -> Result<usize, SimError> {
        // Stack-allocated fast path: all bundled models use at most two
        // dimensions; the cycle loop must not allocate per access.
        let mut buf = [0i64; 4];
        if indices.len() <= 4 {
            for (i, e) in indices.iter().enumerate() {
                buf[i] = self.eval_lexpr(tables, e, frame)?;
            }
            return self.state.flatten_indices(self.model.resource(res), &buf[..indices.len()]);
        }
        let mut vals = Vec::with_capacity(indices.len());
        for e in indices {
            vals.push(self.eval_lexpr(tables, e, frame)?);
        }
        self.state.flatten_indices(self.model.resource(res), &vals)
    }

    fn resolve_place(
        &mut self,
        tables: &CompiledTables,
        place: &LPlace,
        frame: &mut LFrame<'_>,
    ) -> Result<RPlace, SimError> {
        Ok(match place {
            LPlace::Local(slot) => RPlace::Local(*slot),
            LPlace::Res { res, indices } => {
                let flat = self.flat_of(tables, *res, indices, frame)?;
                RPlace::Flat { res: *res, flat }
            }
            LPlace::Group(g) => {
                let child = frame
                    .decoded
                    .and_then(|d| d.group_child(self.model, *g as usize))
                    .ok_or_else(|| {
                        let operation = self.model.operation(frame.op);
                        SimError::UnboundGroup {
                            group: operation.groups[*g as usize].name.clone(),
                            operation: operation.name.clone(),
                        }
                    })?;
                self.child_place(tables, child)?
            }
            LPlace::OpRef(target) => {
                let child = frame
                    .decoded
                    .and_then(|d| {
                        let coding = self
                            .model
                            .operation(frame.op)
                            .variants
                            .get(d.variant)?
                            .coding
                            .as_ref()?;
                        coding.fields.iter().zip(&d.children).find_map(|(f, c)| {
                            match (&f.target, c) {
                                (CodingTarget::Op(o), Some(c)) if o == target => Some(&**c),
                                _ => None,
                            }
                        })
                    })
                    .ok_or_else(|| SimError::NotAnLvalue {
                        operation: self.model.operation(frame.op).name.clone(),
                    })?;
                self.child_place(tables, child)?
            }
        })
    }

    /// Resolves an operand child's lowered EXPRESSION as a place.
    fn child_place(
        &mut self,
        tables: &CompiledTables,
        child: &Decoded,
    ) -> Result<RPlace, SimError> {
        let idx = tables.slot(child.op, child.variant);
        let place = tables.expr_places[idx].as_ref().ok_or_else(|| SimError::NotAnLvalue {
            operation: self.model.operation(child.op).name.clone(),
        })?;
        let n_locals = tables.locals_count[idx] as usize;
        let mut child_frame = LFrame {
            decoded: Some(child),
            op: child.op,
            variant: child.variant,
            locals: LocalSlots::new(n_locals),
        };
        match self.resolve_place(tables, place, &mut child_frame)? {
            RPlace::Flat { res, flat } => Ok(RPlace::Flat { res, flat }),
            RPlace::Local(_) => Err(SimError::NotAnLvalue {
                operation: self.model.operation(child.op).name.clone(),
            }),
        }
    }

    fn read_rplace(&mut self, place: RPlace, frame: &LFrame<'_>) -> Result<i64, SimError> {
        match place {
            RPlace::Local(slot) => Ok(frame.locals.get(slot)),
            RPlace::Flat { res, flat } => {
                let value =
                    self.state.read_flat(res, flat).ok_or_else(|| SimError::IndexOutOfBounds {
                        resource: self.model.resource(res).name.clone(),
                        index: flat as i64,
                        dim: 0,
                    })?;
                self.probe_read(res, flat);
                Ok(value)
            }
        }
    }

    fn write_rplace(
        &mut self,
        place: RPlace,
        value: i64,
        frame: &mut LFrame<'_>,
    ) -> Result<(), SimError> {
        match place {
            RPlace::Local(slot) => {
                frame.locals.set(slot, value);
                Ok(())
            }
            RPlace::Flat { res, flat } => {
                if self.observing() {
                    self.emit_write(res, flat, value);
                }
                if self.state.write_flat(res, flat, value) {
                    Ok(())
                } else {
                    Err(SimError::IndexOutOfBounds {
                        resource: self.model.resource(res).name.clone(),
                        index: flat as i64,
                        dim: 0,
                    })
                }
            }
        }
    }
}

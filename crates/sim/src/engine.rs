//! The generic pipeline engine and control-step loop.
//!
//! LISA "assumes all operations to be executed synchronously to control
//! steps" (paper §3.2.3). Each control step the engine:
//!
//! 1. executes the `main` operation (the cycle driver, paper Example 5),
//! 2. executes every pending activation whose delay reached zero, in
//!    activation (FIFO) order,
//! 3. advances non-pipelined delayed activations by one control step.
//!
//! Pipelined activations advance only when their pipeline **shifts**
//! (`pipe.shift()`), are held by **stalls** (`pipe.stall()`,
//! `pipe.stage.stall()` — holds the stages up to and including the named
//! stage), and are discarded by **flushes** (`pipe.flush()`,
//! `pipe.stage.flush()`). The activation delay of an operation equals its
//! *spatial distance* in the pipeline (stage index difference) plus one
//! per `;` separator in the `ACTIVATION` list.

use std::sync::Arc;

use lisa_bits::Bits;
use lisa_core::model::{Model, OpId, PipelineId, ResourceId};
use lisa_isa::{Decoded, Decoder};
use lisa_probe::{ArchProfile, ProbeRuntime, ProbeSet};
use lisa_spans::{SpanKind, SpanScope};
use lisa_trace::{CollectingSink, NameTable, Profile, TraceEvent, TraceSink};

use crate::compiled::CompiledTables;
use crate::fasthash::FastMap;
use crate::{SimError, SimStats, State};

/// An operation instance scheduled for execution: the operation plus its
/// operand binding (the decoded subtree), if any.
#[derive(Debug, Clone)]
pub(crate) struct ExecItem {
    pub op: OpId,
    pub decoded: Option<Arc<Decoded>>,
    /// Pre-translated routine for ops-mode activation targets — skips
    /// the instance-cache probe when the item matures. Always `None` in
    /// the tree-walking modes.
    pub routine: Option<Arc<crate::ops::OpsRoutine>>,
}

/// A delayed activation waiting in the schedule.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub item: ExecItem,
    /// Target pipeline and stage when the operation is pipelined.
    pub pipe: Option<(PipelineId, usize)>,
    /// Shifts (pipelined) or control steps (non-pipelined) to go.
    pub remaining: u32,
    /// FIFO tiebreaker.
    pub seq: u64,
}

/// Per-pipeline per-step control state.
#[derive(Debug, Clone, Default)]
pub(crate) struct PipeState {
    /// Stages `0..=stall_upto` are held this control step.
    pub stall_upto: Option<usize>,
}

/// Observability state, boxed behind one `Option` so the cycle path pays
/// a single branch when neither tracing, profiling nor probing is on.
pub(crate) struct Observer {
    /// Owned snapshot of the model's names, for rendering and profiling.
    pub names: NameTable,
    /// Event consumer, when tracing is enabled.
    pub sink: Option<Box<dyn TraceSink>>,
    /// In-progress profile, when profiling is enabled.
    pub profile: Option<Profile>,
    /// Cycle counter value when profiling was (re)started.
    pub profile_start: u64,
    /// Architectural probes (watchpoints, PC probes, arch profiling),
    /// when installed. The runtime consumes the same event stream the
    /// sink and profile see, so probe semantics are backend-independent.
    pub probes: Option<Box<ProbeRuntime>>,
    /// Cycle counter value when architecture profiling was enabled.
    pub arch_start: u64,
}

/// Why [`Simulator::run_until`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The halt predicate returned true.
    Halted,
    /// A `break` probe matched a program-counter write.
    Breakpoint {
        /// The matching probe's compiled id.
        probe: u16,
        /// The program-counter value that matched.
        pc: i64,
    },
}

/// A successful [`Simulator::run_until`]: how far it ran and why it
/// stopped. Exhausting the step budget is still the
/// [`SimError::StepLimit`] error, not an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Control steps executed by this call.
    pub cycles: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// Execution backend: the paper's two simulation techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Interpretive simulation: every decode-root execution re-decodes the
    /// instruction word, and behaviors are evaluated directly on the AST
    /// with name-based resolution.
    Interpretive,
    /// Compiled simulation (paper §3.3): instruction words are decoded at
    /// most once (pre-decoded from program memory or memoised) and
    /// behaviors run as pre-lowered, slot-resolved code.
    Compiled,
    /// Threaded micro-op simulation: on top of compiled mode's decode
    /// caching, every decoded instruction instance is translated at
    /// predecode time into flat, label-specialized micro-op code, so the
    /// cycle loop dispatches over a contiguous op array with zero name
    /// resolution or tree traversal.
    Ops,
}

/// A cycle-accurate simulator generated from a LISA model.
///
/// # Examples
///
/// ```
/// use lisa_core::Model;
/// use lisa_sim::{SimMode, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = Model::from_source(r#"
///     RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
///     OPERATION main {
///         BEHAVIOR { r0 = r0 + 2; pc = pc + 1; }
///     }
/// "#)?;
/// let mut sim = Simulator::new(&model, SimMode::Interpretive)?;
/// sim.run(10)?;
/// let r0 = model.resource_by_name("r0").expect("r0 exists");
/// assert_eq!(sim.state().read_int(r0, &[])?, 20);
/// assert_eq!(sim.stats().cycles, 10);
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'m> {
    pub(crate) model: &'m Model,
    pub(crate) decoder: Option<Decoder<'m>>,
    pub(crate) state: State,
    pub(crate) pipes: Vec<PipeState>,
    pub(crate) pending: Vec<Pending>,
    pub(crate) stats: SimStats,
    pub(crate) mode: SimMode,
    pub(crate) decode_cache: FastMap<u128, Arc<Decoded>>,
    pub(crate) compiled: Option<std::sync::Arc<CompiledTables>>,
    /// Translation caches for [`SimMode::Ops`] (`None` in other modes).
    pub(crate) ops: Option<Box<crate::ops::OpsTables>>,
    pub(crate) seq: u64,
    pub(crate) observer: Option<Box<Observer>>,
    pub(crate) pc_res: Option<ResourceId>,
    /// Stats values already exported by `publish_metrics`, so repeated
    /// publishes add only the delta accumulated in between.
    pub(crate) metrics_published: SimStats,
    /// Sink-dropped count already exported by `publish_metrics`.
    pub(crate) trace_dropped_published: u64,
    /// Wall-clock span context, when a caller attached one. `None` keeps
    /// the run loops on their unobserved fast path.
    pub(crate) spans: Option<SpanScope>,
    /// Reusable per-step ready list (capacity persists across steps).
    step_ready: Vec<ExecItem>,
    /// Reusable per-step matured-activation buffer.
    step_matured: Vec<Pending>,
    /// Reusable still-waiting buffer for the maturation partition.
    step_keep: Vec<Pending>,
}

impl std::fmt::Debug for Simulator<'_> {
    /// A concise summary (mode, cycle count, schedule depth) — the full
    /// architectural state is available through [`Simulator::state`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("mode", &self.mode)
            .field("cycles", &self.stats.cycles)
            .field("in_flight", &self.pending.len())
            .field("decode_cache", &self.decode_cache.len())
            .finish_non_exhaustive()
    }
}

impl<'m> Simulator<'m> {
    /// Creates a simulator over zeroed state.
    ///
    /// In [`SimMode::Compiled`], behaviors, expressions and activations
    /// are lowered to slot-resolved code up front (part of the paper's
    /// simulator-generation step).
    ///
    /// # Errors
    ///
    /// Propagates lowering errors for compiled mode (e.g. names that can
    /// never resolve).
    pub fn new(model: &'m Model, mode: SimMode) -> Result<Simulator<'m>, SimError> {
        let decoder = Decoder::new(model).ok();
        let compiled = match mode {
            SimMode::Interpretive => None,
            SimMode::Compiled | SimMode::Ops => {
                Some(std::sync::Arc::new(CompiledTables::lower(model)?))
            }
        };
        let state = State::new(model);
        let ops = match (mode, compiled.as_deref()) {
            (SimMode::Ops, Some(tables)) => {
                Some(Box::new(crate::ops::OpsTables::build(model, &state, tables)))
            }
            _ => None,
        };
        let pc_res = model
            .resources()
            .iter()
            .find(|r| r.class == lisa_core::ast::ResourceClass::ProgramCounter)
            .map(|r| r.id);
        Ok(Simulator {
            model,
            decoder,
            state,
            pipes: vec![PipeState::default(); model.pipelines().len()],
            pending: Vec::new(),
            stats: SimStats::default(),
            mode,
            decode_cache: FastMap::default(),
            compiled,
            ops,
            seq: 0,
            observer: None,
            pc_res,
            metrics_published: SimStats::default(),
            trace_dropped_published: 0,
            spans: None,
            step_ready: Vec::new(),
            step_matured: Vec::new(),
            step_keep: Vec::new(),
        })
    }

    /// The model being simulated.
    #[must_use]
    pub fn model(&self) -> &'m Model {
        self.model
    }

    /// The execution backend in use.
    #[must_use]
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Read access to the architectural state.
    #[must_use]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Mutable access to the architectural state (for loading programs and
    /// data).
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.state
    }

    /// Accumulated execution statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// An owned snapshot of the model's operation / resource / pipeline
    /// names, for rendering trace events and profiles.
    #[must_use]
    pub fn name_table(&self) -> NameTable {
        NameTable::of(self.model)
    }

    fn observer_mut(&mut self) -> &mut Observer {
        self.observer.get_or_insert_with(|| {
            Box::new(Observer {
                names: NameTable::of(self.model),
                sink: None,
                profile: None,
                profile_start: 0,
                probes: None,
                arch_start: 0,
            })
        })
    }

    /// Drops the observer box again when tracing, profiling and probing
    /// are all off, restoring the single-`None` fast path.
    fn shrink_observer(&mut self) {
        if self
            .observer
            .as_ref()
            .is_some_and(|o| o.sink.is_none() && o.profile.is_none() && o.probes.is_none())
        {
            self.observer = None;
        }
    }

    /// Enables or disables the execution trace.
    ///
    /// Enabling installs a [`CollectingSink`] unless a sink is already
    /// present; disabling removes the sink (events buffered in it are
    /// dropped) but leaves an active profile running.
    pub fn set_trace(&mut self, enabled: bool) {
        if enabled {
            let obs = self.observer_mut();
            if obs.sink.is_none() {
                obs.sink = Some(Box::new(CollectingSink::new()));
            }
        } else {
            if let Some(obs) = self.observer.as_mut() {
                obs.sink = None;
            }
            self.shrink_observer();
        }
    }

    /// Whether a trace sink is installed.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.observer.as_ref().is_some_and(|o| o.sink.is_some())
    }

    /// Routes events into `sink` instead of the default collecting sink
    /// (e.g. a [`lisa_trace::RingBufferSink`] or a streaming
    /// [`lisa_trace::JsonLinesSink`]).
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.observer_mut().sink = Some(sink);
    }

    /// Removes and returns the installed sink, disabling tracing.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let sink = self.observer.as_mut().and_then(|o| o.sink.take());
        self.shrink_observer();
        sink
    }

    /// Drains the buffered trace events from the installed sink (empty
    /// for streaming sinks, which keep no buffer). Tracing stays on.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.observer.as_mut().and_then(|o| o.sink.as_mut()).map_or_else(Vec::new, |s| s.drain())
    }

    /// Takes the accumulated trace as legacy formatted lines
    /// (`"[cycle] exec main"` …) — a thin formatter over
    /// [`Simulator::take_events`].
    pub fn take_trace(&mut self) -> Vec<String> {
        let Some(obs) = self.observer.as_mut() else { return Vec::new() };
        let Some(sink) = obs.sink.as_mut() else { return Vec::new() };
        sink.drain().iter().map(|e| obs.names.line(e)).collect()
    }

    /// Starts (or restarts) per-instruction profiling from this cycle.
    pub fn enable_profile(&mut self) {
        let cycles = self.stats.cycles;
        let obs = self.observer_mut();
        obs.profile = Some(Profile::new());
        obs.profile_start = cycles;
    }

    /// Stops profiling and returns the profile, with
    /// [`Profile::cycles`] set to the control steps covered since
    /// [`Simulator::enable_profile`]. `None` when profiling was off.
    pub fn take_profile(&mut self) -> Option<Profile> {
        let cycles = self.stats.cycles;
        let profile = self.observer.as_mut().and_then(|o| {
            let mut p = o.profile.take()?;
            p.cycles = cycles.saturating_sub(o.profile_start);
            Some(p)
        });
        self.shrink_observer();
        profile
    }

    /// Installs a compiled probe set (watchpoints, PC breakpoints and
    /// tracepoints). Matched watch/trace probes emit
    /// [`TraceEvent::ProbeHit`] into the trace stream; `break` probes
    /// additionally stop [`Simulator::run_until`] with
    /// [`StopReason::Breakpoint`]. Replaces any previously installed
    /// set (its hit counts are discarded).
    pub fn set_probes(&mut self, set: ProbeSet) {
        let obs = self.observer_mut();
        let arch = obs.probes.as_ref().is_some_and(|p| p.arch_enabled());
        let mut runtime = ProbeRuntime::new(set, &obs.names);
        if arch {
            runtime.enable_arch();
        }
        obs.probes = Some(Box::new(runtime));
    }

    /// Removes the installed probes (and any architecture profile they
    /// accumulated).
    pub fn clear_probes(&mut self) {
        if let Some(obs) = self.observer.as_mut() {
            obs.probes = None;
        }
        self.shrink_observer();
    }

    /// Whether a probe runtime is installed.
    #[must_use]
    pub fn probing(&self) -> bool {
        self.observer.as_ref().is_some_and(|o| o.probes.is_some())
    }

    /// Starts architecture profiling (utilization counters and memory
    /// heatmaps) from this cycle. Installs an empty probe set first if
    /// none is present, so profiling works without any probes.
    pub fn enable_arch_profile(&mut self) {
        let cycles = self.stats.cycles;
        let empty = ProbeSet::empty(self.model);
        let obs = self.observer_mut();
        let runtime =
            obs.probes.get_or_insert_with(|| Box::new(ProbeRuntime::new(empty, &obs.names)));
        runtime.enable_arch();
        obs.arch_start = cycles;
    }

    /// The architecture profile accumulated since
    /// [`Simulator::enable_arch_profile`], with [`ArchProfile::cycles`]
    /// set to the control steps covered. Non-destructive — probes stay
    /// installed and keep accumulating. `None` when arch profiling is
    /// off.
    #[must_use]
    pub fn arch_profile(&self) -> Option<ArchProfile> {
        let obs = self.observer.as_ref()?;
        let runtime = obs.probes.as_ref()?;
        if !runtime.arch_enabled() {
            return None;
        }
        Some(runtime.arch_profile(&obs.names, self.stats.cycles.saturating_sub(obs.arch_start)))
    }

    /// Total probe hits recorded since the probe set was installed.
    #[must_use]
    pub fn probe_hits(&self) -> u64 {
        self.observer.as_ref().and_then(|o| o.probes.as_ref()).map_or(0, |p| p.total_hits())
    }

    /// Per-probe hit report: `(label, hits)` in probe-id order.
    #[must_use]
    pub fn probe_report(&self) -> Vec<(String, u64)> {
        let Some(runtime) = self.observer.as_ref().and_then(|o| o.probes.as_ref()) else {
            return Vec::new();
        };
        runtime
            .probe_set()
            .labels()
            .iter()
            .enumerate()
            .map(|(i, label)| (label.clone(), runtime.hit_count(i as u16)))
            .collect()
    }

    /// Takes the latched breakpoint stop, if any.
    fn take_probe_stop(&mut self) -> Option<(u16, i64)> {
        self.observer.as_mut()?.probes.as_mut()?.take_stop()
    }

    /// Attaches a wall-clock span context: phase spans (predecode, cycle
    /// chunks, snapshot/restore) are recorded under `scope`'s parent.
    /// Pass `None` to detach; with no scope attached the run loops keep
    /// their unobserved fast path.
    pub fn set_spans(&mut self, scope: Option<SpanScope>) {
        self.spans = scope;
    }

    /// The attached span context, if any.
    #[must_use]
    pub fn spans(&self) -> Option<&SpanScope> {
        self.spans.as_ref()
    }

    /// One branch on the cycle path: anything observing this simulator?
    #[inline]
    pub(crate) fn observing(&self) -> bool {
        self.observer.is_some()
    }

    /// Routes an event to the profile, sink and probe runtime. Callers
    /// guard with [`Simulator::observing`] so event construction itself
    /// is skipped when observability is off. Probe hits triggered by
    /// the event are appended to the same stream, directly after it.
    pub(crate) fn emit(&mut self, event: TraceEvent) {
        if let Some(obs) = self.observer.as_mut() {
            let Observer { names, sink, profile, probes, .. } = obs.as_mut();
            if let Some(profile) = profile.as_mut() {
                profile.record(names, &event);
            }
            if let Some(sink) = sink.as_mut() {
                sink.record(&event);
            }
            if let Some(runtime) = probes.as_mut() {
                runtime.observe(&event, |hit| {
                    if let Some(profile) = profile.as_mut() {
                        profile.record(names, &hit);
                    }
                    if let Some(sink) = sink.as_mut() {
                        sink.record(&hit);
                    }
                });
            }
        }
    }

    /// Feeds a behavior-level resource read to the probe runtime's
    /// memory heatmaps. One `Option` chain when probes are off; the
    /// backends call this from their read funnels so read heat is
    /// accumulated identically in all three modes.
    #[inline]
    pub(crate) fn probe_read(&mut self, res: ResourceId, flat: usize) {
        if let Some(runtime) = self.observer.as_mut().and_then(|o| o.probes.as_mut()) {
            runtime.observe_read(res.0, flat as u64);
        }
    }

    /// The current program-counter value (`-1` when the model declares
    /// no `PROGRAM_COUNTER` resource).
    pub(crate) fn current_pc(&self) -> i64 {
        self.pc_res.and_then(|r| self.state.read_flat(r, 0)).unwrap_or(-1)
    }

    /// Emits the right write event for a resource's class.
    pub(crate) fn emit_write(&mut self, res: ResourceId, flat: usize, value: i64) {
        use lisa_core::ast::ResourceClass;
        let class = self.model.resource(res).class;
        let cycle = self.stats.cycles;
        let event = match class {
            ResourceClass::DataMemory | ResourceClass::ProgramMemory => {
                TraceEvent::MemoryAccess { cycle, resource: res, addr: flat as u64, value }
            }
            _ => TraceEvent::RegisterWrite { cycle, resource: res, addr: flat as u64, value },
        };
        self.emit(event);
    }

    /// Emits an [`TraceEvent::Exec`] for an operation invoked outside
    /// the scheduler (behavior-level invocation).
    pub(crate) fn emit_exec(&mut self, op: OpId) {
        let event = TraceEvent::Exec {
            cycle: self.stats.cycles,
            op,
            stage: self.model.operation(op).stage.map(|(p, s)| (p, s as u16)),
            pc: self.current_pc(),
        };
        self.emit(event);
    }

    /// Pre-decodes every word of all `PROGRAM_MEMORY` resources into the
    /// decode cache — the translate-time part of compiled simulation.
    /// Words that do not decode are skipped (data in program memory).
    ///
    /// Returns the number of distinct words pre-decoded.
    pub fn predecode_program_memory(&mut self) -> usize {
        use lisa_core::ast::ResourceClass;
        let _span = self.spans.as_ref().map(|s| s.start(SpanKind::Predecode));
        let Some(decoder) = &self.decoder else { return 0 };
        let mut added = 0;
        for res in self.model.resources() {
            if res.class != ResourceClass::ProgramMemory {
                continue;
            }
            for flat in 0..self.state.element_count(res.id) {
                let Some(raw) = self.state.read_flat(res.id, flat) else { continue };
                let word = raw as u64 as u128;
                if self.decode_cache.contains_key(&word) {
                    continue;
                }
                if let Ok(decoded) = decoder.decode(word) {
                    self.decode_cache.insert(word, Arc::new(decoded));
                    added += 1;
                }
            }
        }
        // Ops mode pays the translate cost here too, so the cycle loop
        // starts with every program word lowered to micro-op code.
        self.ops_translate_decode_cache();
        added
    }

    /// Decodes an instruction word, through the cache in compiled mode.
    pub(crate) fn decode_word(&mut self, word: u128) -> Result<Arc<Decoded>, SimError> {
        self.stats.decodes += 1;
        let mut cache_hit = false;
        let decoded = match self.mode {
            SimMode::Compiled | SimMode::Ops => {
                if let Some(hit) = self.decode_cache.get(&word) {
                    self.stats.decode_cache_hits += 1;
                    cache_hit = true;
                    Arc::clone(hit)
                } else {
                    let decoder = self
                        .decoder
                        .as_ref()
                        .ok_or(SimError::Decode(lisa_isa::IsaError::NoDecodeRoot))?;
                    let decoded = Arc::new(decoder.decode(word)?);
                    self.decode_cache.insert(word, Arc::clone(&decoded));
                    decoded
                }
            }
            SimMode::Interpretive => {
                let decoder = self
                    .decoder
                    .as_ref()
                    .ok_or(SimError::Decode(lisa_isa::IsaError::NoDecodeRoot))?;
                Arc::new(decoder.decode(word)?)
            }
        };
        if self.observing() {
            let event = TraceEvent::Decode {
                cycle: self.stats.cycles,
                pc: self.current_pc(),
                word,
                op: decoded.op,
                cache_hit,
            };
            self.emit(event);
        }
        Ok(decoded)
    }

    /// Executes one control step.
    ///
    /// # Errors
    ///
    /// Propagates behavior-evaluation errors ([`SimError`]); the step is
    /// partially applied when an error is returned.
    pub fn step(&mut self) -> Result<(), SimError> {
        for pipe in &mut self.pipes {
            pipe.stall_upto = None;
        }

        // Ready list: `main` first (the cycle driver), then matured
        // pendings in FIFO order. The buffers are owned by the simulator
        // so the steady-state cycle loop performs no allocation.
        let mut ready = std::mem::take(&mut self.step_ready);
        ready.clear();
        if let Some(main) = self.model.main_op() {
            ready.push(ExecItem { op: main, decoded: None, routine: None });
        }
        let mut matured = std::mem::take(&mut self.step_matured);
        matured.clear();
        // Partition by moving (no clones): matured items out, waiting
        // items back into `pending` in their original order.
        std::mem::swap(&mut self.pending, &mut self.step_keep);
        for p in self.step_keep.drain(..) {
            if p.remaining == 0 {
                matured.push(p);
            } else {
                self.pending.push(p);
            }
        }
        matured.sort_by_key(|p| p.seq);
        ready.extend(matured.drain(..).map(|p| p.item));
        self.step_matured = matured;

        let mut i = 0;
        let result = loop {
            if i >= ready.len() {
                break Ok(());
            }
            // Move the item out (Copy op id, `take` the binding) instead
            // of cloning: nothing re-reads a consumed slot.
            let item = ExecItem {
                op: ready[i].op,
                decoded: ready[i].decoded.take(),
                routine: ready[i].routine.take(),
            };
            i += 1;
            // A stalled stage holds its operation: re-queue for the next
            // control step instead of executing (`pipe.stage.stall()`
            // freezes that stage and everything upstream of it).
            if let Some((pid, stage)) = self.model.operation(item.op).stage {
                if self.pipes[pid.0].stall_upto.is_some_and(|s| stage <= s) {
                    self.seq += 1;
                    self.pending.push(Pending {
                        item,
                        pipe: Some((pid, stage)),
                        remaining: 0,
                        seq: self.seq,
                    });
                    continue;
                }
            }
            if let Err(e) = self.execute_item(&item, &mut ready) {
                break Err(e);
            }
        };
        self.step_ready = ready;
        result?;

        // Advance non-pipelined delayed activations; pipelined ones only
        // advance on `shift()`.
        for p in &mut self.pending {
            if p.pipe.is_none() && p.remaining > 0 {
                p.remaining -= 1;
            }
        }

        self.stats.cycles += 1;
        Ok(())
    }

    /// Control steps covered by one `cycle_chunk` span when a span
    /// context is attached — coarse enough that span recording never
    /// shows up next to per-step work.
    pub const SPAN_CHUNK_STEPS: u64 = 4096;

    /// Runs `steps` control steps.
    ///
    /// # Errors
    ///
    /// Stops at the first failing step.
    pub fn run(&mut self, steps: u64) -> Result<(), SimError> {
        if let Some(scope) = self.spans.clone() {
            let mut left = steps;
            while left > 0 {
                let chunk = left.min(Self::SPAN_CHUNK_STEPS);
                let _span = scope.start(SpanKind::CycleChunk);
                for _ in 0..chunk {
                    self.step()?;
                }
                left -= chunk;
            }
            return Ok(());
        }
        for _ in 0..steps {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until `halted` returns true or a `break` probe matches
    /// (both checked after each step), up to `max_steps`. The halt
    /// predicate wins when both trigger on the same step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimit`] if the budget is exhausted first.
    pub fn run_until(
        &mut self,
        mut halted: impl FnMut(&State) -> bool,
        max_steps: u64,
    ) -> Result<RunOutcome, SimError> {
        let start = self.stats.cycles;
        // A stop latched before this call (e.g. during a fixed-step
        // `run`, which ignores breakpoints) is stale — discard it.
        if self.observing() {
            self.take_probe_stop();
        }
        if let Some(scope) = self.spans.clone() {
            let mut done = 0;
            while done < max_steps {
                let chunk = (max_steps - done).min(Self::SPAN_CHUNK_STEPS);
                let _span = scope.start(SpanKind::CycleChunk);
                for _ in 0..chunk {
                    self.step()?;
                    done += 1;
                    if let Some(reason) = self.stop_reason(&mut halted) {
                        return Ok(RunOutcome { cycles: self.stats.cycles - start, reason });
                    }
                }
            }
            return Err(SimError::StepLimit { limit: max_steps });
        }
        for _ in 0..max_steps {
            self.step()?;
            if let Some(reason) = self.stop_reason(&mut halted) {
                return Ok(RunOutcome { cycles: self.stats.cycles - start, reason });
            }
        }
        Err(SimError::StepLimit { limit: max_steps })
    }

    /// Post-step stop check for [`Simulator::run_until`]: the halt
    /// predicate first (it wins ties and clears any latched stop), then
    /// breakpoints.
    #[inline]
    fn stop_reason(&mut self, halted: &mut impl FnMut(&State) -> bool) -> Option<StopReason> {
        if halted(&self.state) {
            if self.observing() {
                self.take_probe_stop();
            }
            return Some(StopReason::Halted);
        }
        if self.observing() {
            if let Some((probe, pc)) = self.take_probe_stop() {
                return Some(StopReason::Breakpoint { probe, pc });
            }
        }
        None
    }

    /// Executes one scheduled item: behavior, then activation.
    fn execute_item(&mut self, item: &ExecItem, ready: &mut Vec<ExecItem>) -> Result<(), SimError> {
        self.stats.executed_ops += 1;
        if self.mode == SimMode::Ops {
            return self.execute_item_ops(item, ready);
        }
        let operation = self.model.operation(item.op);

        // Decode-root operations fetch their binding from the compared
        // resource ("the coding sequences of all defined operations must be
        // compared to the actual value of the current instruction word").
        let decoded: Option<Arc<Decoded>> = match (&item.decoded, operation.decode_root) {
            (Some(d), _) => Some(Arc::clone(d)),
            (None, Some(root_res)) => {
                let word = self.state.scalar(root_res).to_u128();
                if self.observing() {
                    let event =
                        TraceEvent::Fetch { cycle: self.stats.cycles, pc: self.current_pc(), word };
                    self.emit(event);
                }
                Some(self.decode_word(word)?)
            }
            (None, None) => None,
        };

        let variant = match &decoded {
            Some(d) if d.op == item.op => d.variant,
            _ => {
                // No binding: select the default (guard-free) variant.
                let choices = vec![None; operation.groups.len()];
                operation.variants.iter().position(|v| v.matches(&choices)).unwrap_or(0)
            }
        };

        if self.observing() {
            let event = TraceEvent::Exec {
                cycle: self.stats.cycles,
                op: item.op,
                stage: operation.stage.map(|(p, s)| (p, s as u16)),
                pc: self.current_pc(),
            };
            self.emit(event);
        }

        match self.mode {
            SimMode::Interpretive => {
                self.exec_behavior_interp(item.op, variant, decoded.as_deref())?;
            }
            SimMode::Compiled => {
                self.exec_behavior_compiled(item.op, variant, decoded.as_deref())?;
            }
            SimMode::Ops => unreachable!("ops items route through execute_item_ops"),
        }

        self.run_activation(item.op, variant, decoded.as_deref(), ready)?;
        if operation.decode_root.is_some() {
            self.stats.instructions_retired += 1;
        }
        Ok(())
    }

    /// [`SimMode::Ops`] twin of `execute_item`: identical fetch/decode
    /// bookkeeping and event order, but the behavior runs as translated
    /// micro-op code resolved through the routine caches.
    fn execute_item_ops(
        &mut self,
        item: &ExecItem,
        ready: &mut Vec<ExecItem>,
    ) -> Result<(), SimError> {
        let operation = self.model.operation(item.op);
        let default_variant = || {
            let choices = vec![None; operation.groups.len()];
            operation.variants.iter().position(|v| v.matches(&choices)).unwrap_or(0)
        };
        let routine = match (&item.routine, &item.decoded, operation.decode_root) {
            // Activation targets resolved at translate time carry their
            // routine — no cache probe.
            (Some(r), _, _) => Arc::clone(r),
            (None, Some(d), _) => {
                if d.op == item.op {
                    self.ops_instance_routine(d)
                } else {
                    self.ops_uncached_routine(item.op, default_variant(), Some(d))
                }
            }
            (None, None, Some(root_res)) => {
                let word = self.state.scalar(root_res).to_u128();
                if self.observing() {
                    let event =
                        TraceEvent::Fetch { cycle: self.stats.cycles, pc: self.current_pc(), word };
                    self.emit(event);
                }
                let (d, routine) = self.ops_decode_word(word)?;
                if d.op == item.op {
                    routine
                } else {
                    self.ops_uncached_routine(item.op, default_variant(), Some(&d))
                }
            }
            (None, None, None) => self.ops_unbound_routine(item.op),
        };

        if self.observing() {
            let event = TraceEvent::Exec {
                cycle: self.stats.cycles,
                op: item.op,
                stage: operation.stage.map(|(p, s)| (p, s as u16)),
                pc: self.current_pc(),
            };
            self.emit(event);
        }

        self.run_ops(&routine)?;

        if let Some(plan) = routine.act.as_ref() {
            self.run_act_steps(plan, &plan.steps, &mut crate::ops::ActSink::Sched(ready))?;
        }
        if operation.decode_root.is_some() {
            self.stats.instructions_retired += 1;
        }
        Ok(())
    }

    /// Runs the ACTIVATION section of an operation (shared by both
    /// backends; condition expressions are evaluated interpretively — they
    /// are tiny and run against resources).
    fn run_activation(
        &mut self,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
        ready: &mut Vec<ExecItem>,
    ) -> Result<(), SimError> {
        let operation = self.model.operation(op);
        let Some(activation) = operation.variants[variant].activation.as_ref() else {
            return Ok(());
        };
        self.run_act_nodes(activation, op, variant, decoded, ready)
    }

    pub(crate) fn run_act_nodes(
        &mut self,
        nodes: &[lisa_core::ast::ActNode],
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
        ready: &mut Vec<ExecItem>,
    ) -> Result<(), SimError> {
        use lisa_core::ast::ActNode;
        for node in nodes {
            match node {
                ActNode::Activate { name, delay } => {
                    self.activate_name(&name.name, *delay, op, decoded, ready)?;
                }
                ActNode::Call { call, delay } => {
                    // Pipeline intrinsics act immediately regardless of
                    // delay 0 (stall/flush/shift are control operations);
                    // operation calls schedule like activations.
                    if self.try_pipe_intrinsic(call)? {
                        continue;
                    }
                    let target = call.path.first().map(|p| p.name.clone()).unwrap_or_default();
                    self.activate_name(&target, *delay, op, decoded, ready)?;
                }
                ActNode::If { cond, then_items, else_items, .. } => {
                    let value = self.eval_condition(cond, op, variant, decoded)?;
                    let branch = if value != 0 { then_items } else { else_items };
                    self.run_act_nodes(branch, op, variant, decoded, ready)?;
                }
                ActNode::Switch { scrutinee, cases, default, .. } => {
                    let value = self.eval_condition(scrutinee, op, variant, decoded)?;
                    let body =
                        cases.iter().find(|(v, _)| *v == value).map(|(_, b)| b).unwrap_or(default);
                    self.run_act_nodes(body, op, variant, decoded, ready)?;
                }
            }
        }
        Ok(())
    }

    /// Resolves an activation target name (group of the current operation,
    /// then operation by name) and schedules it.
    fn activate_name(
        &mut self,
        name: &str,
        extra_delay: u32,
        from_op: OpId,
        decoded: Option<&Decoded>,
        ready: &mut Vec<ExecItem>,
    ) -> Result<(), SimError> {
        let operation = self.model.operation(from_op);
        let item = if let Some(gidx) = operation.group_index(name) {
            let child =
                decoded.and_then(|d| d.group_child_rc(self.model, gidx)).ok_or_else(|| {
                    SimError::UnboundGroup {
                        group: name.to_owned(),
                        operation: operation.name.clone(),
                    }
                })?;
            ExecItem { op: child.op, decoded: Some(child), routine: None }
        } else if let Some(target) = self.model.operation_by_name(name) {
            // Direct operation activation; if the current binding has a
            // matching op-reference child, pass it along.
            let child = decoded.and_then(|d| {
                let coding =
                    self.model.operation(from_op).variants.get(d.variant)?.coding.as_ref()?;
                coding.fields.iter().zip(&d.children).find_map(|(f, c)| match (&f.target, c) {
                    (lisa_core::model::CodingTarget::Op(o), Some(c)) if *o == target.id => {
                        Some(Arc::clone(c))
                    }
                    _ => None,
                })
            });
            ExecItem { op: target.id, decoded: child, routine: None }
        } else {
            return Err(SimError::UnknownActivation {
                name: name.to_owned(),
                operation: operation.name.clone(),
            });
        };

        self.stats.activations += 1;
        let target_stage = self.model.operation(item.op).stage;
        let from_stage = operation.stage;
        let spatial = match (from_stage, target_stage) {
            (_, None) => 0,
            (None, Some((_, s))) => s as u32,
            (Some((p0, s0)), Some((p1, s1))) if p0 == p1 => s1.saturating_sub(s0) as u32,
            (Some(_), Some((_, s1))) => s1 as u32,
        };
        let total = spatial + extra_delay;
        if self.observing() {
            let event = TraceEvent::Activation {
                cycle: self.stats.cycles,
                from: from_op,
                to: item.op,
                delay: total,
            };
            self.emit(event);
        }
        if total == 0 {
            ready.push(item);
        } else {
            self.seq += 1;
            self.pending.push(Pending {
                item,
                pipe: target_stage,
                remaining: total,
                seq: self.seq,
            });
        }
        Ok(())
    }

    /// Handles `pipe.shift()`, `pipe.stall()`, `pipe.flush()` and their
    /// per-stage forms. Returns `false` if the call is not a pipeline
    /// intrinsic.
    pub(crate) fn try_pipe_intrinsic(
        &mut self,
        call: &lisa_core::ast::Call,
    ) -> Result<bool, SimError> {
        let Some(first) = call.path.first() else { return Ok(false) };
        let Some(pipeline) = self.model.pipelines().iter().find(|p| p.name == first.name) else {
            return Ok(false);
        };
        let pid = pipeline.id;
        let path_str = || call.path.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(".");
        match call.path.len() {
            2 => {
                let action = call.path[1].name.as_str();
                match action {
                    "shift" => self.pipe_shift(pid),
                    "stall" => self.pipe_stall(pid, pipeline.depth().saturating_sub(1)),
                    "flush" => self.pipe_flush(pid, None),
                    _ => return Err(SimError::UnknownPipeline { path: path_str() }),
                }
            }
            3 => {
                let stage = call.path[1].name.as_str();
                let sidx = pipeline
                    .stage_index(stage)
                    .ok_or_else(|| SimError::UnknownPipeline { path: path_str() })?;
                let action = call.path[2].name.as_str();
                match action {
                    "stall" => self.pipe_stall(pid, sidx),
                    "flush" => self.pipe_flush(pid, Some(sidx)),
                    _ => return Err(SimError::UnknownPipeline { path: path_str() }),
                }
            }
            _ => return Err(SimError::UnknownPipeline { path: path_str() }),
        }
        Ok(true)
    }

    /// Advances a pipeline by one stage: delayed activations bound for
    /// non-stalled stages move one step closer to execution.
    pub(crate) fn pipe_shift(&mut self, pid: PipelineId) {
        let stall_upto = self.pipes[pid.0].stall_upto;
        for p in &mut self.pending {
            if let Some((ppid, stage)) = p.pipe {
                if ppid == pid && p.remaining > 0 && stall_upto.is_none_or(|s| stage > s) {
                    p.remaining -= 1;
                }
            }
        }
    }

    /// Requests a stall of stages `0..=upto` for the current control step.
    pub(crate) fn pipe_stall(&mut self, pid: PipelineId, upto: usize) {
        self.stats.stalls += 1;
        let bucket = upto.min(crate::stats::STALL_STAGE_BUCKETS - 1);
        self.stats.stall_by_stage[bucket] += 1;
        let entry = &mut self.pipes[pid.0].stall_upto;
        *entry = Some(entry.map_or(upto, |prev| prev.max(upto)));
        if self.observing() {
            let event = TraceEvent::Stall {
                cycle: self.stats.cycles,
                pipe: pid,
                upto: upto.min(usize::from(u16::MAX)) as u16,
            };
            self.emit(event);
        }
    }

    /// Discards in-flight activations bound for stages `0..=upto` (whole
    /// pipeline when `upto` is `None`).
    pub(crate) fn pipe_flush(&mut self, pid: PipelineId, upto: Option<usize>) {
        self.stats.flushes += 1;
        let before = self.pending.len();
        self.pending.retain(|p| match p.pipe {
            Some((ppid, stage)) if ppid == pid => match upto {
                None => false,
                Some(s) => stage > s,
            },
            _ => true,
        });
        if self.observing() {
            let event = TraceEvent::Flush {
                cycle: self.stats.cycles,
                pipe: pid,
                upto: upto.map(|s| s.min(usize::from(u16::MAX)) as u16),
                discarded: (before - self.pending.len()) as u32,
            };
            self.emit(event);
        }
    }

    /// Evaluates a small condition expression (shared by both backends).
    fn eval_condition(
        &mut self,
        expr: &lisa_core::ast::Expr,
        op: OpId,
        variant: usize,
        decoded: Option<&Decoded>,
    ) -> Result<i64, SimError> {
        let mut frame = crate::eval::Frame::new(op, variant, decoded);
        self.eval_expr_interp(expr, &mut frame)
    }

    /// Directly injects a decoded instruction for execution this step —
    /// used by tests and by front-ends that bypass fetch modelling.
    pub fn execute_decoded(&mut self, decoded: &Decoded) -> Result<(), SimError> {
        let mut ready = vec![ExecItem {
            op: decoded.op,
            decoded: Some(Arc::new(decoded.clone())),
            routine: None,
        }];
        let mut i = 0;
        while i < ready.len() {
            let item = ready[i].clone();
            self.execute_item(&item, &mut ready)?;
            i += 1;
        }
        Ok(())
    }

    /// Number of delayed activations currently in flight (diagnostics).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Writes a program image (words) into a `PROGRAM_MEMORY` resource
    /// starting at its base address.
    ///
    /// In [`SimMode::Compiled`] the loaded region is immediately
    /// pre-decoded into the decode cache (the translate-time step of
    /// compiled simulation), so callers no longer need to invoke
    /// [`Simulator::predecode_program_memory`] by hand after loading.
    ///
    /// # Errors
    ///
    /// Returns addressing errors if the image exceeds the memory.
    pub fn load_program(&mut self, memory: &str, words: &[u128]) -> Result<(), SimError> {
        let res = self.model.resource_by_name(memory).ok_or_else(|| SimError::UnknownName {
            name: memory.to_owned(),
            operation: "<loader>".into(),
        })?;
        let base = res.dims.first().map_or(0, |d| d.base()) as i64;
        let res = res.clone();
        for (i, &word) in words.iter().enumerate() {
            let value = Bits::from_u128_wrapped(res.ty.width(), word);
            self.state.write(&res, &[base + i as i64], value)?;
        }
        if self.mode != SimMode::Interpretive {
            self.predecode_program_memory();
        }
        Ok(())
    }
}

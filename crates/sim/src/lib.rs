//! Cycle-accurate simulators generated from LISA model databases.
//!
//! This crate implements the simulation side of the paper's retargetable
//! tool environment: a **generic pipeline model** with operation
//! assignment to stages, activation with spatial-distance timing, and the
//! pipeline control operations *stall*, *flush* and *shift* (paper
//! §3.2.3); plus the two execution techniques the paper contrasts:
//!
//! * **interpretive simulation** — instruction words are decoded every
//!   time they execute and behaviors are evaluated directly on the AST;
//! * **compiled simulation** (§3.3) — decoding moves to translate time
//!   (pre-decoded program memory + decode cache) and behaviors run as
//!   pre-lowered, slot-resolved code. The paper reports "speed-ups of
//!   more than two orders of magnitude" for this technique; experiment E3
//!   of the reproduction measures the same contrast.
//!
//! See [`Simulator`] for the entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod engine;
mod error;
mod eval;
mod fasthash;
mod metrics;
mod ops;
mod snapshot;
mod state;
mod stats;

pub use engine::{RunOutcome, SimMode, Simulator, StopReason};
pub use error::SimError;
pub use metrics::publish_stats;
// Re-exported so simulator users can drive probes/arch-profiling without
// a separate `lisa-probe` dependency.
pub use lisa_probe::{publish_arch, ArchProfile, Heatmap, ProbeError, ProbeSet, ProbeSpec};
// Re-exported so simulator users can drive tracing/profiling without a
// separate `lisa-trace` dependency.
pub use lisa_trace::{
    events_to_jsonl, write_vcd, CollectingSink, JsonLinesSink, NameTable, Profile, RingBufferSink,
    TraceEvent, TraceKind, TraceSink,
};
pub use snapshot::Snapshot;
pub use state::State;
pub use stats::{SimStats, STALL_STAGE_BUCKETS};

//! Probe integration tests: watchpoints surface as `ProbeHit` trace
//! events, `break` probes stop `run_until` with a `Breakpoint` reason,
//! and the architectural profile is identical across all three backends.

use lisa_core::Model;
use lisa_sim::{ProbeSpec, SimMode, Simulator, StopReason, TraceEvent};

const TOY: &str = r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int R[8];
    REGISTER bit halt;
    DATA_MEMORY int dmem[32];
    PROGRAM_MEMORY int pmem[64];
}

OPERATION reg {
    DECLARE { LABEL index; }
    CODING { index:0bx[3] }
    SYNTAX { "R" index:#u }
    EXPRESSION { R[index] }
}

OPERATION imm6 {
    DECLARE { LABEL value; }
    CODING { value:0bx[6] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 6) }
}

OPERATION ldi {
    DECLARE { GROUP Dest = { reg }; GROUP Val = { imm6 }; }
    CODING { 0b0001 Dest Val 0bx[3] }
    SYNTAX { "LDI" Dest "," Val }
    BEHAVIOR { Dest = Val; }
}

OPERATION add {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0010 Dest Src1 Src2 0bx[3] }
    SYNTAX { "ADD" Dest "," Src1 "," Src2 }
    BEHAVIOR { Dest = Src1 + Src2; }
}

OPERATION st {
    DECLARE { GROUP Addr = { imm6 }; GROUP Src = { reg }; }
    CODING { 0b0100 Src Addr 0bx[3] }
    SYNTAX { "ST" Src "," Addr }
    BEHAVIOR { dmem[Addr] = Src; }
}

OPERATION ld {
    DECLARE { GROUP Dest = { reg }; GROUP Addr = { imm6 }; }
    CODING { 0b0101 Dest Addr 0bx[3] }
    SYNTAX { "LD" Dest "," Addr }
    BEHAVIOR { Dest = dmem[Addr]; }
}

OPERATION bnz {
    DECLARE { GROUP Cond = { reg }; GROUP Target = { imm6 }; }
    CODING { 0b0110 Cond Target 0bx[3] }
    SYNTAX { "BNZ" Cond "," Target }
    BEHAVIOR {
        if (Cond != 0) {
            pc = Target - 1;
        }
    }
}

OPERATION hlt {
    CODING { 0b0111 0bx[12] }
    SYNTAX { "HLT" }
    BEHAVIOR { halt = 1; }
}

OPERATION decode {
    DECLARE { GROUP Instruction = { ldi || add || st || ld || bnz || hlt }; }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION fetch {
    BEHAVIOR {
        ir = pmem[pc];
    }
}

OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            fetch;
            decode;
            pc = pc + 1;
        }
    }
}
"#;

const MODES: [SimMode; 3] = [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops];

/// R1 counts down from 3; stores the countdown into dmem[5] each pass.
const LOOP: [&str; 7] = [
    "LDI R1, 3",
    "LDI R3, -1",
    "ST R1, 5", // address 2: loop body
    "ADD R1, R1, R3",
    "BNZ R1, 2",
    "LD R2, 5",
    "HLT",
];

fn boot<'m>(model: &'m Model, mode: SimMode, program: &[&str]) -> Simulator<'m> {
    let decoder = lisa_isa::Decoder::new(model).expect("decoder builds");
    let asm = lisa_isa::Assembler::new(model, &decoder);
    let words: Vec<u128> = program
        .iter()
        .map(|stmt| {
            asm.assemble_instruction(stmt)
                .unwrap_or_else(|e| panic!("assemble `{stmt}`: {e}"))
                .encode(model)
                .expect("encodes")
                .to_u128()
        })
        .collect();
    let mut sim = Simulator::new(model, mode).expect("simulator builds");
    sim.load_program("pmem", &words).expect("program fits");
    sim
}

fn run_to_halt(sim: &mut Simulator<'_>, model: &Model, max: u64) -> StopReason {
    let halt = model.resource_by_name("halt").unwrap().clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, max).expect("run ok").reason
}

fn compile_spec(model: &Model, text: &str) -> lisa_sim::ProbeSet {
    ProbeSpec::parse(text).expect("spec parses").compile(model).expect("spec compiles")
}

#[test]
fn watchpoint_hits_appear_in_trace_stream() {
    let model = Model::from_source(TOY).expect("model builds");
    for mode in MODES {
        let mut sim = boot(&model, mode, &LOOP);
        sim.set_trace(true);
        sim.set_probes(compile_spec(&model, "watch dmem[4..6]"));
        assert_eq!(run_to_halt(&mut sim, &model, 200), StopReason::Halted, "{mode:?}");
        // Three `ST R1, 5` passes write dmem[5] = 3, 2, 1.
        assert_eq!(sim.probe_hits(), 3, "{mode:?}");
        let events = sim.take_events();
        let hits: Vec<(u16, u64, i64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ProbeHit { probe, addr, value, .. } => Some((*probe, *addr, *value)),
                _ => None,
            })
            .collect();
        assert_eq!(hits, [(0, 5, 3), (0, 5, 2), (0, 5, 1)], "{mode:?}");
        // Each hit rides directly behind the MemoryAccess that caused it.
        for (i, e) in events.iter().enumerate() {
            if matches!(e, TraceEvent::ProbeHit { .. }) {
                assert!(
                    matches!(events[i - 1], TraceEvent::MemoryAccess { .. }),
                    "{mode:?}: hit not adjacent to its access"
                );
            }
        }
    }
}

#[test]
fn register_probe_counts_writes() {
    let model = Model::from_source(TOY).expect("model builds");
    for mode in MODES {
        let mut sim = boot(&model, mode, &LOOP);
        sim.set_probes(compile_spec(&model, "reg R[1]; reg R[2]"));
        assert_eq!(run_to_halt(&mut sim, &model, 200), StopReason::Halted, "{mode:?}");
        let report = sim.probe_report();
        // R1: LDI + three ADD decrements; R2: one LD.
        assert_eq!(report[0], ("reg R[1]".to_string(), 4), "{mode:?}");
        assert_eq!(report[1], ("reg R[2]".to_string(), 1), "{mode:?}");
    }
}

#[test]
fn breakpoint_stops_run_until_and_resumes() {
    let model = Model::from_source(TOY).expect("model builds");
    for mode in MODES {
        let mut sim = boot(&model, mode, &LOOP);
        // Break on the loop back-edge target (address 2).
        sim.set_probes(compile_spec(&model, "break 2"));
        let r1 = model.resource_by_name("R").unwrap().clone();

        // First stop: at the first arrival, before address 2 re-executes.
        let reason = run_to_halt(&mut sim, &model, 200);
        assert_eq!(reason, StopReason::Breakpoint { probe: 0, pc: 2 }, "{mode:?}");
        assert_eq!(sim.state().read_int(&r1, &[1]).unwrap(), 3, "{mode:?}");

        // Resuming trips the breakpoint on each loop pass, then halts.
        let mut stops = 0;
        loop {
            match run_to_halt(&mut sim, &model, 200) {
                StopReason::Breakpoint { pc: 2, .. } => stops += 1,
                StopReason::Halted => break,
                other => panic!("{mode:?}: unexpected stop {other:?}"),
            }
        }
        assert_eq!(stops, 2, "{mode:?}: loop re-entries");
        assert_eq!(sim.state().read_int(&r1, &[2]).unwrap(), 1, "{mode:?}");
    }
}

#[test]
fn plain_run_ignores_breakpoints() {
    let model = Model::from_source(TOY).expect("model builds");
    let mut sim = boot(&model, SimMode::Compiled, &LOOP);
    sim.set_probes(compile_spec(&model, "break 2; trace 4"));
    for _ in 0..40 {
        sim.run(1).expect("steps");
    }
    let halt = model.resource_by_name("halt").unwrap();
    assert_eq!(sim.state().read_int(halt, &[]).unwrap(), 1, "ran to completion");
    // The breakpoint still counted every arrival even though nothing stopped.
    assert!(sim.probe_hits() >= 3);
    // A later run_until must not report the stale latched stop.
    let reason =
        sim.run_until(|st| st.read_int(halt, &[]).unwrap_or(0) != 0, 10).expect("ok").reason;
    assert_eq!(reason, StopReason::Halted);
}

#[test]
fn arch_profile_is_mode_independent() {
    let model = Model::from_source(TOY).expect("model builds");
    let mut profiles = Vec::new();
    for mode in MODES {
        let mut sim = boot(&model, mode, &LOOP);
        sim.enable_arch_profile();
        assert_eq!(run_to_halt(&mut sim, &model, 200), StopReason::Halted, "{mode:?}");
        let profile = sim.arch_profile().expect("profile on");
        assert!(profile.cycles > 0, "{mode:?}");
        assert!(!profile.op_execs.is_empty(), "{mode:?}");
        profiles.push((mode, profile));
    }
    let (_, reference) = &profiles[0];
    for (mode, profile) in &profiles[1..] {
        assert_eq!(profile, reference, "{mode:?} vs Interpretive");
    }
}

#[test]
fn arch_profile_sees_memory_traffic() {
    let model = Model::from_source(TOY).expect("model builds");
    let mut sim = boot(&model, SimMode::Ops, &LOOP);
    sim.enable_arch_profile();
    assert_eq!(run_to_halt(&mut sim, &model, 200), StopReason::Halted);
    let profile = sim.arch_profile().expect("profile on");
    // Three ST passes write dmem; one LD plus the BNZ re-reads hit it too.
    assert_eq!(profile.write_heat.get("dmem").map(lisa_sim::Heatmap::total), Some(3));
    assert!(profile.read_heat.get("dmem").is_some_and(|h| h.total() >= 1));
    // Every fetch reads pmem.
    assert!(profile.read_heat.get("pmem").is_some_and(|h| h.total() >= LOOP.len() as u64));
    // The profile merges with itself without losing anything.
    let mut doubled = profile.clone();
    doubled.merge(&profile);
    assert_eq!(doubled.cycles, profile.cycles * 2);
    assert_eq!(doubled.write_heat.get("dmem").map(lisa_sim::Heatmap::total), Some(6),);
}

#[test]
fn clearing_probes_stops_hit_emission() {
    let model = Model::from_source(TOY).expect("model builds");
    let mut sim = boot(&model, SimMode::Interpretive, &LOOP);
    sim.set_trace(true);
    sim.set_probes(compile_spec(&model, "watch dmem"));
    assert!(sim.probing());
    sim.clear_probes();
    assert!(!sim.probing());
    assert_eq!(run_to_halt(&mut sim, &model, 200), StopReason::Halted);
    assert_eq!(sim.probe_hits(), 0);
    assert!(
        sim.take_events().iter().all(|e| !matches!(e, TraceEvent::ProbeHit { .. })),
        "no hits after clear_probes"
    );
}

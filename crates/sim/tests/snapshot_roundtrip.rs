//! Property test for the checkpoint/restore API: interrupting a run at
//! an arbitrary split point with [`Simulator::snapshot`] and resuming it
//! in a fresh simulator via [`Simulator::restore`] must be unobservable —
//! the resumed run's final architectural state and statistics equal an
//! uninterrupted run's, on every model and in both simulation modes.
//!
//! [`Simulator::snapshot`]: lisa_sim::Simulator::snapshot
//! [`Simulator::restore`]: lisa_sim::Simulator::restore

use lisa_models::kernels::{accu_dot_product, load_kernel, tiny_fib, Kernel};
use lisa_models::{accu16, tinyrisc, Workbench};
use lisa_sim::{SimMode, Simulator};
use proptest::prelude::*;

/// Runs the simulator to the halt flag, returning the steps taken — zero
/// when the restored snapshot was already past the halt point
/// (`run_until` checks the predicate only after stepping, so it would
/// otherwise execute one cycle beyond the reference run).
fn finish(wb: &Workbench, sim: &mut Simulator<'_>, max_steps: u64) -> u64 {
    let halt = wb.model().resource_by_name(wb.halt_flag()).expect("halt flag");
    if sim.state().read_int(halt, &[]).unwrap_or(0) != 0 {
        return 0;
    }
    wb.run_to_halt(sim, max_steps).expect("run to halt")
}

/// Runs `kernel` to completion uninterrupted, then again with a
/// snapshot/restore break after `split_seed % (total + 1)` steps, and
/// asserts the two executions are indistinguishable.
fn assert_split_is_unobservable(wb: &Workbench, kernel: &Kernel, mode: SimMode, split_seed: u64) {
    // Uninterrupted reference run.
    let mut reference = load_kernel(wb, kernel, mode).expect("kernel loads");
    let total = wb.run_to_halt(&mut reference, kernel.max_steps).expect("reference run");
    let reference_digest = reference.state().digest();
    let reference_stats = *reference.stats();

    // Interrupted run: advance k steps, checkpoint, throw the simulator
    // away, and resume from the snapshot in a brand-new one.
    let k = split_seed % (total + 1);
    let mut first_half = load_kernel(wb, kernel, mode).expect("kernel loads");
    first_half.run(k).expect("prefix runs");
    let snapshot = first_half.snapshot();
    drop(first_half);

    let mut resumed = wb.simulator(mode).expect("fresh simulator");
    resumed.restore(&snapshot).expect("snapshot restores");
    let remaining = finish(wb, &mut resumed, kernel.max_steps);

    assert_eq!(
        k + remaining,
        total,
        "kernel `{}` ({mode:?}): split at {k} changed the cycle count",
        kernel.name
    );
    assert_eq!(
        resumed.state().digest(),
        reference_digest,
        "kernel `{}` ({mode:?}): split at {k} changed the final state",
        kernel.name
    );
    assert_eq!(
        *resumed.stats(),
        reference_stats,
        "kernel `{}` ({mode:?}): split at {k} changed the statistics",
        kernel.name
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tinyrisc_snapshot_restore_resume_matches_uninterrupted_run(
        n in 1usize..=20,
        split_seed in any::<u64>(),
        mode_seed in 0usize..3,
    ) {
        let wb = tinyrisc::workbench().expect("tinyrisc builds");
        let mode = [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops][mode_seed];
        assert_split_is_unobservable(&wb, &tiny_fib(n), mode, split_seed);
    }

    #[test]
    fn accu16_snapshot_restore_resume_matches_uninterrupted_run(
        n in 1usize..=16,
        split_seed in any::<u64>(),
        mode_seed in 0usize..3,
    ) {
        let wb = accu16::workbench().expect("accu16 builds");
        let mode = [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops][mode_seed];
        assert_split_is_unobservable(&wb, &accu_dot_product(n), mode, split_seed);
    }

    #[test]
    fn cross_mode_restore_reaches_the_same_final_state(
        n in 1usize..=12,
        split_seed in any::<u64>(),
    ) {
        // A snapshot taken from the interpretive backend resumes on the
        // compiled backend; both backends are cycle-accurate over the
        // same model, so the final state and cycle count must agree.
        let wb = tinyrisc::workbench().expect("tinyrisc builds");
        let kernel = tiny_fib(n);

        let mut reference = load_kernel(&wb, &kernel, SimMode::Interpretive).expect("loads");
        let total = wb.run_to_halt(&mut reference, kernel.max_steps).expect("reference run");

        let k = split_seed % (total + 1);
        let mut first_half = load_kernel(&wb, &kernel, SimMode::Interpretive).expect("loads");
        first_half.run(k).expect("prefix runs");
        let snapshot = first_half.snapshot();

        let mut resumed = wb.simulator(SimMode::Compiled).expect("compiled sim");
        resumed.restore(&snapshot).expect("cross-mode restore");
        resumed.predecode_program_memory();
        let remaining = finish(&wb, &mut resumed, kernel.max_steps);

        prop_assert_eq!(k + remaining, total);
        prop_assert_eq!(resumed.state().digest(), reference.state().digest());
    }
}

//! Pins the cross-mode snapshot/restore contract: a snapshot captured
//! in either backend restores into either backend and the continuation
//! is bit-exact, while a snapshot from a *different model* fails with
//! the typed [`SimError::SnapshotMismatch`]. This is the contract the
//! lisa-conform snapshot oracle fuzzes; these tests keep it pinned even
//! if the fuzz corpus ever rotates.

use lisa_models::Workbench;
use lisa_sim::{SimError, SimMode, Simulator};

fn all_workbenches() -> Vec<(&'static str, Workbench)> {
    vec![
        ("tinyrisc", lisa_models::tinyrisc::workbench().unwrap()),
        ("scalar2", lisa_models::scalar2::workbench().unwrap()),
        ("accu16", lisa_models::accu16::workbench().unwrap()),
        ("vliw62", lisa_models::vliw62::workbench().unwrap()),
    ]
}

/// A small program with register traffic, memory writes and a loop-free
/// tail, assembled per model via the workbench's kernel-free syntax.
fn demo_program(name: &str) -> Vec<&'static str> {
    match name {
        "tinyrisc" => {
            vec!["LDI R1, 7", "LDI R2, 5", "ADD R3, R1, R2", "MUL R4, R3, R1", "ST R4, R2", "HLT"]
        }
        "scalar2" => vec!["LDI R1, 9", "LDI R2, 4", "ADD R3, R1, R2", "MUL R4, R3, R2", "HLT"],
        "accu16" => vec!["MOVI r1, 11", "MOVI r2, 3", "MPY r1, r2", "SAT16", "HLT"],
        "vliw62" => vec!["MVK A1, 40", "MVK B1, 2", "ADD .L A2, A1, A1", "HALT"],
        other => panic!("no demo program for {other}"),
    }
}

fn boot<'w>(wb: &'w Workbench, mode: SimMode, words: &[u128]) -> Simulator<'w> {
    let mut sim = wb.simulator(mode).unwrap();
    sim.load_program(wb.program_memory(), words).unwrap();
    sim
}

/// Snapshot mid-run in `from` mode, restore into `to` mode, and require
/// the continuation to halt at the same cycle with the same digest as
/// the uninterrupted `from`-mode run.
fn check_cross(wb: &Workbench, name: &str, from: SimMode, to: SimMode) {
    let words = wb.assemble(&demo_program(name)).unwrap();

    let mut uninterrupted = boot(wb, from, &words);
    let total = wb.run_to_halt(&mut uninterrupted, 1000).unwrap();
    let want_digest = uninterrupted.state().digest();
    if total < 2 {
        panic!("{name}: demo program too short to snapshot mid-run");
    }

    let mut source = boot(wb, from, &words);
    source.run(total / 2).unwrap();
    let snap = source.snapshot();
    assert_eq!(snap.mode(), from);

    let mut resumed = wb.simulator(to).unwrap();
    resumed.restore(&snap).expect("cross-mode restore succeeds");
    assert_eq!(resumed.mode(), to, "restore must not change the simulator's own mode");
    assert_eq!(
        resumed.state().digest(),
        snap.state().digest(),
        "{name}: restore into {to:?} changed architectural state"
    );

    let rest = wb.run_to_halt(&mut resumed, 1000).unwrap();
    assert_eq!(
        total / 2 + rest,
        total,
        "{name}: {from:?}->{to:?} continuation halted at a different cycle"
    );
    assert_eq!(
        resumed.state().digest(),
        want_digest,
        "{name}: {from:?}->{to:?} continuation diverged from the uninterrupted run"
    );
}

#[test]
fn interpretive_snapshot_restores_into_compiled_bit_exactly() {
    for (name, wb) in all_workbenches() {
        check_cross(&wb, name, SimMode::Interpretive, SimMode::Compiled);
    }
}

#[test]
fn compiled_snapshot_restores_into_interpretive_bit_exactly() {
    for (name, wb) in all_workbenches() {
        check_cross(&wb, name, SimMode::Compiled, SimMode::Interpretive);
    }
}

#[test]
fn ops_snapshot_restores_into_either_other_mode_bit_exactly() {
    for (name, wb) in all_workbenches() {
        check_cross(&wb, name, SimMode::Ops, SimMode::Interpretive);
        check_cross(&wb, name, SimMode::Ops, SimMode::Compiled);
    }
}

#[test]
fn either_other_mode_snapshot_restores_into_ops_bit_exactly() {
    for (name, wb) in all_workbenches() {
        check_cross(&wb, name, SimMode::Interpretive, SimMode::Ops);
        check_cross(&wb, name, SimMode::Compiled, SimMode::Ops);
    }
}

#[test]
fn same_mode_restores_stay_bit_exact_too() {
    for (name, wb) in all_workbenches() {
        check_cross(&wb, name, SimMode::Interpretive, SimMode::Interpretive);
        check_cross(&wb, name, SimMode::Compiled, SimMode::Compiled);
        check_cross(&wb, name, SimMode::Ops, SimMode::Ops);
    }
}

#[test]
fn compiled_snapshot_carries_its_decode_cache_across_modes() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let words = wb.assemble(&demo_program("tinyrisc")).unwrap();
    let mut compiled = boot(&wb, SimMode::Compiled, &words);
    compiled.run(2).unwrap();
    let snap = compiled.snapshot();
    assert!(snap.predecoded_words() > 0, "compiled snapshot should carry a warm decode cache");

    // An interpretive simulator accepts the snapshot; the cache rides
    // along harmlessly.
    let mut interp = wb.simulator(SimMode::Interpretive).unwrap();
    interp.restore(&snap).unwrap();
    wb.run_to_halt(&mut interp, 1000).unwrap();
}

#[test]
fn foreign_model_snapshot_fails_with_the_typed_error() {
    let tinyrisc = lisa_models::tinyrisc::workbench().unwrap();
    let scalar2 = lisa_models::scalar2::workbench().unwrap();
    let donor = tinyrisc.simulator(SimMode::Interpretive).unwrap();
    let snap = donor.snapshot();
    for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
        let mut sim = scalar2.simulator(mode).unwrap();
        match sim.restore(&snap) {
            Err(SimError::SnapshotMismatch) => {}
            other => panic!("expected SnapshotMismatch restoring into {mode:?}, got {other:?}"),
        }
    }
    assert_eq!(
        SimError::SnapshotMismatch.to_string(),
        "snapshot does not match this simulator's resource layout"
    );
}

//! Compiled-mode lowering must reject bad behavior code at simulator
//! *generation* time (the compile-time half of compiled simulation),
//! with the same error classes the interpretive backend reports at run
//! time.

use lisa_core::Model;
use lisa_sim::{SimError, SimMode, Simulator};

fn model(behavior: &str) -> Model {
    Model::from_source(&format!(
        "RESOURCE {{ PROGRAM_COUNTER int pc; REGISTER int r; PIPELINE p = {{ A; B }}; }} \
         OPERATION main {{ BEHAVIOR {{ {behavior} }} }}"
    ))
    .expect("model parses")
}

#[test]
fn unknown_names_fail_at_lowering_time() {
    let m = model("r = missing;");
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    assert!(matches!(err, SimError::UnknownName { ref name, .. } if name == "missing"));
    // Interpretive construction succeeds; the error surfaces at run time.
    let mut sim = Simulator::new(&m, SimMode::Interpretive).expect("builds");
    assert!(matches!(sim.step(), Err(SimError::UnknownName { .. })));
}

#[test]
fn builtin_arity_fails_at_lowering_time() {
    let m = model("r = sext(1);");
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    assert!(
        matches!(err, SimError::BadArity { ref builtin, got: 1, expected: 2 } if builtin == "sext")
    );
}

#[test]
fn unknown_pipeline_actions_fail_at_lowering_time() {
    let m = model("p.explode();");
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    assert!(matches!(err, SimError::UnknownPipeline { ref path } if path == "p.explode"));

    let m = model("p.C.stall();");
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    assert!(matches!(err, SimError::UnknownPipeline { .. }), "unknown stage: {err}");
}

#[test]
fn unknown_dotted_calls_fail_at_lowering_time() {
    let m = model("q.shift();"); // `q` is not a pipeline
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    assert!(matches!(err, SimError::UnknownCall { ref path, .. } if path == "q.shift"));
}

#[test]
fn error_messages_are_actionable() {
    let m = model("r = missing;");
    let err = Simulator::new(&m, SimMode::Compiled).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("missing"), "{text}");
    assert!(text.contains("main"), "names the operation: {text}");
    // Errors chain sources where applicable and satisfy the usual bounds.
    fn check<T: std::error::Error + Send + Sync + 'static>() {}
    check::<SimError>();
}

#[test]
fn lisa_error_wrapping_displays_both_stages() {
    let parse_err = Model::from_source("RESOURCE {").unwrap_err();
    assert!(parse_err.to_string().starts_with("parse error:"), "{parse_err}");
    let model_err = Model::from_source("OPERATION x { CODING { 0b1 x } }").unwrap_err();
    assert!(model_err.to_string().starts_with("model error:"), "{model_err}");
    assert!(std::error::Error::source(&model_err).is_some());
}

//! Pins the ops backend's translate-time lowering.
//!
//! Two contracts: the micro-op listing of a small fixed program is
//! stable against a checked-in golden file (so translator changes are
//! reviewed, not accidental), and lowering is **deterministic** — the
//! same program always produces a byte-identical op array, regardless
//! of how the simulator got there.
//!
//! To bless an intentional translator change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lisa-sim --test ops_lowering
//! ```

use lisa_models::Workbench;
use lisa_sim::{SimMode, Simulator};
use proptest::prelude::*;

/// A fixed tinyrisc program exercising the interesting translator
/// paths: label folding (LDI immediates, register indices), operand
/// expression inlining (ADD/MUL), memory writes (ST) and the halt flag.
const DEMO: &[&str] =
    &["LDI R1, 7", "LDI R2, 5", "ADD R3, R1, R2", "MUL R4, R3, R1", "ST R4, R2", "HLT"];

fn listing(wb: &Workbench) -> String {
    let words = wb.assemble(DEMO).expect("demo assembles");
    let mut sim = wb.simulator(SimMode::Ops).expect("ops simulator");
    sim.load_program(wb.program_memory(), &words).expect("program loads");
    sim.ops_listing()
}

#[test]
fn listing_matches_the_golden_file() {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ops_tinyrisc.txt");
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let rendered = listing(&wb);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).expect("golden dir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "micro-op listing drifted from tests/golden/ops_tinyrisc.txt; if intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn listing_is_empty_outside_ops_mode() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let words = wb.assemble(DEMO).unwrap();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = wb.simulator(mode).unwrap();
        sim.load_program(wb.program_memory(), &words).unwrap();
        assert_eq!(sim.ops_listing(), "", "{mode:?} has no ops tables");
    }
}

/// The listing is a faithful projection of the translated op arrays, so
/// byte-identical listings mean byte-identical lowering.
fn load_ops<'w>(wb: &'w Workbench, words: &[u128]) -> Simulator<'w> {
    let mut sim = wb.simulator(SimMode::Ops).expect("ops simulator");
    sim.load_program(wb.program_memory(), words).expect("program loads");
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same program, two independently constructed simulators:
    /// identical lowering. Random 16-bit words cover undecodable
    /// patterns too (they are skipped at predecode in both runs).
    #[test]
    fn lowering_is_deterministic(words in proptest::collection::vec(0u128..=0xffff, 1..=24)) {
        let wb = lisa_models::tinyrisc::workbench().expect("tinyrisc builds");
        let mut first = load_ops(&wb, &words);
        let mut second = load_ops(&wb, &words);
        prop_assert_eq!(first.ops_listing(), second.ops_listing());
    }

    /// Running the program (which may re-translate through the runtime
    /// caches) must not change what any word lowers to.
    #[test]
    fn lowering_is_stable_across_execution(steps in 0u64..64) {
        let wb = lisa_models::tinyrisc::workbench().expect("tinyrisc builds");
        let words = wb.assemble(DEMO).expect("demo assembles");
        let mut cold = load_ops(&wb, &words);
        let mut warm = load_ops(&wb, &words);
        let _ = warm.run(steps);
        prop_assert_eq!(cold.ops_listing(), warm.ops_listing());
    }
}

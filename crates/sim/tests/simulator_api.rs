//! Simulator public-API coverage: loader errors, trace lifecycle,
//! pre-decode counting, mode/stats accessors, and run_until edge cases.

use lisa_core::Model;
use lisa_sim::{SimError, SimMode, Simulator};

fn model() -> Model {
    Model::from_source(
        r#"
        RESOURCE {
            PROGRAM_COUNTER int pc;
            CONTROL_REGISTER int ir;
            REGISTER int acc;
            REGISTER bit halt;
            PROGRAM_MEMORY int pmem[16];
        }
        OPERATION addi {
            DECLARE { LABEL v; }
            CODING { 0b01 v:0bx[6] }
            SYNTAX { "ADDI" v:#s }
            BEHAVIOR { acc = acc + sext(v, 6); }
        }
        OPERATION done {
            CODING { 0b11 0bx[6] }
            SYNTAX { "DONE" }
            BEHAVIOR { halt = 1; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { addi || done }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        OPERATION main {
            BEHAVIOR {
                if (halt == 0) {
                    ir = pmem[pc & 15];
                    decode;
                    pc = pc + 1;
                }
            }
        }
        "#,
    )
    .expect("model builds")
}

#[test]
fn loader_rejects_unknown_memory_and_overflow() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    let err = sim.load_program("nowhere", &[0]).unwrap_err();
    assert!(matches!(err, SimError::UnknownName { .. }));
    let too_big = vec![0u128; 17];
    let err = sim.load_program("pmem", &too_big).unwrap_err();
    assert!(matches!(err, SimError::IndexOutOfBounds { .. }));
    assert!(sim.load_program("pmem", &vec![0u128; 16]).is_ok());
}

#[test]
fn predecode_counts_distinct_instruction_words() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Compiled).unwrap();
    // Three distinct decodable words (ADDI 1, ADDI 2, DONE) plus repeats
    // and an undecodable word (opcode 0b10).
    let addi1 = 0b01_000001u128;
    let addi2 = 0b01_000010u128;
    let done = 0b11_000000u128;
    let junk = 0b10_000000u128;
    sim.load_program("pmem", &[addi1, addi2, addi1, done, junk]).unwrap();
    // The rest of pmem is zeros: 0b00_... does not decode either.
    // Loading pre-decoded automatically (compiled mode): distinct
    // decodable words only.
    assert_eq!(sim.snapshot().predecoded_words(), 3);
    // A further explicit call adds nothing.
    assert_eq!(sim.predecode_program_memory(), 0);
}

#[test]
fn trace_lifecycle() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    sim.load_program("pmem", &[0b01_000011, 0b11_000000]).unwrap();
    sim.run(1).unwrap();
    assert!(sim.take_trace().is_empty(), "trace off by default");
    sim.set_trace(true);
    sim.run(1).unwrap();
    let trace = sim.take_trace();
    assert!(!trace.is_empty());
    assert!(sim.take_trace().is_empty(), "take drains");
    sim.set_trace(false);
    sim.run(1).unwrap();
    assert!(sim.take_trace().is_empty());
}

#[test]
fn run_until_counts_steps_taken() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Compiled).unwrap();
    sim.load_program("pmem", &[0b01_000001, 0b01_000001, 0b11_000000]).unwrap();
    sim.predecode_program_memory();
    let halt = model.resource_by_name("halt").unwrap().clone();
    let steps = sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 100).expect("halts");
    assert_eq!(steps.cycles, 3);
    assert_eq!(sim.stats().cycles, 3);
    assert_eq!(sim.mode(), SimMode::Compiled);
    // A predicate that is already true still takes one step (checked
    // after stepping).
    let steps = sim.run_until(|_| true, 100).expect("immediate");
    assert_eq!(steps.cycles, 1);
}

#[test]
fn stats_display_and_cache_rate() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Compiled).unwrap();
    sim.load_program("pmem", &[0b01_000001, 0b11_000000]).unwrap();
    sim.predecode_program_memory();
    let halt = model.resource_by_name("halt").unwrap().clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 100).unwrap();
    let stats = *sim.stats();
    assert_eq!(stats.decodes, 2);
    assert!((stats.cache_hit_rate() - 1.0).abs() < 1e-12);
    let text = stats.to_string();
    assert!(text.contains("cycles=2"));
    assert!(text.contains("decodes=2 (hits=2)"));
}

#[test]
fn state_reset_clears_everything() {
    let model = model();
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    sim.load_program("pmem", &[0b01_000011, 0b11_000000]).unwrap();
    sim.run(3).unwrap();
    let acc = model.resource_by_name("acc").unwrap().clone();
    assert_eq!(sim.state().read_int(&acc, &[]).unwrap(), 3);
    sim.state_mut().reset();
    assert_eq!(sim.state().read_int(&acc, &[]).unwrap(), 0);
    let pmem = model.resource_by_name("pmem").unwrap();
    assert_eq!(sim.state().read_int(pmem, &[0]).unwrap(), 0, "program cleared too");
}

#[test]
fn models_without_decoder_still_simulate() {
    // No decode root: simulation works, decoding errors out.
    let model = Model::from_source(
        "RESOURCE { PROGRAM_COUNTER int pc; } OPERATION main { BEHAVIOR { pc = pc + 1; } }",
    )
    .unwrap();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = Simulator::new(&model, mode).unwrap();
        sim.run(5).unwrap();
        let pc = model.resource_by_name("pc").unwrap();
        assert_eq!(sim.state().read_int(pc, &[]).unwrap(), 5, "{mode:?}");
        assert_eq!(sim.predecode_program_memory(), 0);
    }
}

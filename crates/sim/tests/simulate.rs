//! End-to-end simulator tests on a small but complete stored-program
//! machine written in LISA: fetch, decode (coding-tree root), execute,
//! with both interpretive and compiled backends, plus pipeline timing
//! (activation delays, stall, flush, shift).

use lisa_core::Model;
use lisa_sim::{SimError, SimMode, Simulator};

/// A complete 16-bit accumulator machine: IR fetch from program memory,
/// decode through the coding tree, ALU ops on registers, a branch, and a
/// halt flag.
const TOY: &str = r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int R[8];
    REGISTER bit halt;
    DATA_MEMORY int dmem[32];
    PROGRAM_MEMORY int pmem[64];
}

OPERATION reg {
    DECLARE { LABEL index; }
    CODING { index:0bx[3] }
    SYNTAX { "R" index:#u }
    EXPRESSION { R[index] }
}

OPERATION imm6 {
    DECLARE { LABEL value; }
    CODING { value:0bx[6] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 6) }
}

OPERATION ldi {
    DECLARE { GROUP Dest = { reg }; GROUP Val = { imm6 }; }
    CODING { 0b0001 Dest Val 0bx[3] }
    SYNTAX { "LDI" Dest "," Val }
    BEHAVIOR { Dest = Val; }
}

OPERATION add {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0010 Dest Src1 Src2 0bx[3] }
    SYNTAX { "ADD" Dest "," Src1 "," Src2 }
    BEHAVIOR { Dest = Src1 + Src2; }
}

OPERATION mul {
    DECLARE { GROUP Dest, Src1, Src2 = { reg }; }
    CODING { 0b0011 Dest Src1 Src2 0bx[3] }
    SYNTAX { "MUL" Dest "," Src1 "," Src2 }
    BEHAVIOR { Dest = Src1 * Src2; }
}

OPERATION st {
    DECLARE { GROUP Addr = { imm6 }; GROUP Src = { reg }; }
    CODING { 0b0100 Src Addr 0bx[3] }
    SYNTAX { "ST" Src "," Addr }
    BEHAVIOR { dmem[Addr] = Src; }
}

OPERATION ld {
    DECLARE { GROUP Dest = { reg }; GROUP Addr = { imm6 }; }
    CODING { 0b0101 Dest Addr 0bx[3] }
    SYNTAX { "LD" Dest "," Addr }
    BEHAVIOR { Dest = dmem[Addr]; }
}

OPERATION bnz {
    DECLARE { GROUP Cond = { reg }; GROUP Target = { imm6 }; }
    CODING { 0b0110 Cond Target 0bx[3] }
    SYNTAX { "BNZ" Cond "," Target }
    BEHAVIOR {
        if (Cond != 0) {
            pc = Target - 1;
        }
    }
}

OPERATION hlt {
    CODING { 0b0111 0bx[12] }
    SYNTAX { "HLT" }
    BEHAVIOR { halt = 1; }
}

OPERATION decode {
    DECLARE { GROUP Instruction = { ldi || add || mul || st || ld || bnz || hlt }; }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION fetch {
    BEHAVIOR {
        ir = pmem[pc];
    }
}

OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            fetch;
            decode;
            pc = pc + 1;
        }
    }
}
"#;

fn assemble_program(model: &Model, program: &[&str]) -> Vec<u128> {
    let decoder = lisa_isa::Decoder::new(model).expect("decoder builds");
    let asm = lisa_isa::Assembler::new(model, &decoder);
    program
        .iter()
        .map(|stmt| {
            asm.assemble_instruction(stmt)
                .unwrap_or_else(|e| panic!("assemble `{stmt}`: {e}"))
                .encode(model)
                .expect("encodes")
                .to_u128()
        })
        .collect()
}

fn run_program<'m>(model: &'m Model, mode: SimMode, program: &[&str], max: u64) -> Simulator<'m> {
    let words = assemble_program(model, program);
    let mut sim = Simulator::new(model, mode).expect("simulator builds");
    sim.load_program("pmem", &words).expect("program fits");
    if mode == SimMode::Compiled {
        // Loading pre-decodes automatically in compiled mode.
        assert!(sim.snapshot().predecoded_words() > 0, "load pre-decodes the program");
    }
    let halt = model.resource_by_name("halt").unwrap().clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, max).expect("program halts");
    sim
}

fn reg(sim: &Simulator<'_>, model: &Model, i: i64) -> i64 {
    let r = model.resource_by_name("R").unwrap();
    sim.state().read_int(r, &[i]).unwrap()
}

#[test]
fn straight_line_arithmetic_both_modes() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = ["LDI R1, 6", "LDI R2, 7", "MUL R3, R1, R2", "ADD R4, R3, R1", "HLT"];
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let sim = run_program(&model, mode, &program, 100);
        assert_eq!(reg(&sim, &model, 3), 42, "{mode:?}");
        assert_eq!(reg(&sim, &model, 4), 48, "{mode:?}");
    }
}

#[test]
fn negative_immediates_sign_extend() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = ["LDI R1, -5", "LDI R2, 3", "ADD R3, R1, R2", "HLT"];
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let sim = run_program(&model, mode, &program, 100);
        assert_eq!(reg(&sim, &model, 1), -5, "{mode:?}");
        assert_eq!(reg(&sim, &model, 3), -2, "{mode:?}");
    }
}

#[test]
fn memory_store_load_round_trip() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = ["LDI R1, 29", "ST R1, 5", "LD R2, 5", "HLT"];
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let sim = run_program(&model, mode, &program, 100);
        assert_eq!(reg(&sim, &model, 2), 29, "{mode:?}");
        let dmem = model.resource_by_name("dmem").unwrap();
        assert_eq!(sim.state().read_int(dmem, &[5]).unwrap(), 29);
    }
}

#[test]
fn loop_with_backward_branch() {
    // R1 counts down from 5; R2 accumulates 5+4+3+2+1 = 15.
    let model = Model::from_source(TOY).expect("model builds");
    let program = [
        "LDI R1, 5",
        "LDI R2, 0",
        "LDI R3, -1",
        "ADD R2, R2, R1", // address 3: loop body
        "ADD R1, R1, R3",
        "BNZ R1, 3",
        "HLT",
    ];
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let sim = run_program(&model, mode, &program, 1000);
        assert_eq!(reg(&sim, &model, 2), 15, "{mode:?}");
        assert_eq!(reg(&sim, &model, 1), 0, "{mode:?}");
    }
}

#[test]
fn both_modes_agree_cycle_by_cycle() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = [
        "LDI R1, 13",
        "LDI R2, -9",
        "ADD R3, R1, R2",
        "MUL R4, R3, R3",
        "ST R4, 0",
        "LD R5, 0",
        "HLT",
    ];
    let words = assemble_program(&model, &program);
    let mut interp = Simulator::new(&model, SimMode::Interpretive).unwrap();
    let mut compiled = Simulator::new(&model, SimMode::Compiled).unwrap();
    interp.load_program("pmem", &words).unwrap();
    compiled.load_program("pmem", &words).unwrap();
    for cycle in 0..20 {
        interp.step().unwrap();
        compiled.step().unwrap();
        assert_eq!(interp.state(), compiled.state(), "state diverged at cycle {cycle}");
    }
}

#[test]
fn compiled_mode_hits_decode_cache() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = ["LDI R1, 1", "LDI R2, 2", "ADD R3, R1, R2", "HLT"];
    let sim = run_program(&model, SimMode::Compiled, &program, 100);
    let stats = sim.stats();
    assert!(stats.decodes > 0);
    assert_eq!(
        stats.decode_cache_hits, stats.decodes,
        "every runtime decode should hit the pre-decoded cache"
    );
}

#[test]
fn interpretive_mode_redecodes_every_time() {
    let model = Model::from_source(TOY).expect("model builds");
    let program = ["LDI R1, 1", "LDI R2, 2", "ADD R3, R1, R2", "HLT"];
    let sim = run_program(&model, SimMode::Interpretive, &program, 100);
    assert_eq!(sim.stats().decode_cache_hits, 0);
    assert!(sim.stats().decodes >= 4);
}

#[test]
fn step_limit_is_reported() {
    let model = Model::from_source(TOY).expect("model builds");
    let words = assemble_program(&model, &["LDI R1, 1", "BNZ R1, 0"]); // infinite loop
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    sim.load_program("pmem", &words).unwrap();
    let halt = model.resource_by_name("halt").unwrap().clone();
    let err = sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 50).unwrap_err();
    assert!(matches!(err, SimError::StepLimit { limit: 50 }));
}

#[test]
fn trace_records_execution() {
    let model = Model::from_source(TOY).expect("model builds");
    let words = assemble_program(&model, &["LDI R1, 3", "HLT"]);
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    sim.load_program("pmem", &words).unwrap();
    sim.set_trace(true);
    sim.run(2).unwrap();
    let trace = sim.take_trace();
    assert!(trace.iter().any(|l| l.contains("exec main")));
    assert!(trace.iter().any(|l| l.contains("write R")));
}

// ---------------------------------------------------------------------------
// Pipeline timing
// ---------------------------------------------------------------------------

/// A model exercising activation delays and pipeline control: main
/// activates a three-stage chain each cycle; a `stall_req` resource holds
/// the pipe; `flush_req` kills in-flight activations.
const PIPE: &str = r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    REGISTER int mark_f;
    REGISTER int mark_d;
    REGISTER int mark_e;
    REGISTER int stall_req;
    REGISTER int flush_req;
    PIPELINE pipe = { FE; DE; EX };
}

OPERATION do_fetch IN pipe.FE {
    BEHAVIOR { mark_f = mark_f + 1; }
}

OPERATION do_decode IN pipe.DE {
    BEHAVIOR { mark_d = mark_d + 1; }
}

OPERATION do_execute IN pipe.EX {
    BEHAVIOR { mark_e = mark_e + 1; }
}

OPERATION main {
    ACTIVATION {
        do_fetch, do_decode, do_execute
        if (stall_req != 0) {
            pipe.DE.stall()
        }
        if (flush_req != 0) {
            pipe.flush()
        }
        pipe.shift()
    }
    BEHAVIOR { pc = pc + 1; }
}
"#;

fn read_marks(sim: &Simulator<'_>, model: &Model) -> (i64, i64, i64) {
    let get =
        |name: &str| sim.state().read_int(model.resource_by_name(name).unwrap(), &[]).unwrap();
    (get("mark_f"), get("mark_d"), get("mark_e"))
}

#[test]
fn spatial_distance_delays_stage_operations() {
    let model = Model::from_source(PIPE).expect("model builds");
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    // Cycle 1: only FE (distance 0) runs; DE lags 1 cycle, EX lags 2.
    sim.step().unwrap();
    assert_eq!(read_marks(&sim, &model), (1, 0, 0));
    sim.step().unwrap();
    assert_eq!(read_marks(&sim, &model), (2, 1, 0));
    sim.step().unwrap();
    assert_eq!(read_marks(&sim, &model), (3, 2, 1));
    // Steady state: all three advance together.
    sim.step().unwrap();
    assert_eq!(read_marks(&sim, &model), (4, 3, 2));
}

#[test]
fn stall_holds_upstream_stages() {
    let model = Model::from_source(PIPE).expect("model builds");
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    let stall_req = model.resource_by_name("stall_req").unwrap().clone();
    sim.run(3).unwrap();
    assert_eq!(read_marks(&sim, &model), (3, 2, 1));
    // Request a DE-stage stall for two cycles: activations bound for FE/DE
    // stop advancing, EX keeps draining.
    sim.state_mut().write_int(&stall_req, &[], 1).unwrap();
    sim.step().unwrap();
    let after_one = read_marks(&sim, &model);
    sim.step().unwrap();
    let after_two = read_marks(&sim, &model);
    sim.state_mut().write_int(&stall_req, &[], 0).unwrap();
    // FE keeps executing (main re-activates each cycle at distance 0), but
    // the DE-bound work stalls: mark_d advances more slowly than mark_f.
    assert!(
        after_two.0 - after_two.1 > after_one.0 - after_one.1 || after_two.1 == after_one.1,
        "stall should open a gap between FE and DE: {after_one:?} -> {after_two:?}"
    );
    // Resume: pipeline drains again.
    sim.run(4).unwrap();
    let resumed = read_marks(&sim, &model);
    assert!(resumed.1 > after_two.1);
    assert!(sim.stats().stalls >= 2);
}

#[test]
fn flush_discards_in_flight_activations() {
    let model = Model::from_source(PIPE).expect("model builds");
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    let flush_req = model.resource_by_name("flush_req").unwrap().clone();
    sim.run(3).unwrap();
    assert!(sim.in_flight() > 0);
    sim.state_mut().write_int(&flush_req, &[], 1).unwrap();
    sim.step().unwrap();
    sim.state_mut().write_int(&flush_req, &[], 0).unwrap();
    // All DE/EX work in flight was discarded; the next two cycles re-fill.
    let (f, d, e) = read_marks(&sim, &model);
    sim.step().unwrap();
    let (f2, d2, e2) = read_marks(&sim, &model);
    assert_eq!(f2, f + 1);
    // DE was flushed, so the step right after the flush has no DE work.
    assert_eq!(d2, d);
    assert_eq!(e2, e);
    assert!(sim.stats().flushes >= 1);
}

#[test]
fn delayed_activation_via_semicolons() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int t0; REGISTER int later; }
        OPERATION mark_now { BEHAVIOR { t0 = pc; } }
        OPERATION mark_later { BEHAVIOR { later = pc; } }
        OPERATION kick {
            ACTIVATION { mark_now; ; mark_later }
        }
        OPERATION main {
            BEHAVIOR {
                pc = pc + 1;
                if (pc == 1) { kick; }
            }
        }
        "#,
    )
    .expect("model builds");
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    sim.run(6).unwrap();
    let t0 = sim.state().read_int(model.resource_by_name("t0").unwrap(), &[]).unwrap();
    let later = sim.state().read_int(model.resource_by_name("later").unwrap(), &[]).unwrap();
    // mark_now ran one control step after the kick (delay 1 from `;`),
    // mark_later three steps after (delay 3 from `;;;`).
    assert_eq!(later - t0, 2, "t0={t0} later={later}");
}

#[test]
fn unknown_name_in_behavior_errors() {
    let model = Model::from_source(
        "RESOURCE { PROGRAM_COUNTER int pc; } OPERATION main { BEHAVIOR { pc = bogus; } }",
    )
    .unwrap();
    let mut sim = Simulator::new(&model, SimMode::Interpretive).unwrap();
    let err = sim.step().unwrap_err();
    assert!(matches!(err, SimError::UnknownName { ref name, .. } if name == "bogus"));
    // Compiled mode rejects the model at lowering time.
    assert!(matches!(Simulator::new(&model, SimMode::Compiled), Err(SimError::UnknownName { .. })));
}

#[test]
fn out_of_bounds_memory_access_errors() {
    let model = Model::from_source(
        r#"RESOURCE { PROGRAM_COUNTER int pc; DATA_MEMORY int m[4]; }
        OPERATION main { BEHAVIOR { m[9] = 1; } }"#,
    )
    .unwrap();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = Simulator::new(&model, mode).unwrap();
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::IndexOutOfBounds { .. }), "{mode:?}");
    }
}

#[test]
fn division_by_zero_errors() {
    let model = Model::from_source(
        r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r; }
        OPERATION main { BEHAVIOR { r = 5 / pc; } }"#,
    )
    .unwrap();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = Simulator::new(&model, mode).unwrap();
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::DivisionByZero { .. }), "{mode:?}");
    }
}

#[test]
fn behavior_c_constructs_work_in_both_modes() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int out; REGISTER int acc; }
        OPERATION main {
            BEHAVIOR {
                int sum = 0;
                for (int i = 1; i <= 4; i++) { sum += i; }
                int j = 0;
                while (j < 3) { j++; }
                do { j--; } while (j > 1);
                switch (j) {
                    case 1: sum += 100; break;
                    default: sum += 1000;
                }
                acc = sum > 100 ? sum : -sum;
                out = acc + max(1, 2) + min(1, 2) + abs(0 - 7)
                    + saturate(300, 8) + sext(0b1111, 4) + zext(15, 4) + norm(1, 32);
                pc = pc + 1;
            }
        }
        "#,
    )
    .expect("model builds");
    // sum = 10 + 100 = 110; acc = 110;
    // out = 110 + 2 + 1 + 7 + 127 + (-1) + 15 + 30 = 291.
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = Simulator::new(&model, mode).unwrap();
        sim.step().unwrap();
        let out = sim.state().read_int(model.resource_by_name("out").unwrap(), &[]).unwrap();
        assert_eq!(out, 291, "{mode:?}");
    }
}

//! Engine feature coverage: activation `switch`, delayed conditional
//! activation, op-reference bindings, expression lvalues through
//! references, and behavior-language corner cases in both backends.

use lisa_core::Model;
use lisa_sim::{SimMode, Simulator};

/// Builds the model, runs `steps` in both modes, asserts identical state,
/// and returns the compiled simulator for inspection.
fn run_both(model: &Model, steps: u64) -> Simulator<'_> {
    let mut interp = Simulator::new(model, SimMode::Interpretive).expect("interp");
    let mut compiled = Simulator::new(model, SimMode::Compiled).expect("compiled");
    interp.run(steps).expect("interp runs");
    compiled.run(steps).expect("compiled runs");
    assert_eq!(interp.state(), compiled.state(), "backends diverged");
    compiled
}

fn read(sim: &Simulator<'_>, name: &str) -> i64 {
    sim.state().read_int(sim.model().resource_by_name(name).expect(name), &[]).expect(name)
}

#[test]
fn activation_switch_selects_by_resource_value() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int mode; REGISTER int mark_a; REGISTER int mark_b; REGISTER int mark_d; }
        OPERATION do_a { BEHAVIOR { mark_a = mark_a + 1; } }
        OPERATION do_b { BEHAVIOR { mark_b = mark_b + 1; } }
        OPERATION do_default { BEHAVIOR { mark_d = mark_d + 1; } }
        OPERATION main {
            BEHAVIOR { pc = pc + 1; mode = pc % 3; }
            ACTIVATION {
                switch (mode) {
                    case 1: { do_a }
                    case 2: { do_b }
                    default: { do_default }
                }
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 9);
    // pc runs 1..=9; mode = pc%3 cycles 1,2,0 three times each.
    assert_eq!(read(&sim, "mark_a"), 3);
    assert_eq!(read(&sim, "mark_b"), 3);
    assert_eq!(read(&sim, "mark_d"), 3);
}

#[test]
fn delayed_activation_inside_conditionals() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int fired_at; }
        OPERATION late { BEHAVIOR { fired_at = pc; } }
        OPERATION main {
            BEHAVIOR { pc = pc + 1; }
            ACTIVATION {
                if (pc == 1) { ;; late }
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 6);
    // Activated at the end of cycle 0 (pc just became 1) with delay 2 →
    // executes during the cycle where pc becomes 3.
    assert_eq!(read(&sim, "fired_at"), 3);
}

#[test]
fn op_reference_bindings_flow_through_coding() {
    // `user` embeds `imm4` directly (not via a group); its behavior reads
    // and writes through the reference.
    let model = Model::from_source(
        r#"
        RESOURCE {
            PROGRAM_COUNTER int pc;
            CONTROL_REGISTER int ir;
            REGISTER int out;
            REGISTER int cell[16];
        }
        OPERATION imm4 {
            DECLARE { LABEL v; }
            CODING { v:0bx[4] }
            SYNTAX { v:#u }
            EXPRESSION { cell[v] }
        }
        OPERATION user {
            DECLARE { REFERENCE imm4; }
            CODING { 0b1010 imm4 }
            SYNTAX { "USER" imm4 }
            BEHAVIOR {
                imm4 = imm4 + 7;
                out = imm4;
            }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { user }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        OPERATION main {
            BEHAVIOR {
                if (pc == 0) {
                    ir = 0b10100011;   // USER 3
                    decode;
                }
                pc = pc + 1;
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 2);
    assert_eq!(read(&sim, "out"), 7, "cell[3] incremented then read");
    let cell = sim.model().resource_by_name("cell").unwrap();
    assert_eq!(sim.state().read_int(cell, &[3]).unwrap(), 7);
}

#[test]
fn behavior_corner_cases_match_across_backends() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int out; REGISTER int trace_val; }
        OPERATION main {
            BEHAVIOR {
                int x = 0;
                // continue skips, break exits.
                for (int i = 0; i < 10; i++) {
                    if (i % 2 == 0) { continue; }
                    if (i > 6) { break; }
                    x += i;           // 1 + 3 + 5
                }
                // do-while runs at least once.
                int guard = 0;
                do { guard++; } while (guard < 0);
                // nested blocks shadow locals.
                int y = 1;
                {
                    int y = 100;
                    x += y;
                }
                x += y;
                // compound assignments.
                x <<= 1;
                x |= 1;
                x ^= 2;
                x &= 255;
                out = x + guard;
                trace_val = print(out);
                pc = pc + 1;
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 1);
    // x = 9 + 100 + 1 = 110; <<1 = 220; |1 = 221; ^2 = 223; &255 = 223.
    assert_eq!(read(&sim, "out"), 224);
    assert_eq!(read(&sim, "trace_val"), 224);
}

#[test]
fn whole_pipe_stall_and_flush_from_behavior() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int got; PIPELINE p = { S0; S1; S2 }; }
        OPERATION staged IN p.S2 { BEHAVIOR { got = got + 1; } }
        OPERATION main {
            BEHAVIOR { pc = pc + 1; }
            ACTIVATION {
                // pc has already been incremented by the behavior, so the
                // activation of cycle N sees pc == N + 1.
                if (pc == 1) { staged }
                if (pc == 2) { p.stall() }
                if (pc == 10) { staged }
                if (pc == 11) { p.flush() }
                p.shift()
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 20);
    // First activation (distance 2) is held one extra cycle by the stall
    // but still lands; the second is flushed before reaching S2.
    assert_eq!(read(&sim, "got"), 1);
    assert_eq!(sim.stats().flushes, 1);
    assert_eq!(sim.stats().stalls, 1);
}

#[test]
fn ternary_and_logical_short_circuit() {
    let model = Model::from_source(
        r#"
        RESOURCE { PROGRAM_COUNTER int pc; REGISTER int out; DATA_MEMORY int m[4]; }
        OPERATION main {
            BEHAVIOR {
                // Short-circuit prevents the out-of-bounds access.
                int safe = 0;
                if (pc < 4 && m[pc] == 0) { safe = 1; }
                if (pc >= 4 || m[pc % 4] == 0) { safe = safe + 2; }
                out = pc == 0 ? safe : 0 - safe;
                pc = pc + 1;
            }
        }
        "#,
    )
    .expect("builds");
    let sim = run_both(&model, 1);
    assert_eq!(read(&sim, "out"), 3);
}

#[test]
fn execute_decoded_injects_instructions_directly() {
    let model = Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int ir; REGISTER int r[4]; }
        OPERATION reg {
            DECLARE { LABEL i; }
            CODING { i:0bx[2] }
            SYNTAX { "r" i:#u }
            EXPRESSION { r[i] }
        }
        OPERATION inc {
            DECLARE { GROUP Dst = { reg }; }
            CODING { 0b01 Dst }
            SYNTAX { "INC" Dst }
            BEHAVIOR { Dst = Dst + 1; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { inc }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("builds");
    let decoder = lisa_isa::Decoder::new(&model).expect("decoder");
    let decoded = decoder.decode(0b0110).expect("INC r2");
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = Simulator::new(&model, mode).expect("sim");
        sim.execute_decoded(&decoded).expect("executes");
        sim.execute_decoded(&decoded).expect("executes");
        let r = model.resource_by_name("r").unwrap();
        assert_eq!(sim.state().read_int(r, &[2]).unwrap(), 2, "{mode:?}");
    }
}

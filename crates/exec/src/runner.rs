//! The worker-pool batch runner.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use lisa_spans::SpanKind;

use crate::observe::{BatchObserver, BatchProgress};
use crate::report::{BatchReport, JobOutcome};
use crate::scenario::{run_scenario_with, JobError, Scenario};

/// A fixed-size pool of worker threads draining a shared job queue.
///
/// Workers are plain scoped `std::thread`s: jobs may borrow non-`'static`
/// data (scenarios borrow their models). Scheduling is a single atomic
/// cursor over the job slice — workers race to claim the next index —
/// but results land in slots keyed by job index, so the output order is
/// always the input order and a [`BatchReport`] is reproducible for any
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRunner {
    /// Number of worker threads; `0` and `1` both run on one worker.
    pub workers: usize,
}

impl BatchRunner {
    /// A runner with the given worker count.
    #[must_use]
    pub fn new(workers: usize) -> BatchRunner {
        BatchRunner { workers }
    }

    /// A runner sized to the machine's available parallelism.
    #[must_use]
    pub fn with_available_parallelism() -> BatchRunner {
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        BatchRunner { workers }
    }

    /// Fans `f` out over `items` on the worker pool. `f` receives
    /// `(worker, index, item)` — the worker ordinal (`0..workers`, for
    /// attribution) and the item's index in `items`.
    ///
    /// The result vector is keyed by item index regardless of which
    /// worker ran which item or in what order they finished. A panicking
    /// call is caught on its worker and surfaces as
    /// [`JobError::Panic`] for that item only; the other items still
    /// run. This is the generic engine under [`BatchRunner::run`],
    /// public for custom job types (parameter sweeps over non-`Scenario`
    /// inputs).
    pub fn execute<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, JobError>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &T) -> Result<R, JobError> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.clamp(1, n);
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<R, JobError>>>> =
            Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let (cursor, slots, f) = (&cursor, &slots, &f);
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(worker, i, &items[i])))
                        .unwrap_or_else(|payload| Err(JobError::Panic(panic_text(&*payload))));
                    slots.lock().expect("slot lock")[i] = Some(outcome);
                });
            }
        });

        slots
            .into_inner()
            .expect("slot lock")
            .into_iter()
            .map(|slot| slot.expect("every claimed job stores a result"))
            .collect()
    }

    /// Runs every scenario and collects a [`BatchReport`].
    ///
    /// `report.jobs` depends only on the scenario list — never on the
    /// worker count or thread scheduling; only `report.elapsed` (and the
    /// derived throughput) varies between runs.
    #[must_use]
    pub fn run(&self, scenarios: &[Scenario<'_>]) -> BatchReport {
        self.run_observed(scenarios, &BatchObserver::new())
    }

    /// Runs every scenario like [`BatchRunner::run`], additionally
    /// feeding the given [`BatchObserver`]: job counters and latency
    /// histograms into its metrics registry, and periodic
    /// [`BatchProgress`] samples (with ETA) to its heartbeat.
    ///
    /// Observation never changes outcomes — `report.jobs` equals what an
    /// unobserved run produces.
    #[must_use]
    pub fn run_observed(
        &self,
        scenarios: &[Scenario<'_>],
        observer: &BatchObserver<'_>,
    ) -> BatchReport {
        let start = Instant::now();
        let done = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);

        // Counter handles are interned once; the per-scenario latency
        // histogram is fetched per job (one short registry lock per
        // *job*, invisible next to running a simulation).
        let counters = observer.metrics.map(|reg| {
            (
                reg.counter(
                    "lisa_exec_jobs_started_total",
                    "Batch jobs picked up by a worker.",
                    &[],
                ),
                reg.counter("lisa_exec_jobs_succeeded_total", "Batch jobs that passed.", &[]),
                reg.counter(
                    "lisa_exec_jobs_failed_total",
                    "Batch jobs that failed setup, simulation or a check.",
                    &[],
                ),
                reg.counter("lisa_exec_jobs_panicked_total", "Batch jobs that panicked.", &[]),
            )
        });

        let progress = |done_now: usize, failed_now: usize| {
            let elapsed = start.elapsed();
            let eta = (done_now > 0 && done_now < scenarios.len())
                .then(|| elapsed.mul_f64((scenarios.len() - done_now) as f64 / done_now as f64));
            BatchProgress {
                total: scenarios.len(),
                done: done_now,
                failed: failed_now,
                elapsed,
                eta,
            }
        };

        // When a span context is attached, the batch is one root span
        // and each job nests under it; the root guard commits when
        // `execute` returns.
        let span_root = observer.spans.as_ref().map(|scope| {
            let root = scope.start(SpanKind::Batch);
            let jobs_scope = scope.child(root.id());
            let epoch = scope.now_ns();
            (root, jobs_scope, epoch)
        });

        let finished = Mutex::new(false);
        let wake = Condvar::new();
        let results = std::thread::scope(|scope| {
            if let Some(hb) = &observer.heartbeat {
                scope.spawn(|| {
                    let mut guard = finished.lock().expect("heartbeat lock");
                    while !*guard {
                        let (g, timeout) =
                            wake.wait_timeout(guard, hb.interval).expect("heartbeat lock");
                        guard = g;
                        if !*guard && timeout.timed_out() {
                            (hb.emit)(&progress(
                                done.load(Ordering::Relaxed),
                                failed.load(Ordering::Relaxed),
                            ));
                        }
                    }
                });
            }

            let results = self.execute(scenarios, |worker, _, sc| {
                if let Some((started, _, _, _)) = &counters {
                    started.inc();
                }
                let job_start = Instant::now();
                // Catch panics here (instead of leaving it to `execute`)
                // so the panic outcome is counted and timed like any
                // other failure.
                let run = |spans: Option<&lisa_spans::SpanScope>| {
                    catch_unwind(AssertUnwindSafe(|| run_scenario_with(sc, spans)))
                        .unwrap_or_else(|payload| Err(JobError::Panic(panic_text(&*payload))))
                };
                let result = match &span_root {
                    Some((_, jobs_scope, epoch)) => {
                        let job_scope = jobs_scope.clone().with_worker(worker as u32);
                        let claimed = job_scope.now_ns();
                        // The job id is allocated up front so the
                        // simulator phases can nest under it while the
                        // job span itself is still open.
                        let job_id = job_scope.recorder.alloc_id();
                        let sim_scope = job_scope.child(job_id);
                        let result = run(Some(&sim_scope));
                        let dur = job_scope.now_ns().saturating_sub(claimed);
                        job_scope.recorder.record_with_id(
                            job_id,
                            job_scope.trace,
                            job_scope.parent,
                            SpanKind::Job,
                            job_scope.worker,
                            claimed,
                            dur,
                        );
                        // Queue wait: batch start to the worker claiming
                        // this job (the parallelism-limited share).
                        sim_scope.record(
                            SpanKind::JobQueueWait,
                            *epoch,
                            claimed.saturating_sub(*epoch),
                        );
                        result
                    }
                    None => run(None),
                };
                if let Some((_, succeeded, failures, panicked)) = &counters {
                    match &result {
                        Ok(_) => succeeded.inc(),
                        Err(JobError::Panic(_)) => panicked.inc(),
                        Err(_) => failures.inc(),
                    }
                }
                if let Some(reg) = observer.metrics {
                    let micros = u64::try_from(job_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    reg.histogram(
                        "lisa_exec_job_duration_us",
                        "Wall-clock job duration in microseconds.",
                        &[("scenario", &sc.name)],
                    )
                    .observe(micros);
                }
                if result.is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
                result
            });

            *finished.lock().expect("heartbeat lock") = true;
            wake.notify_all();
            results
        });
        drop(span_root);

        if let Some(hb) = &observer.heartbeat {
            // Final synchronous beat so consumers always see 100%.
            (hb.emit)(&progress(done.load(Ordering::Relaxed), failed.load(Ordering::Relaxed)));
        }

        let jobs = results
            .into_iter()
            .enumerate()
            .map(|(index, result)| JobOutcome {
                index,
                name: scenarios[index].name.clone(),
                result,
            })
            .collect();
        BatchReport { workers: self.workers.max(1), jobs, elapsed: start.elapsed() }
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads;
/// anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::Model;
    use lisa_sim::SimMode;

    fn counter() -> Model {
        Model::from_source(
            r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; CONTROL_REGISTER bit halt; }
               OPERATION main { BEHAVIOR { r0 = r0 + 1; halt = r0 == 40; pc = pc + 1; } }"#,
        )
        .expect("model builds")
    }

    #[test]
    fn results_are_keyed_by_index_not_completion_order() {
        // Jobs with wildly different lengths: late-queued short jobs
        // finish before early long ones on a multi-worker pool.
        let squares: Vec<u64> = (0..32).map(|i| (i % 7) * 100 + 1).collect();
        let out = BatchRunner::new(8).execute(&squares, |_, i, &len| {
            let mut acc = 0u64;
            for k in 0..len {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            Ok((i, acc))
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().expect("ok").0, i);
        }
    }

    #[test]
    fn worker_count_does_not_change_job_outcomes() {
        let model = counter();
        let scenarios: Vec<Scenario> = (0..12)
            .map(|i| {
                Scenario::new(format!("job{i}"), &model, SimMode::Interpretive)
                    .poke("r0", 0, i)
                    .halt_on("halt")
                    .steps(100)
                    .expect("r0", None, 40)
            })
            .collect();
        let solo = BatchRunner::new(1).run(&scenarios);
        let pooled = BatchRunner::new(4).run(&scenarios);
        assert_eq!(solo.jobs, pooled.jobs);
        assert!(solo.all_passed());
        assert_eq!(solo.workers, 1);
        assert_eq!(pooled.workers, 4);
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        let items: Vec<u32> = (0..6).collect();
        let out = BatchRunner::new(3).execute(&items, |_, _, &v| {
            assert!(v != 4, "job four exploded");
            Ok(v * 2)
        });
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                match r {
                    Err(JobError::Panic(msg)) => assert!(msg.contains("exploded")),
                    other => panic!("expected panic outcome, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().expect("ok"), i as u32 * 2);
            }
        }
    }

    #[test]
    fn observed_runs_match_unobserved_and_fill_the_registry() {
        use lisa_metrics::{MetricKey, MetricValue, Registry};

        let model = counter();
        let mut scenarios: Vec<Scenario> = (0..5)
            .map(|i| {
                Scenario::new(format!("job{i}"), &model, SimMode::Interpretive)
                    .halt_on("halt")
                    .steps(100)
            })
            .collect();
        // One failing job: unknown poke resource -> setup failure.
        scenarios.push(Scenario::new("broken", &model, SimMode::Interpretive).poke("nope", 0, 1));

        let reg = Registry::new();
        let observed =
            BatchRunner::new(3).run_observed(&scenarios, &BatchObserver::new().with_metrics(&reg));
        let plain = BatchRunner::new(3).run(&scenarios);
        assert_eq!(observed.jobs, plain.jobs, "observation does not change outcomes");

        let snap = reg.snapshot();
        let count = |name| match snap.metrics.get(&MetricKey::new(name, &[])) {
            Some(&MetricValue::Counter(n)) => n,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(count("lisa_exec_jobs_started_total"), 6);
        assert_eq!(count("lisa_exec_jobs_succeeded_total"), 5);
        assert_eq!(count("lisa_exec_jobs_failed_total"), 1);
        assert_eq!(count("lisa_exec_jobs_panicked_total"), 0);
        match snap
            .metrics
            .get(&MetricKey::new("lisa_exec_job_duration_us", &[("scenario", "job0")]))
        {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected per-scenario latency histogram, got {other:?}"),
        }
    }

    #[test]
    fn observed_run_emits_a_connected_batch_span_tree() {
        use lisa_spans::{SpanRecorder, SpanScope};
        use std::sync::Arc;

        let model = counter();
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::new(format!("job{i}"), &model, SimMode::Interpretive)
                    .halt_on("halt")
                    .steps(100)
            })
            .collect();
        let recorder = Arc::new(SpanRecorder::new(4096));
        recorder.set_enabled(true);
        let trace = recorder.new_trace();
        let scope = SpanScope::new(Arc::clone(&recorder), trace);
        let report =
            BatchRunner::new(3).run_observed(&scenarios, &BatchObserver::new().with_spans(scope));
        assert!(report.all_passed());

        let spans = recorder.collect();
        let by_kind = |kind: SpanKind| spans.iter().filter(|s| s.kind == kind).count();
        assert_eq!(by_kind(SpanKind::Batch), 1);
        assert_eq!(by_kind(SpanKind::Job), 6);
        assert_eq!(by_kind(SpanKind::JobQueueWait), 6);
        assert!(by_kind(SpanKind::CycleChunk) >= 6, "each job runs at least one chunk");

        // Single connected tree: one trace, one root, every parent resolves.
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
        assert_eq!(ids.len(), spans.len(), "span ids are unique");
        assert!(spans.iter().all(|s| s.trace == trace));
        assert_eq!(spans.iter().filter(|s| s.parent == 0).count(), 1, "one root");
        assert!(spans.iter().all(|s| s.parent == 0 || ids.contains(&s.parent)));
        // Worker ordinals stay within the pool.
        assert!(spans.iter().filter(|s| s.kind == SpanKind::Job).all(|s| s.worker < 3));
    }

    #[test]
    fn heartbeat_emits_a_final_complete_sample() {
        let model = counter();
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| {
                Scenario::new(format!("job{i}"), &model, SimMode::Interpretive)
                    .halt_on("halt")
                    .steps(100)
            })
            .collect();
        let samples = Mutex::new(Vec::new());
        let observer = BatchObserver::new()
            .with_heartbeat(std::time::Duration::from_millis(1), |p: &crate::BatchProgress| {
                samples.lock().unwrap().push(*p)
            });
        let report = BatchRunner::new(2).run_observed(&scenarios, &observer);
        assert!(report.all_passed());
        drop(observer);
        let samples = samples.into_inner().unwrap();
        let last = samples.last().expect("at least the final beat");
        assert_eq!((last.total, last.done, last.failed), (4, 4, 0));
        assert_eq!(last.eta, None, "nothing remains at completion");
        assert!(last.line().contains("4/4 jobs (0 failed)"), "{}", last.line());
    }

    #[test]
    fn empty_batch_and_zero_workers_are_fine() {
        let model = counter();
        let report = BatchRunner::new(0).run(&[]);
        assert!(report.jobs.is_empty());
        assert!(report.all_passed());

        let sc = [Scenario::new("one", &model, SimMode::Interpretive).halt_on("halt").steps(100)];
        let report = BatchRunner::new(0).run(&sc);
        assert!(report.all_passed());
    }
}

//! Batch results and aggregate reporting.

use std::time::Duration;

use lisa_sim::SimStats;
use lisa_trace::Profile;

use crate::scenario::JobError;

/// The measurable outcome of one successful job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Control steps the job ran (excluding any steps already recorded
    /// in a base snapshot's stats — this is the run's own cycle count).
    pub cycles: u64,
    /// Final simulator statistics.
    pub stats: SimStats,
    /// FNV-1a fingerprint of the final architectural state, for cheap
    /// cross-run and cross-backend comparisons.
    pub state_digest: u64,
    /// Per-job execution profile, when the scenario asked for one
    /// ([`crate::Scenario::profiled`]).
    pub profile: Option<Profile>,
    /// Wall-clock time this job took (setup, run and checks). Excluded
    /// from equality: outcomes stay comparable across runs and worker
    /// counts, while timing describes one particular run.
    pub elapsed: Duration,
}

impl PartialEq for JobResult {
    fn eq(&self, other: &JobResult) -> bool {
        self.cycles == other.cycles
            && self.stats == other.stats
            && self.state_digest == other.state_digest
            && self.profile == other.profile
    }
}

impl Eq for JobResult {}

/// Wall-clock latency spread over a batch's successful jobs
/// (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Fastest job.
    pub min: Duration,
    /// Median job (nearest rank).
    pub p50: Duration,
    /// 99th-percentile job (nearest rank).
    pub p99: Duration,
    /// Slowest job.
    pub max: Duration,
}

/// One job's slot in a batch: its input position, name, and result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Position in the submitted scenario list.
    pub index: usize,
    /// Scenario name.
    pub name: String,
    /// Success payload or failure reason.
    pub result: Result<JobResult, JobError>,
}

/// Everything a finished batch produced.
///
/// `jobs` is deterministic (input-ordered, scheduling-independent);
/// `elapsed` and anything derived from it measure this particular run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Sum of simulated control steps over all successful jobs.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.jobs.iter().filter_map(|j| j.result.as_ref().ok()).map(|r| r.cycles).sum()
    }

    /// Aggregate simulation throughput of this run in cycles/second
    /// (0.0 for an instantaneous or empty batch).
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total_cycles() as f64 / secs
        } else {
            0.0
        }
    }

    /// Sum of instructions retired over all successful jobs.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.jobs
            .iter()
            .filter_map(|j| j.result.as_ref().ok())
            .map(|r| r.stats.instructions_retired)
            .sum()
    }

    /// Aggregate simulated MIPS of this run: millions of retired
    /// instructions per wall-clock second (0.0 for an instantaneous or
    /// empty batch).
    #[must_use]
    pub fn simulated_mips(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total_instructions() as f64 / secs / 1e6
        } else {
            0.0
        }
    }

    /// Wall-clock latency spread across successful jobs, or `None` when
    /// no job succeeded. Percentiles use the nearest-rank method, so
    /// every reported value is an actually-observed job duration.
    #[must_use]
    pub fn latency(&self) -> Option<LatencySummary> {
        let mut durations: Vec<Duration> =
            self.jobs.iter().filter_map(|j| j.result.as_ref().ok()).map(|r| r.elapsed).collect();
        if durations.is_empty() {
            return None;
        }
        durations.sort_unstable();
        let rank = |q: f64| {
            // Nearest rank: smallest index covering fraction q.
            let n = durations.len();
            durations[((q * n as f64).ceil() as usize).clamp(1, n) - 1]
        };
        Some(LatencySummary {
            min: durations[0],
            p50: rank(0.50),
            p99: rank(0.99),
            max: *durations.last().expect("non-empty"),
        })
    }

    /// The jobs that failed, in submission order.
    #[must_use]
    pub fn failures(&self) -> Vec<&JobOutcome> {
        self.jobs.iter().filter(|j| j.result.is_err()).collect()
    }

    /// Whether every job succeeded.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.jobs.iter().all(|j| j.result.is_ok())
    }

    /// Folds every successful job's profile into one fleet-level
    /// [`Profile`] (merge is associative and keyed by names, so jobs
    /// over different models combine meaningfully). `None` when no job
    /// carried a profile.
    #[must_use]
    pub fn merged_profile(&self) -> Option<Profile> {
        let mut merged: Option<Profile> = None;
        for job in &self.jobs {
            if let Some(profile) = job.result.as_ref().ok().and_then(|r| r.profile.as_ref()) {
                merged.get_or_insert_with(Profile::new).merge(profile);
            }
        }
        merged
    }

    /// A plain-text summary table: one row per job, then an aggregate
    /// line with total cycles and throughput.
    #[must_use]
    pub fn table(&self) -> String {
        let name_w = self
            .jobs
            .iter()
            .map(|j| j.name.len())
            .chain(std::iter::once("job".len()))
            .max()
            .unwrap_or(3);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<name_w$}  {:<6}  {:>10}  {:>10}  {:>16}\n",
            "#", "job", "status", "cycles", "ops", "detail"
        ));
        for job in &self.jobs {
            match &job.result {
                Ok(r) => out.push_str(&format!(
                    "{:>4}  {:<name_w$}  {:<6}  {:>10}  {:>10}  {:>16}\n",
                    job.index,
                    job.name,
                    "ok",
                    r.cycles,
                    r.stats.executed_ops,
                    format!("{:016x}", r.state_digest),
                )),
                Err(e) => out.push_str(&format!(
                    "{:>4}  {:<name_w$}  {:<6}  {:>10}  {:>10}  {}\n",
                    job.index, job.name, "FAIL", "-", "-", e
                )),
            }
        }
        let failed = self.jobs.len() - self.jobs.iter().filter(|j| j.result.is_ok()).count();
        out.push_str(&format!(
            "{} jobs ({failed} failed), {} cycles in {:.3} s on {} workers: {:.0} cycles/s, {:.2} MIPS\n",
            self.jobs.len(),
            self.total_cycles(),
            self.elapsed.as_secs_f64(),
            self.workers,
            self.cycles_per_sec(),
            self.simulated_mips(),
        ));
        if let Some(lat) = self.latency() {
            out.push_str(&format!(
                "job latency: min {:.3} ms / p50 {:.3} ms / p99 {:.3} ms / max {:.3} ms\n",
                lat.min.as_secs_f64() * 1e3,
                lat.p50.as_secs_f64() * 1e3,
                lat.p99.as_secs_f64() * 1e3,
                lat.max.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BatchReport {
        let ok = JobResult {
            cycles: 100,
            stats: SimStats { instructions_retired: 50, ..SimStats::default() },
            state_digest: 0xabcd,
            profile: None,
            elapsed: Duration::from_millis(10),
        };
        BatchReport {
            workers: 2,
            jobs: vec![
                JobOutcome { index: 0, name: "good".into(), result: Ok(ok) },
                JobOutcome {
                    index: 1,
                    name: "bad".into(),
                    result: Err(JobError::Panic("boom".into())),
                },
            ],
            elapsed: Duration::from_millis(500),
        }
    }

    #[test]
    fn aggregates_count_only_successes() {
        let r = report();
        assert_eq!(r.total_cycles(), 100);
        assert!(!r.all_passed());
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].name, "bad");
        assert!((r.cycles_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn table_lists_every_job_and_the_aggregate_line() {
        let text = report().table();
        assert!(text.contains("good"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("boom"));
        assert!(text.contains("2 jobs (1 failed)"));
        assert!(text.contains("MIPS"));
        assert!(text.contains("job latency: min"));
    }

    #[test]
    fn equality_ignores_elapsed() {
        let r = report();
        let mut other = r.clone();
        if let Ok(job) = other.jobs[0].result.as_mut() {
            job.elapsed = Duration::from_secs(999);
        }
        assert_eq!(r.jobs, other.jobs, "timing does not affect outcome equality");
    }

    #[test]
    fn mips_counts_retired_instructions_per_second() {
        let r = report();
        assert_eq!(r.total_instructions(), 50);
        // 50 instructions in 0.5 s = 100/s = 1e-4 MIPS.
        assert!((r.simulated_mips() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn latency_uses_nearest_rank_percentiles() {
        assert!(BatchReport { workers: 1, jobs: Vec::new(), elapsed: Duration::ZERO }
            .latency()
            .is_none());

        let mut r = report();
        for (i, ms) in [30u64, 20, 40].iter().enumerate() {
            r.jobs.push(JobOutcome {
                index: 2 + i,
                name: format!("j{i}"),
                result: Ok(JobResult {
                    cycles: 1,
                    stats: SimStats::default(),
                    state_digest: 0,
                    profile: None,
                    elapsed: Duration::from_millis(*ms),
                }),
            });
        }
        // Successful durations: 10, 20, 30, 40 ms (the failure is skipped).
        let lat = r.latency().expect("has successes");
        assert_eq!(lat.min, Duration::from_millis(10));
        assert_eq!(lat.p50, Duration::from_millis(20), "nearest rank: ceil(0.5*4) = 2nd");
        assert_eq!(lat.p99, Duration::from_millis(40), "nearest rank: ceil(0.99*4) = 4th");
        assert_eq!(lat.max, Duration::from_millis(40));
    }

    #[test]
    fn merged_profile_folds_successful_jobs_only() {
        let mut r = report();
        assert!(r.merged_profile().is_none(), "no profiles collected");

        let mut pa = Profile::new();
        pa.cycles = 10;
        pa.op_execs.insert("main".into(), 10);
        let mut pb = Profile::new();
        pb.cycles = 5;
        pb.op_execs.insert("main".into(), 5);
        pb.op_execs.insert("add".into(), 2);
        if let Ok(job) = r.jobs[0].result.as_mut() {
            job.profile = Some(pa);
        }
        r.jobs.push(JobOutcome {
            index: 2,
            name: "also-good".into(),
            result: Ok(JobResult {
                cycles: 5,
                stats: SimStats::default(),
                state_digest: 1,
                profile: Some(pb),
                elapsed: Duration::from_millis(30),
            }),
        });

        let merged = r.merged_profile().expect("profiles merged");
        assert_eq!(merged.cycles, 15);
        assert_eq!(merged.op_execs["main"], 15);
        assert_eq!(merged.op_execs["add"], 2);
    }
}

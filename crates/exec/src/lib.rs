//! Parallel batch execution of LISA simulations.
//!
//! The paper's environment generates one simulator per machine
//! description; real verification campaigns run *many* simulations —
//! every kernel on every model in every mode, design-space sweeps, and
//! what-if forks from a common warm-up point. This crate turns single
//! simulator runs into such campaigns:
//!
//! * [`Scenario`] — one self-contained job: a model, an execution mode,
//!   a program image plus data pokes, a halt condition with a step
//!   budget, golden-value checks, and optionally a base
//!   [`lisa_sim::Snapshot`] to fork from instead of reset state.
//! * [`BatchRunner`] — a `std::thread` worker pool that drains a shared
//!   job queue. Results are keyed by job index, so a report is
//!   **deterministic**: the same scenario list produces identical
//!   [`JobOutcome`]s regardless of worker count or completion order. A
//!   panicking job is isolated to its own [`JobError::Panic`] outcome.
//! * [`BatchReport`] — per-job results plus aggregate throughput
//!   (total cycles, cycles/second) and a formatted summary table.
//!
//! No dependencies beyond the workspace's own crates; workers are plain
//! scoped threads, so scenarios may borrow their [`lisa_core::Model`]s.
//!
//! ```
//! use lisa_core::Model;
//! use lisa_exec::{BatchRunner, Scenario};
//! use lisa_sim::SimMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::from_source(r#"
//!     RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
//!     OPERATION main { BEHAVIOR { r0 = r0 + 2; pc = pc + 1; } }
//! "#)?;
//! let scenarios: Vec<Scenario> = (1..=4)
//!     .map(|steps| {
//!         Scenario::new(format!("count_{steps}"), &model, SimMode::Interpretive)
//!             .steps(steps * 10)
//!             .expect("r0", None, 2 * (steps as i64) * 10)
//!     })
//!     .collect();
//! let report = BatchRunner::new(2).run(&scenarios);
//! assert!(report.all_passed());
//! assert_eq!(report.total_cycles(), 10 + 20 + 30 + 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod observe;
mod report;
mod runner;
mod scenario;

pub use observe::{BatchObserver, BatchProgress, Heartbeat};
pub use report::{BatchReport, JobOutcome, JobResult, LatencySummary};
pub use runner::BatchRunner;
pub use scenario::{run_scenario, run_scenario_with, Check, JobError, Scenario};
